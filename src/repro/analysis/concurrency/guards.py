"""Static lock-discipline rule: shared state mutated under its lock.

Two sources of truth feed the check:

* **Annotations** — a ``# guarded-by: <lock>`` comment on (or on the
  line above) an attribute or module-global assignment, or a
  ``@guarded_by("<lock>")`` decorator declaring that the lock is held
  for a whole function.  Annotated state is checked strictly: every
  mutation outside a ``with <lock>:`` region is an ERROR.
* **Inference** — a class whose ``__init__`` creates both a lock
  attribute and a mutable-container attribute (or a module that pairs a
  module-level lock with a mutable global) is assumed to *intend* the
  lock to guard the container.  Inference only fires on **inconsistent**
  usage: at least one mutation under the lock and at least one without
  it.  All-guarded code is silent (correct) and all-unguarded code is
  silent too (a deliberately unsynchronized class is not a bug — until
  someone locks half of it).

Mutation detection is depth-1 by design: rebinding (``self.x = ...``,
``global``-declared ``NAME = ...``), subscript stores/deletes, augmented
assignment, and calls of well-known mutating methods
(``append``/``update``/``setdefault``/...) on the name itself.  Aliasing
(``entries = self._entries; entries[k] = v``) and nested function bodies
are documented misses, never false positives.  ``__init__`` bodies,
class bodies, and module top-level statements are construction and
exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintRule, ModuleContext

#: methods that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "remove",
    "rotate", "setdefault", "sort", "update", "write", "push",
})

#: constructors whose result is treated as a lock in inference
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "make_lock", "make_rlock",
                             "allocate_lock"})

#: constructors whose result is treated as shared mutable state
_CONTAINER_FACTORIES = frozenset({"dict", "list", "set", "OrderedDict",
                                  "defaultdict", "deque", "Counter"})

_MATCH = getattr(ast, "Match", None)


def _lock_name(expr: ast.AST) -> Optional[str]:
    """Normalized lock name for a ``with`` context expression.

    ``self._lock`` and ``store._lock`` both normalize to ``_lock``;
    a bare ``_STATE_LOCK`` stays as is.  Anything fancier (calls,
    subscripts) is not a recognizable lock expression.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _decorator_locks(func: ast.AST) -> Set[str]:
    """Locks declared held for the whole function via @guarded_by."""
    held: Set[str] = set()
    for decorator in getattr(func, "decorator_list", []):
        if not isinstance(decorator, ast.Call):
            continue
        name = _lock_name(decorator.func)
        if name != "guarded_by":
            continue
        for arg in decorator.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                held.add(arg.value.split(".")[-1])
    return held


def _is_factory_call(expr: ast.AST, factories: frozenset) -> bool:
    if isinstance(expr, (ast.Dict, ast.List, ast.Set)):
        return factories is _CONTAINER_FACTORIES
    if not isinstance(expr, ast.Call):
        return False
    name = _lock_name(expr.func)
    return name in factories


class _Mutation:
    """One mutation site: (owner kind, name, AST node, locks held)."""

    __slots__ = ("name", "node", "held", "function")

    def __init__(self, name: str, node: ast.AST, held: Set[str],
                 function: str) -> None:
        self.name = name
        self.node = node
        self.held = held
        self.function = function


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names the function binds locally (params + non-global stores)."""
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
    bound: Set[str] = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if (isinstance(node, ast.Name)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and node.id not in declared_global):
            bound.add(node.id)
    return bound - declared_global


def _collect_function_mutations(func: ast.AST) -> List[_Mutation]:
    """Mutations of ``self.<attr>`` and module globals in one function,
    each tagged with the set of locks held at that point.

    The walk tracks ``with`` nesting through compound statements; nested
    function definitions are skipped (they run later, under unknown
    locking).
    """
    mutations: List[_Mutation] = []
    locals_bound = _local_bindings(func)
    base_held = _decorator_locks(func)

    def visit_block(body: Sequence[ast.stmt], held: Set[str]) -> None:
        for stmt in body:
            visit_stmt(stmt, held)

    def visit_stmt(stmt: ast.stmt, held: Set[str]) -> None:
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                name = _lock_name(item.context_expr)
                if name:
                    inner.add(name)
            visit_block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # deferred execution: locking context unknown
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            scan_expressions(stmt.target, held)
            scan_expressions(stmt.iter, held)
            visit_block(stmt.body, held)
            visit_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            scan_expressions(stmt.test, held)
            visit_block(stmt.body, held)
            visit_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.If):
            scan_expressions(stmt.test, held)
            visit_block(stmt.body, held)
            visit_block(stmt.orelse, held)
            return
        if _MATCH is not None and isinstance(stmt, _MATCH):
            scan_expressions(stmt.subject, held)
            for case in stmt.cases:
                visit_block(case.body, held)
            return
        if isinstance(stmt, ast.Try):
            visit_block(stmt.body, held)
            for handler in stmt.handlers:
                visit_block(handler.body, held)
            visit_block(stmt.orelse, held)
            visit_block(stmt.finalbody, held)
            return
        scan_expressions(stmt, held)

    def scan_expressions(root: ast.AST, held: Set[str]) -> None:
        for node in ast.walk(root):
            target = _mutation_target(node)
            if target is not None:
                mutations.append(_Mutation(
                    target, node, set(held), func.name))

    def _mutation_target(node: ast.AST) -> Optional[str]:
        # rebinds and deletes (Store/Del context covers Assign,
        # AugAssign and `for` targets alike) plus subscript stores on
        # self.attr / module globals
        if isinstance(node, (ast.Attribute, ast.Name, ast.Subscript)):
            if not isinstance(node.ctx, (ast.Store, ast.Del)):
                return None
            return _owner_of(node.value if isinstance(node, ast.Subscript)
                             else node)
        if isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute)
                    and fn.attr in MUTATOR_METHODS):
                return _owner_of(fn.value)
        return None

    def _owner_of(expr: ast.AST) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return "self." + expr.attr
        if isinstance(expr, ast.Name):
            # a bare rebind only touches the module global when the
            # function says `global NAME`; container mutation through
            # the name does, unless the name is a local binding
            if expr.id in locals_bound:
                return None
            return expr.id
        return None

    visit_block(func.body, base_held)
    return mutations


def _guard_for(ctx: ModuleContext, lineno: int) -> Optional[str]:
    """guarded-by annotation attached to ``lineno``: a trailing comment
    on the line itself, or a comment-only line directly above (a
    trailing comment on the *previous statement's* line annotates that
    statement, not this one)."""
    lock = ctx.guard_comments.get(lineno)
    if lock is not None:
        return lock
    lock = ctx.guard_comments.get(lineno - 1)
    if lock is not None and lineno - 2 < len(ctx.lines):
        above = ctx.lines[lineno - 2].lstrip()
        if above.startswith("#"):
            return lock
    return None


class GuardedMutationRule(LintRule):
    """Mutating guarded shared state requires holding its lock."""

    rule_id = "guarded-mutation"
    description = ("annotated or lock-paired shared state is only "
                   "mutated while holding its lock")

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        yield from self._check_module_globals(ctx)
        for node in ctx.nodes(ast.ClassDef):
            yield from self._check_class(ctx, node)

    # -- module globals ----------------------------------------------------

    def _module_state(self, ctx: ModuleContext) -> Tuple[
            Dict[str, str], Set[str], Set[str]]:
        """(annotated globals -> lock, module lock names, inferred
        mutable globals) from top-level assignments."""
        annotated: Dict[str, str] = {}
        lock_names: Set[str] = set()
        containers: Set[str] = set()
        for stmt in ctx.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            guard = _guard_for(ctx, stmt.lineno)
            for name in names:
                if guard:
                    annotated[name] = guard
                if _is_factory_call(value, _LOCK_FACTORIES):
                    lock_names.add(name)
                elif _is_factory_call(value, _CONTAINER_FACTORIES):
                    containers.add(name)
        return annotated, lock_names, containers

    def _check_module_globals(self, ctx: ModuleContext
                              ) -> Iterable[Diagnostic]:
        annotated, lock_names, containers = self._module_state(ctx)
        inferred = containers - set(annotated) - lock_names
        if not annotated and not inferred:
            return
        mutations: List[_Mutation] = []
        for func in self._all_functions(ctx):
            mutations.extend(_collect_function_mutations(func))
        for mutation in mutations:
            guard = annotated.get(mutation.name)
            if guard and guard not in mutation.held:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"global {mutation.name!r} is guarded-by "
                    f"{guard!r} but mutated in {mutation.function}() "
                    f"without holding it", mutation.node)
        if lock_names:
            yield from self._inconsistent(
                ctx, inferred, lock_names, mutations, kind="global")

    # -- class attributes --------------------------------------------------

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterable[Diagnostic]:
        annotated: Dict[str, str] = {}
        lock_attrs: Set[str] = set()
        container_attrs: Set[str] = set()
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                guard = _guard_for(ctx, stmt.lineno)
                if guard:
                    annotated["self." + stmt.target.id] = guard
        init = next((s for s in cls.body
                     if isinstance(s, ast.FunctionDef)
                     and s.name == "__init__"), None)
        if init is not None:
            for node in ast.walk(init):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif (isinstance(node, ast.AnnAssign)
                        and node.value is not None):
                    targets, value = [node.target], node.value
                else:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = "self." + target.attr
                    guard = _guard_for(ctx, node.lineno)
                    if guard:
                        annotated[attr] = guard
                    if _is_factory_call(value, _LOCK_FACTORIES):
                        lock_attrs.add(target.attr)
                    elif _is_factory_call(value, _CONTAINER_FACTORIES):
                        container_attrs.add(attr)
        if not annotated and not (lock_attrs and container_attrs):
            return
        mutations: List[_Mutation] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction: the instance is not shared yet
            mutations.extend(_collect_function_mutations(method))
        for mutation in mutations:
            guard = annotated.get(mutation.name)
            if guard and guard not in mutation.held:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"{cls.name}.{mutation.name[5:]} is guarded-by "
                    f"{guard!r} but mutated in "
                    f"{mutation.function}() without holding it",
                    mutation.node)
        inferred = container_attrs - set(annotated)
        yield from self._inconsistent(
            ctx, inferred, lock_attrs, mutations, kind=cls.name)

    # -- shared ------------------------------------------------------------

    def _inconsistent(self, ctx: ModuleContext, inferred: Set[str],
                      lock_names: Set[str], mutations: List[_Mutation],
                      kind: str) -> Iterable[Diagnostic]:
        """Flag unguarded mutations of a lock-paired container when at
        least one other mutation of it does hold a paired lock."""
        if not inferred or not lock_names:
            return
        for name in sorted(inferred):
            sites = [m for m in mutations if m.name == name]
            guarded = [m for m in sites if m.held & lock_names]
            unguarded = [m for m in sites if not (m.held & lock_names)]
            if not guarded or not unguarded:
                continue
            witness = guarded[0]
            witness_lock = sorted(witness.held & lock_names)[0]
            for mutation in unguarded:
                yield ctx.diagnostic(
                    self.rule_id,
                    f"inconsistent locking in {kind}: {mutation.name!r} "
                    f"is mutated under {witness_lock!r} in "
                    f"{witness.function}() (line {witness.node.lineno}) "
                    f"but without it in {mutation.function}()",
                    mutation.node)

    @staticmethod
    def _all_functions(ctx: ModuleContext) -> List[ast.AST]:
        """Every function/method in the module (not nested defs)."""
        out: List[ast.AST] = []

        def scan(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    out.append(stmt)
                elif isinstance(stmt, ast.ClassDef):
                    scan(stmt.body)

        scan(ctx.tree.body)
        return out
