"""Concurrency-correctness tooling: static lock discipline + sanitizer.

The static prong (:mod:`.guards`, :mod:`.order`) runs over the shared
AST lint engine: :class:`~repro.analysis.concurrency.guards.GuardedMutationRule`
enforces the ``# guarded-by:`` / :func:`guarded_by` annotation
convention per module, and
:class:`~repro.analysis.concurrency.order.LockOrderAnalyzer` builds the
whole-program lock-acquisition-order graph and rejects cycles.  The
dynamic prong is the runtime lock sanitizer, re-exported here as
:mod:`.sanitizer` (the implementation lives in :mod:`repro.obs.locks`
so the bottom-of-stack obs modules can use it without an import cycle).

Both prongs surface through ``python -m repro.analysis concurrency``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lint.engine import LintEngine, ModuleContext
from repro.analysis.concurrency.guards import GuardedMutationRule
from repro.analysis.concurrency.order import LockOrderAnalyzer
# canonical home is the bottom-of-stack lock module, so product code
# can annotate lock-held helpers without importing the lint engine
from repro.obs.locks import guarded_by

__all__ = [
    "GuardedMutationRule",
    "LockOrderAnalyzer",
    "check_paths",
    "guarded_by",
]


def check_paths(paths: Iterable[str]
                ) -> Tuple[List[Diagnostic], LockOrderAnalyzer]:
    """Run the full static concurrency analysis over files/trees.

    Returns (diagnostics, analyzer) — the analyzer is kept so the CLI
    can export the order graph.  Unlike ``lint``, this pass runs only
    the concurrency rules, so it deliberately does not report stale or
    unjustified pragmas: pragmas for the other lint rules are not stale
    just because those rules did not run here.
    """
    engine = LintEngine(rules=[GuardedMutationRule()])
    analyzer = LockOrderAnalyzer()
    diagnostics: List[Diagnostic] = []
    for path in LintEngine._iter_files(paths):
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            diagnostics.append(Diagnostic(
                "lint.io", f"cannot read source: {exc}",
                Severity.ERROR, path=str(path)))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            diagnostics.append(Diagnostic(
                "lint.syntax", f"syntax error: {exc.msg}",
                Severity.ERROR, path=path, line=exc.lineno,
                column=exc.offset))
            continue
        ctx = ModuleContext(path, source, tree)
        engine.stats["files"] = int(engine.stats.get("files", 0)) + 1
        found, _used = engine.apply_rules(ctx, engine.rules)
        diagnostics.extend(found)
        analyzer.add_module(ctx)
    diagnostics.extend(analyzer.finish())
    diagnostics.sort(key=lambda d: (d.path or "", d.line or 0,
                                    d.column or 0, d.rule))
    return diagnostics, analyzer
