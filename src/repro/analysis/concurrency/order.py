"""Whole-program lock-acquisition-order graph with cycle detection.

Every function in every analyzed module is walked once, tracking the
``with``-statement lock nesting.  Acquiring lock ``B`` while ``A`` is
held adds the directed edge ``A -> B`` (witnessed by file:line).  After
all modules are added, :meth:`LockOrderAnalyzer.finish` condenses the
graph into strongly connected components: any component with more than
one lock means two code paths acquire the same pair of locks in
opposite orders — a potential deadlock — and is reported as a
``lock-order`` ERROR listing the cycle with one witness per edge.

Lock identity is canonicalized so order is tracked across modules:

* ``with NAME:`` at module scope          -> ``pkg.module.NAME``
* ``with self.attr:`` inside ``class C``  -> ``pkg.module.C.attr``
* ``with alias.NAME:`` where ``alias`` was imported -> the *imported*
  module's canonical name, so ``locks._STATE_LOCK`` referenced from
  another module unifies with its home definition.

Anything unresolvable (calls, subscripts, attributes of plain objects)
is skipped — missed edges degrade coverage, they never fabricate a
cycle.  Acquiring a lock already held on the same path is reported as
``lock-reacquire`` when the lock is known to be created non-reentrant
(``threading.Lock()`` / ``make_lock``); locks of unknown kind get the
benefit of the doubt.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lint.engine import ModuleContext

#: factory callables creating a NON-reentrant lock
_PLAIN_LOCK_FACTORIES = frozenset({"Lock", "make_lock", "allocate_lock"})
#: factory callables creating a reentrant lock
_RLOCK_FACTORIES = frozenset({"RLock", "make_rlock"})


def module_name_for(path: str) -> str:
    """Dotted module name for a source path (``src/`` prefix dropped)."""
    parts = list(PurePosixPath(path.replace("\\", "/")).with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part not in (".", ""))


class _Edge:
    __slots__ = ("first", "second", "path", "line")

    def __init__(self, first: str, second: str, path: str,
                 line: int) -> None:
        self.first = first
        self.second = second
        self.path = path
        self.line = line

    @property
    def witness(self) -> str:
        return f"{self.path}:{self.line}"


class LockOrderAnalyzer:
    """Accumulates per-module lock usage; reports order cycles."""

    def __init__(self) -> None:
        # (first, second) -> first witness edge
        self.edges: Dict[Tuple[str, str], _Edge] = {}
        # canonical lock name -> "Lock" | "RLock"
        self.lock_kinds: Dict[str, str] = {}
        # re-acquisitions of an already-held lock, resolved at finish
        self._reacquires: List[Tuple[str, str, int, str]] = []
        self._contexts: Dict[str, ModuleContext] = {}

    # -- collection --------------------------------------------------------

    def add_module(self, ctx: ModuleContext) -> None:
        module = module_name_for(ctx.path)
        self._contexts[ctx.path] = ctx
        imports = self._import_map(ctx)
        self._collect_creations(ctx, module)
        for cls, func in self._functions(ctx):
            self._walk_function(ctx, module, cls, func, imports)

    @staticmethod
    def _import_map(ctx: ModuleContext) -> Dict[str, str]:
        """Local alias -> imported dotted module name."""
        aliases: Dict[str, str] = {}
        for node in ctx.nodes(ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                aliases[bound] = alias.name if alias.asname else \
                    alias.name.split(".")[0]
        for node in ctx.nodes(ast.ImportFrom):
            if not node.module or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        return aliases

    def _collect_creations(self, ctx: ModuleContext, module: str) -> None:
        """Record which canonical locks are plain vs reentrant."""
        for stmt in ctx.tree.body:
            name = self._assigned_lock(stmt)
            if name:
                self.lock_kinds[f"{module}.{name[0]}"] = name[1]
        for cls in ctx.nodes(ast.ClassDef):
            for node in ast.walk(cls):
                if not isinstance(node, ast.Assign):
                    continue
                kind = self._lock_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        canonical = f"{module}.{cls.name}.{target.attr}"
                        self.lock_kinds[canonical] = kind

    def _assigned_lock(self, stmt: ast.stmt) -> Optional[Tuple[str, str]]:
        if not isinstance(stmt, ast.Assign):
            return None
        kind = self._lock_kind(stmt.value)
        if kind is None:
            return None
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                return target.id, kind
        return None

    @staticmethod
    def _lock_kind(expr: ast.AST) -> Optional[str]:
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _PLAIN_LOCK_FACTORIES:
            return "Lock"
        if name in _RLOCK_FACTORIES:
            return "RLock"
        return None

    @staticmethod
    def _functions(ctx: ModuleContext
                   ) -> List[Tuple[Optional[str], ast.AST]]:
        out: List[Tuple[Optional[str], ast.AST]] = []

        def scan(body, cls: Optional[str]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    out.append((cls, stmt))
                    scan(stmt.body, cls)  # nested defs share the class
                elif isinstance(stmt, ast.ClassDef):
                    scan(stmt.body, stmt.name)

        scan(ctx.tree.body, None)
        return out

    def _canonical(self, expr: ast.AST, module: str, cls: Optional[str],
                   imports: Dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return f"{module}.{expr.id}"
        if isinstance(expr, ast.Attribute) and isinstance(expr.value,
                                                          ast.Name):
            base = expr.value.id
            if base == "self":
                if cls is None:
                    return None
                return f"{module}.{cls}.{expr.attr}"
            if base in imports:
                return f"{imports[base]}.{expr.attr}"
        return None  # attribute of a plain object, call, subscript, ...

    def _walk_function(self, ctx: ModuleContext, module: str,
                       cls: Optional[str], func: ast.AST,
                       imports: Dict[str, str]) -> None:
        base_held: List[Tuple[str, int]] = []
        for decorator in getattr(func, "decorator_list", []):
            if (isinstance(decorator, ast.Call)
                    and self._decorator_name(decorator) == "guarded_by"):
                for arg in decorator.args:
                    if (isinstance(arg, ast.Constant)
                            and isinstance(arg.value, str)):
                        leaf = arg.value.split(".")[-1]
                        scope = f"{module}.{cls}" if cls else module
                        base_held.append((f"{scope}.{leaf}",
                                          decorator.lineno))

        def visit(body, held: List[Tuple[str, int]]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue  # handled as their own entry
                if isinstance(stmt, ast.With):
                    inner = list(held)
                    for item in stmt.items:
                        name = self._canonical(item.context_expr, module,
                                               cls, imports)
                        if name is None:
                            continue
                        self._acquire(ctx, name, inner, stmt.lineno)
                        inner.append((name, stmt.lineno))
                    visit(stmt.body, inner)
                    continue
                for attr in ("body", "orelse", "finalbody"):
                    visit(getattr(stmt, attr, []) or [], held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, held)
                if _MATCH is not None and isinstance(stmt, _MATCH):
                    for case in stmt.cases:
                        visit(case.body, held)

        visit(func.body, base_held)

    def _acquire(self, ctx: ModuleContext, name: str,
                 held: List[Tuple[str, int]], line: int) -> None:
        held_names = [h[0] for h in held]
        if name in held_names:
            self._reacquires.append((name, ctx.path, line,
                                     held[held_names.index(name)][0]))
            return
        for outer, _outer_line in held:
            if outer == name:
                continue
            key = (outer, name)
            if key not in self.edges:
                self.edges[key] = _Edge(outer, name, ctx.path, line)

    @staticmethod
    def _decorator_name(decorator: ast.Call) -> Optional[str]:
        func = decorator.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    # -- reporting ---------------------------------------------------------

    def finish(self) -> List[Diagnostic]:
        diagnostics = []
        diagnostics.extend(self._cycle_diagnostics())
        diagnostics.extend(self._reacquire_diagnostics())
        kept = []
        for diag in diagnostics:
            ctx = self._contexts.get(diag.path or "")
            if ctx is not None and ctx.is_suppressed(diag.rule, diag.line):
                continue
            kept.append(diag)
        return kept

    def _cycle_diagnostics(self) -> Iterable[Diagnostic]:
        adjacency: Dict[str, List[str]] = {}
        for first, second in self.edges:
            adjacency.setdefault(first, []).append(second)
            adjacency.setdefault(second, [])
        reported: Set[frozenset] = set()
        for component in _tarjan_sccs(adjacency):
            if len(component) < 2:
                continue
            key = frozenset(component)
            if key in reported:
                continue
            reported.add(key)
            cycle = self._cycle_within(component)
            steps = []
            for index, lock in enumerate(cycle):
                nxt = cycle[(index + 1) % len(cycle)]
                edge = self.edges[(lock, nxt)]
                steps.append(f"{lock} -> {nxt} at {edge.witness}")
            anchor = self.edges[(cycle[0], cycle[1 % len(cycle)])]
            yield Diagnostic(
                "lock-order",
                "lock acquisition order cycle (potential deadlock): "
                + "; ".join(steps),
                Severity.ERROR, path=anchor.path, line=anchor.line)

    def _cycle_within(self, component: Set[str]) -> List[str]:
        """One concrete cycle through an SCC (DFS back to the start)."""
        start = sorted(component)[0]
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, trail = stack.pop()
            for first, second in self.edges:
                if first != node or second not in component:
                    continue
                if second == start:
                    return trail
                if second in seen:
                    continue
                seen.add(second)
                stack.append((second, trail + [second]))
        return sorted(component)  # unreachable for a real SCC

    def _reacquire_diagnostics(self) -> Iterable[Diagnostic]:
        seen: Set[Tuple[str, str, int]] = set()
        for name, path, line, _held in self._reacquires:
            if self.lock_kinds.get(name) != "Lock":
                continue  # reentrant or unknown: benefit of the doubt
            key = (name, path, line)
            if key in seen:
                continue
            seen.add(key)
            yield Diagnostic(
                "lock-reacquire",
                f"non-reentrant lock {name} acquired while already "
                f"held on the same path (self-deadlock)",
                Severity.ERROR, path=path, line=line)

    def graph(self) -> List[Dict[str, str]]:
        """JSON-ready edge list for the CLI ``--json`` output."""
        return [{"first": edge.first, "second": edge.second,
                 "witness": edge.witness}
                for edge in sorted(self.edges.values(),
                                   key=lambda e: (e.first, e.second))]


_MATCH = getattr(ast, "Match", None)


def _tarjan_sccs(adjacency: Dict[str, List[str]]) -> List[Set[str]]:
    """Iterative Tarjan strongly-connected components."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]

    for root in adjacency:
        if root in index_of:
            continue
        work = [(root, iter(adjacency[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, neighbours = work[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour not in index_of:
                    index_of[neighbour] = low[neighbour] = counter[0]
                    counter[0] += 1
                    stack.append(neighbour)
                    on_stack.add(neighbour)
                    work.append((neighbour, iter(adjacency[neighbour])))
                    advanced = True
                    break
                if neighbour in on_stack:
                    low[node] = min(low[node], index_of[neighbour])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components
