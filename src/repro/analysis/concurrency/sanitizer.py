"""Public facade for the runtime lock sanitizer.

The implementation lives in :mod:`repro.obs.locks` — at the very bottom
of the stack, importing only the standard library — so that
``repro.obs.metrics``/``trace`` and ``repro.core.counters`` can create
their locks through the factory without an import cycle.  Tooling and
tests should import the sanitizer from here; see the module docstring
of :mod:`repro.obs.locks` for semantics and the report schema
(``repro.obs.locksan/v1``).
"""

from __future__ import annotations

from repro.obs.locks import (
    MAX_REPORTS,
    SanitizedLock,
    hold_threshold_ms,
    make_lock,
    make_rlock,
    note_blocking_io,
    report,
    reset,
    sanitizer_enabled,
    sanitizer_provider,
    set_hold_threshold_ms,
    set_sanitizer_enabled,
)

__all__ = [
    "MAX_REPORTS",
    "SanitizedLock",
    "hold_threshold_ms",
    "make_lock",
    "make_rlock",
    "note_blocking_io",
    "report",
    "reset",
    "sanitizer_enabled",
    "sanitizer_provider",
    "set_hold_threshold_ms",
    "set_sanitizer_enabled",
]
