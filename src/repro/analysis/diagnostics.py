"""Structured diagnostics shared by the binary verifiers and the linter.

A :class:`Diagnostic` is a plain record, not an exception: analysis
passes report *everything* they find and never abort on the first
problem, so a single run over a corrupt image or a source tree yields
the complete picture.  ``ERROR`` means an invariant of the format (or of
the codebase) is violated; ``WARNING`` flags suspicious-but-decodable
structure such as unreferenced slack bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" / "warning" in reports
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a verifier or lint rule.

    ``offset`` is a byte offset for binary verifiers; lint diagnostics
    use ``line``/``column`` and a ``path`` instead.  ``rule`` is a stable
    machine-readable identifier (e.g. ``oson.tree.bounds`` or
    ``lint.broad-except``) that tests and allowlists key on.
    """

    rule: str
    message: str
    severity: Severity = Severity.ERROR
    offset: Optional[int] = None
    path: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    context: dict = field(default_factory=dict, compare=False)

    def render(self) -> str:
        """One-line human-readable form."""
        where = []
        if self.path is not None:
            loc = self.path
            if self.line is not None:
                loc += f":{self.line}"
                if self.column is not None:
                    loc += f":{self.column}"
            where.append(loc)
        if self.offset is not None:
            where.append(f"byte {self.offset}")
        prefix = " ".join(where)
        head = f"{prefix}: " if prefix else ""
        return f"{head}{self.severity}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form for ``--json`` CLI output."""
        out = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("offset", "path", "line", "column"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.context:
            out["context"] = dict(self.context)
        return out


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True if any diagnostic is ERROR severity."""
    return any(d.severity is Severity.ERROR for d in diagnostics)
