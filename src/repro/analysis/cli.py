"""``python -m repro.analysis`` — verify binary images, lint the tree.

Subcommands::

    python -m repro.analysis verify IMAGE [IMAGE...]      # files or dirs
    python -m repro.analysis lint PATH [PATH...]          # .py files or dirs
    python -m repro.analysis concurrency PATH [PATH...]   # lock discipline

``verify`` sniffs each file's format from its magic: OSON images, and
durable-store files (``log-*.log`` segments/WALs and ``MANIFEST``,
recognized by their frame magic and routed through
:func:`repro.storage.fsck.verify_store_file` — the same code path
``python -m repro.tools.store fsck`` uses); anything else falls back to
BSON.  ``--format`` forces one.  Exit status is 0 when no
ERROR-severity diagnostic was produced, 1 otherwise; ``--json`` emits a
machine-readable report instead of one line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.bson_verifier import verify_bson
from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.analysis.lint.engine import LintEngine
from repro.analysis.oson_verifier import verify_oson
from repro.core.oson.constants import MAGIC as OSON_MAGIC


def _summary(diagnostics: Sequence[Diagnostic],
             engine: Optional[LintEngine] = None) -> dict:
    """Severity tallies (+ suppression drift, when an engine ran)."""
    counts = {severity.name.lower(): 0 for severity in Severity}
    for diag in diagnostics:
        counts[diag.severity.name.lower()] += 1
    summary = dict(counts)
    if engine is not None:
        summary["files"] = engine.stats.get("files", 0)
        summary["suppressed"] = engine.stats.get("suppressed", 0)
        summary["suppressed_rules"] = dict(
            sorted(engine.stats.get("suppressed_rules", {}).items()))
    return summary


def _iter_image_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*") if p.is_file())
        else:
            yield path


def _verify_one(data: bytes, forced: Optional[str]) -> Tuple[str,
                                                             List[Diagnostic]]:
    # imported here: repro.storage depends on repro.analysis verifiers,
    # so the CLI reaches back lazily instead of creating an import cycle
    from repro.storage.fsck import is_store_file, verify_store_file
    if forced:
        fmt = forced
    elif data[:4] == OSON_MAGIC:
        fmt = "oson"
    elif is_store_file(data):
        fmt = "store"
    else:
        fmt = "bson"
    if fmt == "store":
        return fmt, verify_store_file(data)
    verifier = verify_oson if fmt == "oson" else verify_bson
    return fmt, verifier(data)


def _emit(report: List[dict], diagnostics: Iterable[Tuple[str, Diagnostic]],
          as_json: bool) -> None:
    for path, diag in diagnostics:
        if as_json:
            entry = diag.to_dict()
            entry["file"] = path
            report.append(entry)
        else:
            prefix = f"{path}: " if diag.path is None else ""
            print(f"{prefix}{diag.render()}")


def cmd_verify(args: argparse.Namespace) -> int:
    report: List[dict] = []
    failed = 0
    checked = 0
    for path in _iter_image_files(args.paths):
        try:
            data = path.read_bytes()
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            failed += 1
            continue
        fmt, diagnostics = _verify_one(data, args.format)
        checked += 1
        if has_errors(diagnostics):
            failed += 1
        _emit(report, ((str(path), d) for d in diagnostics), args.json)
        if not args.json and not diagnostics:
            print(f"{path}: {fmt} image ok ({len(data)} bytes)")
    if args.json:
        print(json.dumps({"checked": checked, "failed": failed,
                          "diagnostics": report}, indent=2))
    elif failed:
        print(f"{failed} of {checked} images failed verification")
    return 1 if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    engine = LintEngine()
    diagnostics = engine.lint_paths(args.paths)
    report: List[dict] = []
    _emit(report, ((d.path or "", d) for d in diagnostics), args.json)
    if args.json:
        timings = {rule: round(ms, 3) for rule, ms
                   in sorted(engine.rule_timings_ms.items())}
        print(json.dumps({"diagnostics": report,
                          "summary": _summary(diagnostics, engine),
                          "timings_ms": timings}, indent=2))
    elif not diagnostics:
        print("lint clean")
    return 1 if has_errors(diagnostics) else 0


def cmd_concurrency(args: argparse.Namespace) -> int:
    # imported lazily for symmetry with the other subcommands; the
    # concurrency package pulls in the whole rule catalog
    from repro.analysis.concurrency import check_paths
    diagnostics, analyzer = check_paths(args.paths)
    report: List[dict] = []
    _emit(report, ((d.path or "", d) for d in diagnostics), args.json)
    if args.json:
        print(json.dumps({"diagnostics": report,
                          "summary": _summary(diagnostics),
                          "lock_graph": analyzer.graph()}, indent=2))
    elif not diagnostics:
        print(f"concurrency clean "
              f"({len(analyzer.graph())} order edges, no cycles)")
    return 1 if has_errors(diagnostics) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis: OSON/BSON image verification and "
                    "project lint rules.")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report on stdout")
    commands = parser.add_subparsers(dest="command", required=True)
    verify = commands.add_parser(
        "verify", help="verify OSON/BSON binary images")
    verify.add_argument("paths", nargs="+",
                        help="image files or directories of images")
    verify.add_argument("--format", choices=("oson", "bson", "store"),
                        help="force the image format instead of sniffing "
                             "('store' = durable-store log/manifest files)")
    verify.set_defaults(func=cmd_verify)
    lint = commands.add_parser("lint", help="lint Python sources")
    lint.add_argument("paths", nargs="+",
                      help=".py files or directories to lint")
    lint.set_defaults(func=cmd_lint)
    concurrency = commands.add_parser(
        "concurrency",
        help="lock-discipline and lock-order static analysis")
    concurrency.add_argument("paths", nargs="+",
                             help=".py files or directories to analyze")
    concurrency.set_defaults(func=cmd_concurrency)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
