"""Static analysis for the repro codebase and its binary formats.

Two pillars (see DESIGN.md, "Static analysis"):

* **Binary image verifiers** — :func:`verify_oson` and :func:`verify_bson`
  statically check a byte image against the structural invariants of the
  format *without* running the decoder, emitting structured
  :class:`Diagnostic` records instead of raising.  A clean report is a
  proof obligation for the decoder: every image the verifier accepts must
  decode, and every image the encoder produces must verify clean (the
  differential tests under ``tests/analysis/`` enforce both directions).

* **AST lint pass** — :class:`LintEngine` walks Python sources and
  enforces project invariants (bounds-guarded byte reads, exhaustive
  opcode dispatch, no broad exception handlers, ...).  The repo lints
  itself in CI via ``python -m repro.analysis lint src/repro``.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity, has_errors
from repro.analysis.oson_verifier import verify_oson
from repro.analysis.bson_verifier import verify_bson
from repro.analysis.lint.engine import LintEngine, LintRule, ModuleContext

__all__ = [
    "Diagnostic",
    "Severity",
    "has_errors",
    "verify_oson",
    "verify_bson",
    "LintEngine",
    "LintRule",
    "ModuleContext",
]
