"""Admission controller: bounded queue, shedding, worker pool,
shutdown semantics, metrics."""

import threading

import pytest

from repro.errors import Overloaded, SessionClosed
from repro.obs.metrics import find_metric
from repro.serve import AdmissionController


def occupied_controller(queue_limit=1):
    """A 1-worker controller whose worker is parked on an event, plus
    the release event."""
    controller = AdmissionController("test_occupied", workers=1,
                                     queue_limit=queue_limit)
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(10)
        return "done"

    running = controller.submit(blocker)
    assert started.wait(5)
    return controller, release, running


class TestShedding:
    def test_full_queue_sheds_with_typed_error(self):
        controller, release, running = occupied_controller(queue_limit=1)
        try:
            queued = controller.submit(lambda: "queued")
            with pytest.raises(Overloaded) as exc_info:
                controller.submit(lambda: "shed")
            assert exc_info.value.queue_depth == 1
            assert exc_info.value.limit == 1
            release.set()
            assert running.result(5) == "done"
            assert queued.result(5) == "queued"
        finally:
            release.set()
            controller.close()

    def test_shed_counter_increments(self):
        controller, release, _ = occupied_controller(queue_limit=1)
        try:
            controller.submit(lambda: None)
            before = find_metric("serve.test_occupied.shed").value
            with pytest.raises(Overloaded):
                controller.submit(lambda: None)
            assert find_metric("serve.test_occupied.shed").value \
                == before + 1
        finally:
            release.set()
            controller.close()

    def test_shed_request_never_executes(self):
        controller, release, _ = occupied_controller(queue_limit=1)
        executed = []
        try:
            controller.submit(lambda: executed.append("queued"))
            with pytest.raises(Overloaded):
                controller.submit(lambda: executed.append("shed"))
            release.set()
            controller.drain()
            assert executed == ["queued"]
        finally:
            release.set()
            controller.close()


class TestExecution:
    def test_task_exception_reaches_caller_not_worker(self):
        controller = AdmissionController("test_exec", workers=2,
                                         queue_limit=8)
        try:
            def boom():
                raise RuntimeError("task failed")

            future = controller.submit(boom)
            with pytest.raises(RuntimeError):
                future.result(5)
            # the worker survived: the controller still executes work
            assert controller.submit(lambda: 7).result(5) == 7
        finally:
            controller.close()

    def test_cancelled_while_queued_never_runs(self):
        controller, release, _ = occupied_controller(queue_limit=4)
        executed = []
        try:
            queued = controller.submit(lambda: executed.append("ran"))
            assert queued.cancel()
            release.set()
            controller.drain()
            assert executed == []
            assert queued.cancelled()
        finally:
            release.set()
            controller.close()

    def test_queue_wait_histogram_observes(self):
        controller = AdmissionController("test_wait", workers=1,
                                         queue_limit=8)
        try:
            before = find_metric("serve.test_wait.queue_wait_ms").count
            controller.submit(lambda: None).result(5)
            assert find_metric("serve.test_wait.queue_wait_ms").count \
                == before + 1
        finally:
            controller.close()


class TestShutdown:
    def test_close_fails_queued_work_with_session_closed(self):
        controller, release, running = occupied_controller(queue_limit=4)
        queued = controller.submit(lambda: "never")
        controller_thread = threading.Thread(target=controller.close)
        controller_thread.start()
        release.set()
        controller_thread.join(5)
        assert running.result(5) == "done"  # in-flight work finishes
        with pytest.raises(SessionClosed):
            queued.result(5)

    def test_submit_after_close_raises(self):
        controller = AdmissionController("test_closed", workers=1,
                                         queue_limit=2)
        controller.close()
        with pytest.raises(SessionClosed):
            controller.submit(lambda: None)

    def test_close_is_idempotent(self):
        controller = AdmissionController("test_idem", workers=1,
                                         queue_limit=2)
        controller.close()
        controller.close()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController("test_bad", workers=0)
        with pytest.raises(ValueError):
            AdmissionController("test_bad", queue_limit=0)
