"""Session/cursor front-end: snapshot pinning, read-your-own-writes,
deadlines, cancellation, overload shedding, asyncio integration."""

import asyncio
import threading
import time

import pytest

from repro.engine.catalog import Database
from repro.engine.query import Query
from repro.engine.table import Column
from repro.errors import (Cancelled, Overloaded, QueryTimeout,
                          SessionClosed)
from repro.serve import CancelToken, Server
from repro.serve.session import _SnapshotView
from repro.storage import MemoryFileSystem


@pytest.fixture
def served():
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "po", [Column.of("id", "number"), Column.of("note", "varchar2(60)")],
        durable="db/po", fs=fs)
    table.insert_many([{"id": 1, "note": "one"}, {"id": 2, "note": "two"}])
    server = Server(db, read_workers=2, write_workers=2, queue_limit=16)
    yield server, db, table
    server.close()
    table.close()


def ids(cursor_or_rows):
    rows = (cursor_or_rows.fetchall()
            if hasattr(cursor_or_rows, "fetchall") else cursor_or_rows)
    return sorted(row["id"] for row in rows)


class TestCursorBasics:
    def test_execute_fetch(self, served):
        server, _, _ = served
        with server.session() as session:
            cursor = session.execute("SELECT id, note FROM po")
            assert cursor.rowcount == 2
            assert ids(cursor) == [1, 2]

    def test_fetchone_walks_then_none(self, served):
        server, _, _ = served
        with server.session() as session:
            cursor = session.execute("SELECT id FROM po ORDER BY id")
            assert cursor.fetchone() == {"id": 1}
            assert cursor.fetchone() == {"id": 2}
            assert cursor.fetchone() is None

    def test_cursor_iterates_remaining_rows(self, served):
        server, _, _ = served
        with server.session() as session:
            cursor = session.execute("SELECT id FROM po ORDER BY id")
            assert cursor.fetchone() == {"id": 1}  # consumed before iter
            assert [row["id"] for row in cursor] == [2]

    def test_fetch_without_execute_raises(self, served):
        server, _, _ = served
        with server.session() as session:
            with pytest.raises(SessionClosed):
                session.cursor().fetchall()


class TestSnapshotIsolation:
    def test_pinned_session_does_not_see_concurrent_writes(self, served):
        server, _, _ = served
        reader = server.session()
        assert ids(reader.execute("SELECT id FROM po")) == [1, 2]  # pins
        writer = server.session()
        writer.insert("po", {"id": 3, "note": "three"})
        # the reader's pin predates the write...
        assert ids(reader.execute("SELECT id FROM po")) == [1, 2]
        # ...until it refreshes
        reader.refresh()
        assert ids(reader.execute("SELECT id FROM po")) == [1, 2, 3]

    def test_read_your_own_writes(self, served):
        server, _, _ = served
        with server.session() as session:
            session.insert("po", {"id": 3, "note": "three"})
            assert ids(session.execute("SELECT id FROM po")) == [1, 2, 3]

    def test_pin_versions_are_monotonic(self, served):
        server, _, _ = served
        with server.session() as session:
            session.execute("SELECT id FROM po").fetchall()
            first = session.snapshot_version("po")
            session.insert("po", {"id": 3, "note": "three"})
            second = session.snapshot_version("po")
            assert second > first

    def test_insert_many_is_atomic_to_other_sessions(self, served):
        server, _, _ = served
        writer = server.session()
        writer.insert_many("po", [{"id": 10 + i, "note": "b"}
                                  for i in range(4)])
        reader = server.session()
        seen = ids(reader.execute("SELECT id FROM po"))
        assert seen == [1, 2, 10, 11, 12, 13]


class TestDeadlinesAndCancellation:
    def test_expired_deadline_raises_query_timeout(self, served):
        server, _, _ = served
        with server.session() as session:
            cursor = session.cursor().execute("SELECT id FROM po",
                                              timeout_ms=0.0)
            with pytest.raises(QueryTimeout):
                cursor.fetchall()

    def test_cancel_before_start_raises_typed_cancelled(self, served):
        server, _, _ = served
        release = threading.Event()
        # park both read workers so the statement stays queued
        blockers = [server.reads.submit(lambda: release.wait(10))
                    for _ in range(2)]
        try:
            with server.session() as session:
                cursor = session.cursor().execute("SELECT id FROM po")
                cursor.cancel()
                with pytest.raises(Cancelled):
                    cursor.fetchall()
        finally:
            release.set()
            for blocker in blockers:
                blocker.result(5)

    def test_cancel_token_aborts_mid_scan(self):
        """Cooperative cancellation fires at a row boundary: the hook
        trips after three rows and the query aborts without draining
        the source."""
        token = CancelToken()
        consumed = []

        def source():
            for i in range(100):
                consumed.append(i)
                yield {"n": i}

        def hook(_row):
            if len(consumed) >= 3:
                token.cancel()
            token.check()

        with pytest.raises(Cancelled):
            Query(source).instrumented(hook).rows()
        assert len(consumed) < 100

    def test_deadline_counts_queue_wait(self, served):
        """A statement that sat in the queue past its deadline times
        out when a worker finally picks it up, instead of running."""
        server, _, _ = served
        release = threading.Event()
        blockers = [server.reads.submit(lambda: release.wait(10))
                    for _ in range(2)]
        try:
            with server.session() as session:
                cursor = session.cursor().execute("SELECT id FROM po",
                                                  timeout_ms=1.0)
                time.sleep(0.05)  # let the queued deadline expire
                release.set()
                with pytest.raises(QueryTimeout):
                    cursor.fetchall()
        finally:
            release.set()
            for blocker in blockers:
                blocker.result(5)


class TestOverload:
    def test_saturated_read_lane_sheds_execute(self, served):
        server, _, _ = served
        release = threading.Event()
        started = threading.Barrier(3, timeout=10)

        def blocker():
            started.wait()
            release.wait(10)

        blockers = [server.reads.submit(blocker) for _ in range(2)]
        started.wait()  # both workers are now parked, queue is empty
        fillers = []
        try:
            with server.session() as session:
                # fill the queue to its limit with parked statements
                for _ in range(server.reads.queue_limit):
                    fillers.append(
                        server.reads.submit(lambda: None))
                with pytest.raises(Overloaded):
                    session.execute("SELECT id FROM po")
        finally:
            release.set()
            for blocker in blockers:
                blocker.result(5)


class TestAsyncio:
    def test_cursor_future_awaits(self, served):
        server, _, _ = served

        async def main(session):
            cursor = session.cursor().execute("SELECT id FROM po")
            rows = await asyncio.wrap_future(cursor.as_future())
            return sorted(row["id"] for row in rows)

        with server.session() as session:
            assert asyncio.run(main(session)) == [1, 2]


class TestLifecycle:
    def test_closed_session_refuses_statements(self, served):
        server, _, _ = served
        session = server.session()
        session.close()
        with pytest.raises(SessionClosed):
            session.execute("SELECT id FROM po")

    def test_closed_server_refuses_sessions(self, served):
        server, _, _ = served
        session = server.session()
        server.close()
        with pytest.raises(SessionClosed):
            server.session()
        with pytest.raises(SessionClosed):
            session.execute("SELECT id FROM po")

    def test_transient_table_writes_ride_the_write_lane(self, served):
        server, db, _ = served
        db.create_table("scratch", [Column.of("k", "number")])
        with server.session() as session:
            session.insert("scratch", {"k": 1})
            session.insert_many("scratch", [{"k": 2}, {"k": 3}])
            rows = session.execute("SELECT k FROM scratch").fetchall()
            assert sorted(r["k"] for r in rows) == [1, 2, 3]


class TestSnapshotView:
    def test_delegates_schema_but_pins_rows(self, served):
        server, db, table = served
        snapshot = table.store.snapshot()
        view = _SnapshotView(table, snapshot)
        assert view.name == "po"
        assert view.column("id").name == "id"  # schema delegation
        before = sorted(row["id"] for row in view.scan())
        table.insert({"id": 99, "note": "later"})
        assert sorted(row["id"] for row in view.scan()) == before
