"""Retry backoff vs the statement deadline (ISSUE satellite c).

The contract: retry waits are charged against the query's
``CancelToken`` *before* sleeping — a backoff the deadline cannot
absorb raises :class:`~repro.errors.QueryTimeout` immediately, never
sleeps past the deadline, and queue wait time participates in the same
budget.  Plus the serve-layer plumbing of shard-failure policy:
per-statement ``on_shard_failure`` and ``Cursor.degraded``.
"""

import threading
import time

import pytest

from repro.engine.catalog import Database
from repro.engine.query import Query
from repro.engine.scatter import ScatterPolicy, ShardInput, ShardPlanInfo, \
    execute_scatter
from repro.engine.table import Column
from repro.errors import (Cancelled, DegradedResult, QueryTimeout,
                          ShardUnavailable, TransientFault)
from repro.obs import clock as clockmod
from repro.obs import metrics
from repro.serve import CancelToken, Server
from repro.storage import MemoryFileSystem, chaos


@pytest.fixture
def virtual_clock():
    clock = clockmod.VirtualClock()
    previous = clockmod.install_clock(clock)
    yield clock
    clockmod.install_clock(previous)


@pytest.fixture
def sharded_served():
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "po", [Column.of("did", "number"), Column.of("v", "number")],
        durable="db/po", fs=fs, shards=2, routing_field="did")
    table.insert_many([{"did": i, "v": i * 10} for i in range(8)])
    server = Server(db, read_workers=2, write_workers=1, queue_limit=16)
    yield server, db, table
    server.close()
    table.close()


def scan_outage(shard=None, limit=None):
    """Every (matching) shard scan raises a transient fault."""
    return chaos.ChaosPlan(seed=5, rules=(
        chaos.ChaosRule(point="shard.scan", shard=shard, rate=1.0,
                        limit=limit),))


class TestCancelTokenLookahead:
    def test_no_deadline_never_times_out(self):
        token = CancelToken()
        token.check(ahead_s=3600.0)

    def test_lookahead_charges_the_wait_up_front(self):
        token = CancelToken(timeout_ms=50.0)
        token.check()  # plenty of budget for "now"
        timeouts = metrics.counter("serve.query.timeouts").value
        with pytest.raises(QueryTimeout) as exc_info:
            token.check(ahead_s=1.0)  # a 1s sleep cannot fit in 50ms
        assert exc_info.value.elapsed_ms >= 0
        assert metrics.counter(
            "serve.query.timeouts").value == timeouts + 1

    def test_cancellation_beats_deadline(self):
        token = CancelToken(timeout_ms=0.0)
        token.cancel()
        with pytest.raises(Cancelled):
            token.check(ahead_s=10.0)


class TestBackoffAgainstDeadline:
    """Scatter-level: the retry loop consults the token before every
    backoff sleep."""

    def make_info(self, failures=99):
        from repro.core.dataguide.builder import DataGuideBuilder
        rows = [{"v": 1}, {"v": 2}]
        builder = DataGuideBuilder()
        builder.add_many(rows)
        state = {"left": failures}

        def source():
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientFault("flaky")
            return iter(rows)
        return ShardPlanInfo(
            "t", [ShardInput(0, source, builder.guide())],
            lambda c: None), rows

    def test_backoff_exceeding_deadline_raises_timeout(
            self, virtual_clock):
        info, _rows = self.make_info()
        token = CancelToken(timeout_ms=5.0)
        policy = ScatterPolicy(
            backoff=clockmod.BackoffPolicy(base_ms=50.0, jitter=0.0),
            token=token)
        with pytest.raises(QueryTimeout):
            execute_scatter(info, [True], None, None, None, morsel=True,
                            policy=policy)
        # charged up front: the overrunning backoff never slept
        assert virtual_clock.sleeps == []

    def test_generous_deadline_lets_retries_finish(self, virtual_clock):
        info, rows = self.make_info(failures=1)
        token = CancelToken(timeout_ms=60_000.0)
        policy = ScatterPolicy(
            backoff=clockmod.BackoffPolicy(base_ms=50.0, jitter=0.0),
            token=token)
        out = execute_scatter(info, [True], None, None, None,
                              morsel=True, policy=policy)
        assert out == rows
        assert virtual_clock.sleeps == [0.05]


class TestServeDeadlineUnderRetry:
    def test_retry_budget_cannot_stretch_the_deadline(
            self, sharded_served, virtual_clock):
        """Permanent scan faults + a 2ms deadline: the statement dies
        with QueryTimeout — the seeded backoff never sleeps the
        deadline away."""
        server, _, _ = sharded_served
        with chaos.active(scan_outage()):
            with server.session() as session:
                cursor = session.execute("SELECT did FROM po",
                                         timeout_ms=2.0)
                with pytest.raises(QueryTimeout):
                    cursor.fetchall()

    def test_queue_wait_and_retry_share_one_budget(
            self, sharded_served, virtual_clock):
        """The deadline starts at admission: after the queue eats the
        whole budget, the retry machinery must not sleep at all."""
        server, _, _ = sharded_served
        release = threading.Event()
        blockers = [server.reads.submit(lambda: release.wait(10))
                    for _ in range(2)]
        try:
            with chaos.active(scan_outage()):
                with server.session() as session:
                    cursor = session.execute("SELECT did FROM po",
                                             timeout_ms=20.0)
                    time.sleep(0.05)  # queue wait outlives the budget
                    release.set()
                    with pytest.raises(QueryTimeout):
                        cursor.fetchall()
        finally:
            release.set()
            for blocker in blockers:
                blocker.result(5)
        assert virtual_clock.sleeps == []  # no post-deadline backoff

    def test_exhausted_retries_surface_typed_unavailable(
            self, sharded_served, virtual_clock):
        server, _, _ = sharded_served
        with chaos.active(scan_outage()):
            with server.session() as session:
                cursor = session.execute("SELECT did FROM po")
                with pytest.raises(ShardUnavailable):
                    cursor.fetchall()


class TestShardFailurePolicyPlumbing:
    def test_partial_statement_returns_degraded_cursor(
            self, sharded_served, virtual_clock):
        server, _, table = sharded_served
        target = table._store.shard_of_value(0)
        degraded = metrics.counter("serve.query.degraded").value
        with chaos.active(scan_outage(shard=target)):
            with server.session() as session:
                cursor = session.execute("SELECT did FROM po",
                                         on_shard_failure="partial")
                rows = cursor.fetchall()
        marker = cursor.degraded
        assert isinstance(marker, DegradedResult)
        assert cursor.shards_failed == (target,)
        # only the healthy shard's documents came back
        assert 0 < len(rows) < 8
        assert metrics.counter(
            "serve.query.degraded").value == degraded + 1

    def test_default_policy_fails_loud(self, sharded_served,
                                       virtual_clock):
        server, _, table = sharded_served
        target = table._store.shard_of_value(0)
        with chaos.active(scan_outage(shard=target)):
            with server.session() as session:
                cursor = session.execute("SELECT did FROM po")
                with pytest.raises(ShardUnavailable):
                    cursor.fetchall()

    def test_session_level_policy_applies_to_every_statement(
            self, virtual_clock):
        fs = MemoryFileSystem()
        db = Database()
        table = db.create_table(
            "po", [Column.of("did", "number")],
            durable="db/po", fs=fs, shards=2, routing_field="did")
        table.insert_many([{"did": i} for i in range(8)])
        server = Server(db, read_workers=2, write_workers=1,
                        on_shard_failure="partial")
        target = table._store.shard_of_value(0)
        try:
            with chaos.active(scan_outage(shard=target)):
                with server.session() as session:
                    cursor = session.execute("SELECT did FROM po")
                    cursor.fetchall()
                    assert cursor.shards_failed == (target,)
        finally:
            server.close()
            table.close()

    def test_server_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            Server(Database(), on_shard_failure="shrug")

    def test_execute_query_carries_policy_and_deadline(
            self, sharded_served, virtual_clock):
        server, _, table = sharded_served
        target = table._store.shard_of_value(0)
        with chaos.active(scan_outage(shard=target)):
            with server.session() as session:
                cursor = session.execute_query(
                    Query(table).select("did"),
                    on_shard_failure="partial")
                rows = cursor.fetchall()
                assert cursor.shards_failed == (target,)
                assert 0 < len(rows) < 8
                # and the deadline token is wired in too
                slow = session.execute_query(Query(table),
                                             timeout_ms=0.0)
                with pytest.raises(QueryTimeout):
                    slow.fetchall()

    def test_complete_results_report_no_degradation(self, sharded_served):
        server, _, _ = sharded_served
        with server.session() as session:
            cursor = session.execute("SELECT did FROM po",
                                     on_shard_failure="partial")
            assert len(cursor.fetchall()) == 8
            assert cursor.degraded is None
            assert cursor.shards_failed == ()
