"""Partition pruning rules and the scatter-gather executor.

Pruning soundness is the load-bearing property (DESIGN §10.4): a shard
may be skipped only when its DataGuide *proves* no document can match.
Every ambiguous case — heterogeneous types, missing bounds, unknown
operators — must answer "could match" and scan.  The gather half is
pinned to single-stream ``group_by`` row parity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dataguide.builder import DataGuideBuilder
from repro.engine import executor, expr
from repro.engine.scatter import (ShardInput, ShardPlanInfo,
                                  execute_scatter, prune_shards,
                                  pushable_conjuncts, shard_can_match,
                                  worker_count)


def guide_of(*documents):
    builder = DataGuideBuilder()
    builder.add_many(list(documents))
    return builder.guide()


class TestPushableConjuncts:
    def test_comparison_and_inlist(self):
        conjuncts = pushable_conjuncts(
            expr.And(expr.Col("a") == 1, expr.Col("b").in_(["x", "y"])))
        assert ("a", "=", [1]) in conjuncts
        assert ("b", "=", ["x", "y"]) in conjuncts

    def test_non_decomposable_parts_dropped(self):
        either = expr.Or(expr.Col("a") == 1, expr.Col("b") == 2)
        assert pushable_conjuncts(either) == []
        conjuncts = pushable_conjuncts(expr.And(either, expr.Col("c") > 3))
        assert conjuncts == [("c", ">", [3])]

    def test_null_literal_not_pushed(self):
        assert pushable_conjuncts(expr.Col("a") == None) == []  # noqa: E711

    def test_column_to_column_not_pushed(self):
        assert pushable_conjuncts(expr.Col("a") == expr.Col("b")) == []


class TestShardCanMatch:
    def test_path_absence_prunes(self):
        guide = guide_of({"other": 1})
        assert not shard_can_match(guide, "$.v", "=", [5])

    def test_interval_miss_prunes(self):
        guide = guide_of({"v": 10}, {"v": 20})
        assert not shard_can_match(guide, "$.v", "=", [5])
        assert not shard_can_match(guide, "$.v", ">", [20])
        assert not shard_can_match(guide, "$.v", ">=", [21])
        assert not shard_can_match(guide, "$.v", "<", [10])
        assert not shard_can_match(guide, "$.v", "<=", [9])

    def test_interval_hit_scans(self):
        guide = guide_of({"v": 10}, {"v": 20})
        assert shard_can_match(guide, "$.v", "=", [15])
        assert shard_can_match(guide, "$.v", ">", [19])
        assert shard_can_match(guide, "$.v", ">=", [20])
        assert shard_can_match(guide, "$.v", "<", [11])
        assert shard_can_match(guide, "$.v", "<=", [10])

    def test_string_interval(self):
        guide = guide_of({"r": "eu"}, {"r": "us"})
        assert not shard_can_match(guide, "$.r", "=", ["ap"])
        assert shard_can_match(guide, "$.r", "=", ["eu"])
        assert shard_can_match(guide, "$.r", "=", ["fr"])  # inside range

    def test_in_list_prunes_only_when_every_value_misses(self):
        guide = guide_of({"v": 10}, {"v": 20})
        assert shard_can_match(guide, "$.v", "=", [5, 15])
        assert not shard_can_match(guide, "$.v", "=", [5, 25])

    def test_mixed_type_path_prunes_soundly(self):
        """A path holding both numbers and strings generalizes to
        ``string`` and coerces its extremes through ``str()``.  The
        coerced bounds still cover every value's ``str()`` image, so a
        string literal outside them may prune — but a number or bool
        literal could equal a *masked* non-string value and must always
        scan."""
        guide = guide_of({"v": 10}, {"v": "zebra"})
        # interval is ['10', 'zebra'] — masked number 10 would be lost
        assert shard_can_match(guide, "$.v", "=", [10])
        assert shard_can_match(guide, "$.v", "=", [99999])
        assert shard_can_match(guide, "$.v", "=", ["zebra"])
        assert not shard_can_match(guide, "$.v", "=", ["zzzz"])
        # a masked bool could equal a bool literal, too
        masked_bool = guide_of({"v": True}, {"v": "zebra"})
        assert shard_can_match(masked_bool, "$.v", "=", [True])

    def test_path_also_object_never_prunes_by_interval(self):
        guide = guide_of({"v": 10}, {"v": {"nested": 1}})
        assert shard_can_match(guide, "$.v", "=", [99999])

    def test_type_mismatched_equality_can_prune(self):
        """Homogeneous numbers can never equal a string literal."""
        guide = guide_of({"v": 10}, {"v": 20})
        assert not shard_can_match(guide, "$.v", "=", ["10"])

    def test_type_mismatched_range_scans(self):
        guide = guide_of({"v": 10}, {"v": 20})
        assert shard_can_match(guide, "$.v", ">", ["a"])

    def test_bool_literal_unifies_numerically_for_equality(self):
        """The engine matches ``1 = TRUE`` (numeric unification), so a
        bool literal prunes by its 0/1 image, not by type mismatch."""
        guide = guide_of({"v": 0}, {"v": 1})
        assert shard_can_match(guide, "$.v", "=", [True])
        assert shard_can_match(guide, "$.v", ">", [True])
        out_of_range = guide_of({"v": 5}, {"v": 10})
        assert not shard_can_match(out_of_range, "$.v", "=", [True])

    def test_unknown_operator_scans(self):
        guide = guide_of({"v": 10})
        assert shard_can_match(guide, "$.v", "<>", [10])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50),
                    min_size=1, max_size=10),
           st.sampled_from(["=", "<", "<=", ">", ">="]),
           st.integers(min_value=-60, max_value=60))
    def test_never_prunes_a_matching_document(self, values, op, literal):
        """Soundness, property-tested: if any stored value satisfies the
        predicate, the shard must answer "could match"."""
        import operator
        ops = {"=": operator.eq, "<": operator.lt, "<=": operator.le,
               ">": operator.gt, ">=": operator.ge}
        guide = guide_of(*({"v": v} for v in values))
        if any(ops[op](v, literal) for v in values):
            assert shard_can_match(guide, "$.v", op, [literal])

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.one_of(st.integers(-20, 20), st.booleans(),
                              st.text(alphabet="ab1z", max_size=3)),
                    min_size=1, max_size=8),
           st.one_of(st.integers(-25, 25), st.booleans(),
                     st.text(alphabet="ab1z", max_size=3)))
    def test_equality_soundness_over_mixed_values(self, values, literal):
        """Equality pruning judged against the engine's own comparison
        semantics: whenever *it* would match a stored value, the shard
        must not be pruned — across type mixtures and bool unification."""
        guide = guide_of(*({"v": v} for v in values))
        predicate = expr.Col("v") == expr.Literal(literal)
        if any(predicate.evaluate({"v": v}) for v in values):
            assert shard_can_match(guide, "$.v", "=", [literal])


def make_info(shards, **kwargs):
    inputs = [ShardInput(i, lambda rows=rows: iter(rows),
                         guide_of(*rows))
              for i, rows in enumerate(shards)]
    return ShardPlanInfo("t", inputs, lambda c: f"$.{c}", **kwargs)


SHARDS = [
    [{"k": "a", "v": 5}, {"k": "a", "v": 8}],
    [{"k": "b", "v": 12}, {"k": "b", "v": 18}],
    [{"k": "c", "v": 25}, {"k": "c", "v": 30}],
]


class TestPruneShards:
    def test_no_conjuncts_keeps_all(self):
        assert prune_shards(make_info(SHARDS), []) == [True] * 3

    def test_interval_conjunct_prunes(self):
        selected = prune_shards(make_info(SHARDS),
                                [("v", ">=", [20])])
        assert selected == [False, False, True]

    def test_conjuncts_intersect(self):
        selected = prune_shards(
            make_info(SHARDS), [("v", ">", [9]), ("v", "<", [20])])
        assert selected == [False, True, False]

    def test_unknown_column_ignored(self):
        info = make_info(SHARDS)
        info.prune_path = lambda c: None
        assert prune_shards(info, [("v", ">=", [20])]) == [True] * 3

    def test_routing_equality(self):
        placement = {"a": 0, "b": 1, "c": 2}
        info = make_info(SHARDS, routing_field="k",
                         shard_of_value=lambda v: placement.get(v))
        assert prune_shards(info, [("k", "=", ["b"])]) == [
            False, True, False]
        assert prune_shards(info, [("k", "=", ["a", "c"])]) == [
            True, False, True]

    def test_unroutable_literal_disables_routing_rule(self):
        info = make_info(SHARDS, routing_field="k",
                         shard_of_value=lambda v: None)
        # path-absence/interval may still prune, routing must not
        assert prune_shards(info, [("k", "=", ["a"])])[0] is True


class TestExecuteScatter:
    def test_plain_rows_concatenate_in_shard_order(self):
        info = make_info(SHARDS)
        rows = execute_scatter(info, [True] * 3, None, None, None,
                               morsel=True)
        assert rows == [row for shard in SHARDS for row in shard]

    def test_pruned_shards_not_scanned(self):
        touched = []

        def tracking_rows(index, rows):
            def it():
                touched.append(index)
                return iter(rows)
            return it

        inputs = [ShardInput(i, tracking_rows(i, rows), guide_of(*rows))
                  for i, rows in enumerate(SHARDS)]
        info = ShardPlanInfo("t", inputs, lambda c: f"$.{c}")
        execute_scatter(info, [True, False, True], None, None, None,
                        morsel=True)
        assert sorted(touched) == [0, 2]

    @pytest.mark.parametrize("morsel", [True, False])
    def test_group_gather_parity_with_single_stream(self, morsel):
        """The scatter-gather group-by must be row-for-row identical to
        the single-stream group_by over the concatenated input."""
        keys = [executor.normalize_output("k")]
        aggregates = [("total", expr.SUM(expr.Col("v"))),
                      ("n", expr.COUNT()),
                      ("lo", expr.MIN(expr.Col("v"))),
                      ("hi", expr.MAX(expr.Col("v")))]
        info = make_info(SHARDS)
        scattered = execute_scatter(info, [True] * 3, None, None,
                                    (keys, aggregates), morsel=morsel)
        flat = [row for shard in SHARDS for row in shard]
        single = list(executor.group_by(iter(flat), keys, aggregates))
        assert scattered == single

    def test_global_aggregate_over_all_pruned_shards(self):
        """SQL's empty-input global group: COUNT over zero surviving
        shards is still one row of 0."""
        info = make_info(SHARDS)
        rows = execute_scatter(info, [False] * 3, None, None,
                               ([], [("n", expr.COUNT())]), morsel=True)
        assert rows == [{"n": 0}]

    def test_predicate_and_projection_apply_per_shard(self):
        info = make_info(SHARDS)
        rows = execute_scatter(
            info, [True] * 3, expr.Col("v") >= 10,
            [executor.normalize_output("v")], None, morsel=True)
        assert rows == [{"v": 12}, {"v": 18}, {"v": 25}, {"v": 30}]

    def test_metrics_counters_advance(self):
        from repro.obs import metrics
        info = make_info(SHARDS)
        before_scanned = metrics.counter(
            "engine.scatter.shards_scanned").value
        before_pruned = metrics.counter(
            "engine.scatter.shards_pruned").value
        execute_scatter(info, [True, False, False], None, None, None,
                        morsel=True)
        assert metrics.counter(
            "engine.scatter.shards_scanned").value == before_scanned + 1
        assert metrics.counter(
            "engine.scatter.shards_pruned").value == before_pruned + 2

    def test_worker_exception_propagates(self):
        class Boom(Exception):
            pass

        def exploding():
            raise Boom

        inputs = [ShardInput(0, lambda: iter(SHARDS[0]),
                             guide_of(*SHARDS[0])),
                  ShardInput(1, exploding, guide_of(*SHARDS[1]))]
        info = ShardPlanInfo("t", inputs, lambda c: None)
        with pytest.raises(Boom):
            execute_scatter(info, [True, True], None, None, None,
                            morsel=True)

    def test_hook_runs_inside_workers(self):
        seen = []
        info = make_info(SHARDS)
        execute_scatter(info, [True] * 3, None, None, None,
                        morsel=True, hook=seen.append)
        assert len(seen) == sum(len(s) for s in SHARDS)


class TestWorkerCount:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        assert worker_count(8) == 2
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "16")
        assert worker_count(4) == 4  # never more workers than shards

    def test_defaults_to_machine_width(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
        import os
        assert worker_count(64) == max(1, min(64, os.cpu_count() or 1))


class TestGatherPrimitives:
    """The public gather API (promoted from ``_fold_partials``):
    partial → gather → finalize equals the one-shot group_by."""

    @pytest.mark.parametrize("morsel", [True, False])
    def test_partial_finalize_identity(self, morsel):
        keys = [executor.normalize_output("k")]
        aggregates = [("total", expr.SUM(expr.Col("v"))),
                      ("mean", expr.AVG(expr.Col("v")))]
        flat = [row for shard in SHARDS for row in shard]
        partial = executor.partial_group_by(iter(flat), keys, aggregates,
                                            morsel=morsel)
        finalized = list(executor.finalize_groups(partial, keys,
                                                  aggregates))
        assert finalized == list(executor.group_by(iter(flat), keys,
                                                   aggregates))

    def test_gather_merges_disjoint_and_overlapping_keys(self):
        keys = [executor.normalize_output("k")]
        aggregates = [("n", expr.COUNT())]
        p1 = executor.partial_group_by(
            iter([{"k": "a"}, {"k": "b"}]), keys, aggregates)
        p2 = executor.partial_group_by(
            iter([{"k": "b"}, {"k": "c"}]), keys, aggregates)
        gathered = executor.gather_group_partials([p1, p2], aggregates)
        rows = {r["k"]: r["n"] for r in executor.finalize_groups(
            gathered, keys, aggregates)}
        assert rows == {"a": 1, "b": 2, "c": 1}

    def test_serialized_partials_roundtrip(self):
        """The process-boundary variant: serialize on the worker side,
        fold on the gather side — same result as the in-process merge."""
        keys = [executor.normalize_output("k")]
        aggregates = [("total", expr.SUM(expr.Col("v"))),
                      ("n", expr.COUNT())]
        per_shard = [executor.partial_group_by(iter(rows), keys,
                                               aggregates)
                     for rows in SHARDS]
        folded: dict = {}
        for partial in per_shard:
            executor.fold_serialized_partials(
                folded, executor.serialize_group_partials(partial),
                aggregates)
        via_serialized = list(executor.finalize_groups(folded, keys,
                                                       aggregates))
        direct = list(executor.finalize_groups(
            executor.gather_group_partials(per_shard, aggregates),
            keys, aggregates))
        assert via_serialized == direct

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.fixed_dictionaries({
            "k": st.sampled_from(["a", "b", "c"]),
            "v": st.one_of(st.none(),
                           st.integers(min_value=-100, max_value=100)),
        }), max_size=40),
        st.integers(min_value=1, max_value=4))
    def test_any_partitioning_gathers_to_single_stream(self, rows, parts):
        """Property: however the input is split into partial streams,
        gather+finalize equals the unsplit group_by (with NULLs)."""
        keys = [executor.normalize_output("k")]
        aggregates = [("total", expr.SUM(expr.Col("v"))),
                      ("n", expr.COUNT())]
        chunks = [rows[i::parts] for i in range(parts)]
        partials = [executor.partial_group_by(iter(chunk), keys,
                                              aggregates)
                    for chunk in chunks]
        gathered = executor.gather_group_partials(partials, aggregates)
        result = {r["k"]: (r["total"], r["n"])
                  for r in executor.finalize_groups(gathered, keys,
                                                    aggregates)}
        single = {r["k"]: (r["total"], r["n"])
                  for r in executor.group_by(iter(rows), keys,
                                             aggregates)}
        assert result == single
