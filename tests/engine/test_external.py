"""Tests for external JSON tables (In-Situ processing, section 3.4)."""

import pytest

from repro.core.dataguide import create_view_on_path
from repro.engine import Database, Query, expr
from repro.engine.external import ExternalJsonTable
from repro.errors import EngineError
from repro.jsontext import dumps

DOCS = [
    {"po": {"id": 1, "items": [{"sku": "A", "qty": 2}]}},
    {"po": {"id": 2, "note": "rush"}},
    {"po": {"id": 3, "items": [{"sku": "B", "qty": 1},
                               {"sku": "C", "qty": 5}]}},
]


@pytest.fixture()
def jsonl(tmp_path):
    path = tmp_path / "docs.jsonl"
    lines = [dumps(d) for d in DOCS]
    lines.insert(1, "")  # blank lines are skipped
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


class TestScan:
    def test_rows_with_line_numbers(self, jsonl):
        table = ExternalJsonTable(jsonl)
        rows = list(table.scan())
        assert len(rows) == 3
        assert rows[0]["LINE"] == 1
        assert rows[1]["LINE"] == 3  # the blank line was skipped
        assert "JDOC" in rows[0]

    def test_missing_file(self):
        with pytest.raises(EngineError):
            ExternalJsonTable("/nope/missing.jsonl")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n', encoding="utf-8")
        table = ExternalJsonTable(str(path))
        with pytest.raises(EngineError):
            list(table.scan())

    def test_skip_errors(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n{"ok": 2}\n', encoding="utf-8")
        table = ExternalJsonTable(str(path), skip_errors=True)
        assert len(list(table.scan())) == 2

    def test_in_situ_rescan_sees_appends(self, jsonl):
        table = ExternalJsonTable(jsonl)
        assert len(list(table.scan())) == 3
        with open(jsonl, "a", encoding="utf-8") as handle:
            handle.write(dumps({"po": {"id": 4}}) + "\n")
        assert len(list(table.scan())) == 4  # no reload step


class TestErrorPaths:
    """Failure-mode contract (ISSUE satellite): TOCTOU re-check,
    skip_errors accounting, blank lines, BOM tolerance."""

    def test_file_deleted_between_scans(self, jsonl):
        import os
        table = ExternalJsonTable(jsonl)
        assert len(list(table.scan())) == 3
        os.remove(jsonl)
        with pytest.raises(EngineError) as exc_info:
            list(table.scan())
        assert jsonl in str(exc_info.value)  # error names the path

    def test_missing_file_error_names_path(self):
        with pytest.raises(EngineError) as exc_info:
            ExternalJsonTable("/nope/missing.jsonl")
        assert "/nope/missing.jsonl" in str(exc_info.value)

    def test_malformed_line_error_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n', encoding="utf-8")
        table = ExternalJsonTable(str(path))
        with pytest.raises(EngineError) as exc_info:
            list(table.scan())
        assert str(path) in str(exc_info.value)
        assert ":2:" in str(exc_info.value)

    def test_skipped_count_tracks_each_scan(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\nnot json either\n{"ok": 2}\n',
                        encoding="utf-8")
        table = ExternalJsonTable(str(path), skip_errors=True)
        assert table.skipped_count == 0
        assert len(list(table.scan())) == 2
        assert table.skipped_count == 2
        # the counter resets per scan, it does not accumulate
        path.write_text('{"ok": 1}\n{broken\n', encoding="utf-8")
        assert len(list(table.scan())) == 1
        assert table.skipped_count == 1

    def test_blank_lines_are_not_counted_as_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n   \n{"b": 2}\n', encoding="utf-8")
        table = ExternalJsonTable(str(path), skip_errors=True)
        rows = list(table.scan())
        assert [r["LINE"] for r in rows] == [1, 4]
        assert table.skipped_count == 0

    def test_utf8_bom_first_line_parses(self, tmp_path):
        path = tmp_path / "bom.jsonl"
        path.write_bytes(b'\xef\xbb\xbf{"first": 1}\n{"second": 2}\n')
        table = ExternalJsonTable(str(path))
        rows = list(table.scan())
        assert len(rows) == 2
        assert rows[0]["LINE"] == 1
        from repro.jsontext import loads
        assert loads(rows[0]["JDOC"]) == {"first": 1}


class TestInSituQuerying:
    def test_query_over_external_table(self, jsonl):
        rows = (Query(ExternalJsonTable(jsonl))
                .where(expr.JsonExistsExpr("JDOC", "$.po.note"))
                .select("LINE")
                .rows())
        assert rows == [{"LINE": 3}]

    def test_dataguide_without_loading(self, jsonl):
        guide = ExternalJsonTable(jsonl).dataguide()
        assert "$.po.note" in guide.paths()
        assert guide.document_count == 3

    def test_dataguide_sampling(self, jsonl):
        guide = ExternalJsonTable(jsonl).dataguide(sample_percent=99, seed=1)
        assert guide.document_count <= 3

    def test_dmdv_view_over_external(self, jsonl):
        db = Database()
        table = ExternalJsonTable(jsonl)
        create_view_on_path(db, table, "JDOC", table.dataguide(),
                            view_name="EXT_RV",
                            include_columns=["LINE"])
        rows = db.query("EXT_RV").rows()
        assert len(rows) == 4  # 1 + 1(no items) + 2
        skus = sorted(r["JDOC$sku"] for r in rows if r["JDOC$sku"])
        assert skus == ["A", "B", "C"]


class TestCli:
    def test_flat_output(self, jsonl, capsys):
        from repro.tools.dataguide import main
        assert main([jsonl]) == 0
        captured = capsys.readouterr()
        assert "$.po.note" in captured.out
        assert "3 documents" in captured.err

    def test_hierarchical_output(self, jsonl, capsys):
        from repro.tools.dataguide import main
        assert main([jsonl, "--hierarchical"]) == 0
        captured = capsys.readouterr()
        from repro.jsontext import loads
        assert loads(captured.out)["type"] == "object"

    def test_sampled(self, jsonl, capsys):
        from repro.tools.dataguide import main
        assert main([jsonl, "--sample", "99", "--seed", "5"]) == 0
