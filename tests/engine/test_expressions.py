"""Tests for scalar/predicate/aggregate/window expressions."""

import pytest

from repro.engine import expr
from repro.engine.expressions import (
    And,
    Col,
    Literal,
    Not,
    Or,
)
from repro.errors import QueryError

ROW = {"a": 5, "b": "text", "c": None, "d": 2.5, "reference": "BULL-2014"}


class TestScalars:
    def test_col_and_literal(self):
        assert Col("a").evaluate(ROW) == 5
        assert Literal(7).evaluate(ROW) == 7

    def test_unknown_column_raises(self):
        with pytest.raises(QueryError):
            Col("zzz").evaluate(ROW)

    def test_arithmetic(self):
        assert (Col("a") + 1).evaluate(ROW) == 6
        assert (Col("a") - 2).evaluate(ROW) == 3
        assert (Col("a") * Col("d")).evaluate(ROW) == 12.5
        assert (Col("a") / 2).evaluate(ROW) == 2.5

    def test_arithmetic_null_propagates(self):
        assert (Col("c") + 1).evaluate(ROW) is None
        assert (Col("a") * Col("c")).evaluate(ROW) is None

    def test_alias(self):
        aliased = (Col("a") + 1).as_("a1")
        assert aliased.alias == "a1"
        assert aliased.evaluate(ROW) == 6


class TestPredicates:
    def test_comparisons(self):
        assert (Col("a") == 5).evaluate(ROW) is True
        assert (Col("a") != 5).evaluate(ROW) is False
        assert (Col("a") < 6).evaluate(ROW) is True
        assert (Col("a") >= 5).evaluate(ROW) is True

    def test_null_comparison_unknown(self):
        assert (Col("c") == 5).evaluate(ROW) is None
        assert (Col("c") != 5).evaluate(ROW) is None

    def test_cross_type_comparison_unknown(self):
        assert (Col("a") < "text").evaluate(ROW) is None

    def test_three_valued_and(self):
        true = Literal(1) == 1
        false = Literal(1) == 2
        null = Col("c") == 1
        assert And(true, true).evaluate(ROW) is True
        assert And(true, false).evaluate(ROW) is False
        assert And(true, null).evaluate(ROW) is None
        assert And(false, null).evaluate(ROW) is False  # short-circuit

    def test_three_valued_or(self):
        true = Literal(1) == 1
        false = Literal(1) == 2
        null = Col("c") == 1
        assert Or(false, true).evaluate(ROW) is True
        assert Or(false, false).evaluate(ROW) is False
        assert Or(false, null).evaluate(ROW) is None
        assert Or(true, null).evaluate(ROW) is True

    def test_not(self):
        assert Not(Literal(1) == 1).evaluate(ROW) is False
        assert Not(Col("c") == 1).evaluate(ROW) is None

    def test_in_list(self):
        assert Col("a").in_([1, 5, 9]).evaluate(ROW) is True
        assert Col("a").in_([1, 2]).evaluate(ROW) is False
        assert Col("c").in_([1]).evaluate(ROW) is None

    def test_like(self):
        assert Col("b").like("te%").evaluate(ROW) is True
        assert Col("b").like("%xt").evaluate(ROW) is True
        assert Col("b").like("t_xt").evaluate(ROW) is True
        assert Col("b").like("z%").evaluate(ROW) is False
        assert Col("c").like("%").evaluate(ROW) is None

    def test_is_null(self):
        assert Col("c").is_null().evaluate(ROW) is True
        assert Col("a").is_null().evaluate(ROW) is False
        assert Col("a").is_not_null().evaluate(ROW) is True


class TestFunctions:
    def test_substr(self):
        assert expr.SUBSTR(Col("b"), 2).evaluate(ROW) == "ext"
        assert expr.SUBSTR(Col("b"), 1, 2).evaluate(ROW) == "te"
        assert expr.SUBSTR(Col("b"), -2).evaluate(ROW) == "xt"

    def test_instr(self):
        assert expr.INSTR(Col("reference"), "-").evaluate(ROW) == 5
        assert expr.INSTR(Col("reference"), "zz").evaluate(ROW) == 0

    def test_substr_after_instr(self):
        # the Q6 idiom: order-sequence extraction from the reference
        seq = expr.SUBSTR(Col("reference"),
                          expr.INSTR(Col("reference"), "-") + 1)
        assert seq.evaluate(ROW) == "2014"

    def test_upper_lower_length(self):
        assert expr.UPPER(Col("b")).evaluate(ROW) == "TEXT"
        assert expr.LOWER(Literal("ABC")).evaluate(ROW) == "abc"
        assert expr.LENGTH(Col("b")).evaluate(ROW) == 4

    def test_nvl(self):
        assert expr.NVL(Col("c"), 0).evaluate(ROW) == 0
        assert expr.NVL(Col("a"), 0).evaluate(ROW) == 5

    def test_functions_null_propagate(self):
        assert expr.SUBSTR(Col("c"), 1).evaluate(ROW) is None
        assert expr.UPPER(Col("c")).evaluate(ROW) is None


class TestJsonExpressions:
    ROW = {"jdoc": '{"a": {"b": 7}}'}

    def test_json_value_expr(self):
        e = expr.JsonValueExpr("jdoc", "$.a.b", returning="number")
        assert e.evaluate(self.ROW) == 7
        assert e.evaluate({"jdoc": None}) is None

    def test_json_exists_expr(self):
        assert expr.JsonExistsExpr("jdoc", "$.a.b").evaluate(self.ROW) is True
        assert expr.JsonExistsExpr("jdoc", "$.a.c").evaluate(self.ROW) is False
        assert expr.JsonExistsExpr("jdoc", "$.a").evaluate({"jdoc": None}) is False

    def test_sql_rendering(self):
        e = expr.JsonValueExpr("jdoc", "$.a.b", returning="number")
        assert "JSON_VALUE" in e.sql()


class TestAggregates:
    ROWS = [{"v": 1, "g": "a"}, {"v": None, "g": "a"}, {"v": 3, "g": "b"},
            {"v": 5, "g": "b"}]

    def run(self, agg):
        state = agg.create()
        for row in self.ROWS:
            state.step(row)
        return state.final()

    def test_count_star_counts_all(self):
        assert self.run(expr.COUNT()) == 4

    def test_count_expr_skips_nulls(self):
        assert self.run(expr.COUNT(Col("v"))) == 3

    def test_sum_skips_nulls(self):
        assert self.run(expr.SUM(Col("v"))) == 9

    def test_sum_all_null_is_null(self):
        state = expr.SUM(Col("v")).create()
        state.step({"v": None})
        assert state.final() is None

    def test_avg(self):
        assert self.run(expr.AVG(Col("v"))) == 3

    def test_min_max(self):
        assert self.run(expr.MIN(Col("v"))) == 1
        assert self.run(expr.MAX(Col("v"))) == 5

    def test_empty_aggregates(self):
        for agg, expected in [(expr.COUNT(), 0), (expr.SUM(Col("v")), None),
                              (expr.MIN(Col("v")), None),
                              (expr.AVG(Col("v")), None)]:
            assert agg.create().final() == expected

    def test_sum_requires_operand(self):
        with pytest.raises(QueryError):
            expr.SumAgg(None).create()


class TestWindow:
    def test_lag(self):
        rows = [{"q": 10}, {"q": 20}, {"q": 30}]
        lag = expr.LAG(Col("q"))
        assert lag.compute(rows, 0) is None
        assert lag.compute(rows, 1) == 10
        assert lag.compute(rows, 2) == 20

    def test_lag_with_default(self):
        rows = [{"q": 10}, {"q": 20}]
        lag = expr.LAG(Col("q"), 1, Col("q"))
        assert lag.compute(rows, 0) == 10  # default evaluated on current row
        assert lag.compute(rows, 1) == 10

    def test_lag_offset(self):
        rows = [{"q": i} for i in range(5)]
        lag = expr.LAG(Col("q"), 3)
        assert lag.compute(rows, 4) == 1
        assert lag.compute(rows, 2) is None
