"""EXPLAIN ANALYZE: per-operator rows/time/cache attribution in both
executors, including the OSON JSON_TABLE path the figures measure."""

import pytest

from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, expr
from repro.engine.query import Query
from repro.engine.types import BLOB
from repro.obs import export_traces, take_spans
from repro.obs.schema import validate_trace_export
from repro.workloads.purchase_orders import (
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
)


@pytest.fixture(scope="module")
def oson_views():
    documents = list(PurchaseOrderGenerator().documents(40))
    db = Database()
    table = db.create_table("po_oson",
                            [Column("did", NUMBER), Column("jdoc", BLOB)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": oson_encode(doc)})
    mv, dmdv = build_po_views(db, table, "jdoc", "oson")
    return mv, dmdv, PoQueryParams(documents)


@pytest.fixture
def plan():
    rows = [{"k": i % 4, "v": i} for i in range(50)]
    return (Query(rows)
            .where(expr.Col("v") >= 10)
            .group_by(["k"], total=expr.SUM(expr.Col("v")))
            .order_by("total", desc=True))


class TestProfile:
    @pytest.mark.parametrize("mode", ["row", "morsel"])
    def test_stage_rows_and_timing(self, plan, mode):
        result = plan.mode(mode).profile()
        assert result["mode"] == mode
        assert [s["op"] for s in result["stages"]] == [
            "scan", "where", "group_by", "order_by"]
        scan, where, group, order = result["stages"]
        assert scan["rows_in"] is None and scan["rows_out"] == 50
        assert where["rows_in"] == 50 and where["rows_out"] == 40
        assert group["rows_in"] == 40 and group["rows_out"] == 4
        assert order["rows_out"] == 4
        for stage in result["stages"]:
            assert stage["elapsed_ms"] >= 0
        take_spans()

    @pytest.mark.parametrize("mode", ["row", "morsel"])
    def test_profile_rows_match_execution(self, plan, mode):
        pinned = plan.mode(mode)
        assert pinned.profile()["rows"] == pinned.rows()
        take_spans()

    def test_stage_modes_reflect_executor(self, plan):
        stages = plan.mode("morsel").profile()["stages"]
        by_op = {s["op"]: s for s in stages}
        assert by_op["where"]["mode"] == "morsel"
        assert by_op["group_by"]["mode"] == "morsel"
        assert by_op["order_by"]["mode"] == "row"  # single implementation
        stages = plan.mode("row").profile()["stages"]
        assert all(s["mode"] == "row" for s in stages)
        take_spans()

    def test_morsel_dispatch_annotations_present(self, plan):
        stages = plan.mode("morsel").profile()["stages"]
        where = next(s for s in stages if s["op"] == "where")
        assert where["metrics"].get("engine.morsel.batches")
        assert "engine.morsel_filter" in where["caches"]
        take_spans()

    def test_profile_emits_schema_valid_trace(self, plan):
        take_spans()
        plan.profile()
        payload = export_traces()
        assert not validate_trace_export(payload)
        roots = [s for s in payload["spans"] if s["name"] == "query"]
        assert roots, payload["spans"]
        ops = [c["attrs"]["op"] for c in roots[-1]["children"]]
        assert any(op.startswith("FILTER") for op in ops)


class TestExplainAnalyze:
    @pytest.mark.parametrize("mode", ["row", "morsel"])
    def test_annotated_plan_text(self, plan, mode):
        text = plan.mode(mode).explain(analyze=True)
        assert f"mode={mode}" in text
        assert "rows_in=50 rows_out=40" in text
        assert "ms" in text
        assert "FILTER v >= 10" in text
        take_spans()

    def test_plain_explain_unchanged(self, plan):
        text = plan.explain()
        assert text.splitlines() == [
            "SCAN list",
            "FILTER v >= 10",
            "HASH GROUP BY k AGG SUM(v) AS total",
            "SORT total DESC",
        ]

    @pytest.mark.parametrize("mode", ["row", "morsel"])
    def test_figure_query_over_oson_views(self, oson_views, mode):
        from repro.core.counters import cache_named

        mv, dmdv, params = oson_views
        # cold-start: a warm DMDV row cache would skip document decode
        # and path navigation entirely
        cache_named("sqljson.jsontable_rows").clear()
        cache_named("oson.document").clear()
        cache_named("sqljson.oson_adapter").clear()
        plan = (Query(dmdv)
                .where(expr.Col("partno") == params.partno)
                .group_by(["costcenter"], n=expr.COUNT()))
        text = plan.mode(mode).explain(analyze=True)
        # predicate pushdown onto the DMDV view is visible in the plan
        assert "SCAN oson_item_dmdv (pushdown)" in text
        # navigation-VM and document-cache activity is attributed to it
        assert "sqljson.path.vm_selects" in text
        assert "cache oson.document" in text
        take_spans()

    def test_cache_hits_appear_on_repeat(self, oson_views):
        mv, _dmdv, params = oson_views
        plan = Query(mv).where(expr.Col("reference") == params.reference)
        plan.rows()  # warm the DMDV row cache
        text = plan.explain(analyze=True)
        assert "cache sqljson.jsontable_rows: hits=+" in text
        take_spans()
