"""Tests for SQL column types and coercion."""

from decimal import Decimal

import pytest

from repro.engine.types import (
    BLOB,
    BOOLEAN,
    CLOB,
    DATE,
    NUMBER,
    RAW,
    VARCHAR2,
    parse_type,
)
from repro.errors import TypeCoercionError


class TestNumber:
    def test_accepts_numerics(self):
        assert NUMBER.coerce(5) == 5
        assert NUMBER.coerce(2.5) == 2.5
        assert NUMBER.coerce(Decimal("1.5")) == Decimal("1.5")
        assert NUMBER.coerce(None) is None

    def test_string_conversion(self):
        assert NUMBER.coerce("42") == 42
        assert NUMBER.coerce(" 3.5 ") == 3.5

    def test_rejects_bool_and_garbage(self):
        with pytest.raises(TypeCoercionError):
            NUMBER.coerce(True)
        with pytest.raises(TypeCoercionError):
            NUMBER.coerce("abc")
        with pytest.raises(TypeCoercionError):
            NUMBER.coerce([1])

    def test_storage_scales_with_digits(self):
        assert NUMBER.storage_bytes(1) < NUMBER.storage_bytes(123456789012)
        assert NUMBER.storage_bytes(None) == 1


class TestVarchar2:
    def test_size_enforced(self):
        t = VARCHAR2(5)
        assert t.coerce("abcde") == "abcde"
        with pytest.raises(TypeCoercionError):
            t.coerce("abcdef")

    def test_size_is_bytes_not_chars(self):
        t = VARCHAR2(5)
        with pytest.raises(TypeCoercionError):
            t.coerce("ééé")  # 6 UTF-8 bytes

    def test_rejects_non_string(self):
        with pytest.raises(TypeCoercionError):
            VARCHAR2(10).coerce(5)

    def test_bad_size(self):
        with pytest.raises(TypeCoercionError):
            VARCHAR2(0)

    def test_equality(self):
        assert VARCHAR2(10) == VARCHAR2(10)
        assert VARCHAR2(10) != VARCHAR2(20)


class TestRawAndLobs:
    def test_raw(self):
        t = RAW(4)
        assert t.coerce(b"abcd") == b"abcd"
        assert t.coerce(bytearray(b"ab")) == b"ab"
        with pytest.raises(TypeCoercionError):
            t.coerce(b"abcde")
        with pytest.raises(TypeCoercionError):
            t.coerce("text")

    def test_clob_unbounded(self):
        assert CLOB.coerce("x" * 10**6) == "x" * 10**6
        with pytest.raises(TypeCoercionError):
            CLOB.coerce(b"bytes")

    def test_blob_unbounded(self):
        assert BLOB.coerce(b"y" * 10**6) == b"y" * 10**6
        with pytest.raises(TypeCoercionError):
            BLOB.coerce("text")


class TestBooleanAndDate:
    def test_boolean(self):
        assert BOOLEAN.coerce(True) is True
        assert BOOLEAN.coerce(None) is None
        with pytest.raises(TypeCoercionError):
            BOOLEAN.coerce(1)

    def test_date_formats(self):
        assert DATE.coerce("2014-09-08") == "2014-09-08"
        assert DATE.coerce("2014-09-08 10:30") == "2014-09-08 10:30"
        assert DATE.coerce("2014-09-08T10:30:00") == "2014-09-08T10:30:00"
        with pytest.raises(TypeCoercionError):
            DATE.coerce("September 8")
        with pytest.raises(TypeCoercionError):
            DATE.coerce(20140908)


class TestParseType:
    @pytest.mark.parametrize("spec,expected", [
        ("number", NUMBER), ("NUMBER", NUMBER),
        ("varchar2(16)", VARCHAR2(16)), ("varchar(8)", VARCHAR2(8)),
        ("string", VARCHAR2(4000)), ("raw(100)", RAW(100)),
        ("clob", CLOB), ("blob", BLOB), ("boolean", BOOLEAN),
        ("date", DATE),
    ])
    def test_specs(self, spec, expected):
        assert parse_type(spec) == expected

    def test_unknown_type(self):
        with pytest.raises(TypeCoercionError):
            parse_type("geometry")

    def test_bad_syntax(self):
        with pytest.raises(TypeCoercionError):
            parse_type("varchar2(abc)")
