"""DurableTable: a heap table write-through-backed by the crash-safe
CollectionStore, created via ``Database.create_table(durable=...)``."""

import pytest

from repro.engine import Column, Database
from repro.engine.table import DurableTable, _document_to_row, _row_to_document
from repro.errors import EngineError
from repro.storage import MemoryFileSystem


def columns():
    return [
        Column.of("ID", "number", nullable=False),
        Column.of("NAME", "varchar2(30)"),
        Column.of("BLOB", "raw(100)"),
    ]


@pytest.fixture
def fs():
    return MemoryFileSystem()


def make_db(fs):
    db = Database()
    table = db.create_table("T", columns(), durable="t_store", fs=fs)
    return db, table


class TestWriteThrough:
    def test_create_table_durable_returns_durable_table(self, fs):
        _, table = make_db(fs)
        assert isinstance(table, DurableTable)
        assert table.recovery is None  # freshly created store

    def test_insert_persists_and_restores(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        table.insert({"ID": 2, "NAME": "bob"})
        table.close()

        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        rows = sorted(restored.scan(), key=lambda r: r["ID"])
        assert [r["NAME"] for r in rows] == ["ada", "bob"]
        assert len(restored) == 2
        assert restored.recovery.clean

    def test_delete_write_through(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        table.insert({"ID": 2, "NAME": "bob"})
        assert table.delete(lambda r: r["ID"] == 1) == 1
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        assert [r["NAME"] for r in restored.scan()] == ["bob"]

    def test_update_write_through(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        assert table.update(lambda r: r["ID"] == 1,
                            {"NAME": "grace"}) == 1
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        assert [r["NAME"] for r in restored.scan()] == ["grace"]

    def test_failed_update_leaves_row_and_document_intact(self, fs):
        """A coercion/constraint failure during update must surface
        *before* the delete listener fires — otherwise the backing
        document is already gone and the row is lost on restart."""
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        with pytest.raises(EngineError):
            table.update(lambda r: r["ID"] == 1, {"NAME": "x" * 99})
        (row,) = list(table.scan())
        assert row["NAME"] == "ada"
        # the row still has its backing document: deletable, durable
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        assert [r["NAME"] for r in restored.scan()] == ["ada"]
        assert restored.delete(lambda r: True) == 1

    def test_failed_constraint_update_leaves_document_intact(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})

        class NameNotNull:
            def check(self, row):
                if row.get("NAME") is None:
                    raise EngineError("NAME must not be NULL")

        table.add_constraint(NameNotNull())
        with pytest.raises(EngineError):
            table.update(lambda r: r["ID"] == 1, {"NAME": None})
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        assert [r["NAME"] for r in restored.scan()] == ["ada"]

    def test_raw_bytes_roundtrip(self, fs):
        _, table = make_db(fs)
        payload = bytes(range(32))
        table.insert({"ID": 1, "BLOB": payload})
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        (row,) = list(restored.scan())
        assert row["BLOB"] == payload
        assert isinstance(row["BLOB"], bytes)

    def test_missing_columns_restore_as_null(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1})
        table.close()
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        (row,) = list(restored.scan())
        assert row["NAME"] is None and row["BLOB"] is None

    def test_unknown_recovered_column_is_an_error(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        table.close()
        db2 = Database()
        with pytest.raises(EngineError):
            db2.create_table("T", [Column.of("OTHER", "number")],
                             durable="t_store", fs=fs)

    def test_checkpoint_delegates(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1})
        table.checkpoint()
        assert len(table.store.storage_files()) == 2


class TestDurableSurvivesCrash:
    def test_unsynced_rows_would_be_lost_but_acked_ones_survive(self, fs):
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        # no close(): recover from the durable bytes only, as after a
        # power loss — the insert was acknowledged, so it must be there
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs.durable_state())
        assert [r["NAME"] for r in restored.scan()] == ["ada"]

    def test_quarantine_surfaces_on_table(self, fs):
        import posixpath
        _, table = make_db(fs)
        table.insert({"ID": 1, "NAME": "ada"})
        table.insert({"ID": 2, "NAME": "bob"})
        table.close()
        # damage the second insert's record in the WAL
        wal = posixpath.join("t_store", "log-00000001.log")

        def flip_tail(data):
            mutated = bytearray(data)
            mutated[-3] ^= 0x10
            return bytes(mutated)

        fs.mutate_durable(wal, flip_tail)
        db2 = Database()
        restored = db2.create_table("T", columns(), durable="t_store",
                                    fs=fs)
        assert restored.recovery.quarantined  # reported, not fatal
        assert len(restored) == 1  # the undamaged row survived


class TestDocumentMapping:
    def test_bytes_wrapped_as_raw(self):
        document = _row_to_document({"A": b"\x01\x02", "B": 1})
        assert document == {"A": {"$raw": "0102"}, "B": 1}
        assert _document_to_row(document) == {"A": b"\x01\x02", "B": 1}

    def test_plain_dict_with_raw_key_is_not_mangled(self):
        # only exact {"$raw": ...} single-key dicts are unwrapped
        row = _document_to_row({"A": {"$raw": "00", "extra": 1}})
        assert row["A"] == {"$raw": "00", "extra": 1}


class TestDmdvCacheFreshness:
    """A partial (OsonUpdater) update written back through a
    DurableTable must not let JSON_TABLE views serve stale rows from the
    DMDV row cache: the new image is a new adapter identity, so the
    memoized expansion of the old image can never be returned for it."""

    DOC = {"sku": "phone", "qty": 3}

    def _durable_json_table(self, fs):
        from repro.core.oson import encode
        db = Database()
        table = db.create_table(
            "J", [Column.of("ID", "number", nullable=False),
                  Column.of("JDOC", "raw(2000)")],
            durable="j_store", fs=fs)
        table.insert({"ID": 1, "JDOC": encode(self.DOC)})
        return db, table

    def _view(self, table):
        from repro.engine.view import JsonTableView
        from repro.sqljson.json_table import ColumnDef, JsonTable
        expansion = JsonTable("$", [ColumnDef("sku", "varchar2(30)"),
                                    ColumnDef("qty", "number")])
        return JsonTableView("j_view", table, "JDOC", expansion,
                             include_columns=["ID"])

    def test_partial_update_not_served_stale(self, fs):
        from repro.core.counters import counters_for
        from repro.core.oson import OsonUpdater
        db, table = self._durable_json_table(fs)
        view = self._view(table)

        assert [r["qty"] for r in view.scan()] == [3]
        # second scan comes from the memoized DMDV expansion
        stats = counters_for("sqljson.jsontable_rows")
        hits_before = stats.hits
        assert [r["qty"] for r in view.scan()] == [3]
        assert stats.hits > hits_before

        # partial update on the stored image, written back through the
        # table's normal (durable, write-through) update path
        (row,) = list(table.scan())
        u = OsonUpdater(row["JDOC"])
        u.set_scalar_by_path(["qty"], 9)
        assert table.update(lambda r: r["ID"] == 1,
                            {"JDOC": u.to_bytes()}) == 1

        assert [r["qty"] for r in view.scan()] == [9]
        assert [r["qty"] for r in view.scan()] == [9]  # warm rescan too

    def test_updated_rows_survive_restart(self, fs):
        from repro.core.oson import OsonUpdater
        db, table = self._durable_json_table(fs)
        (row,) = list(table.scan())
        u = OsonUpdater(row["JDOC"])
        u.set_scalar_by_path(["qty"], 42)
        table.update(lambda r: r["ID"] == 1, {"JDOC": u.to_bytes()})
        table.close()

        db2 = Database()
        restored = db2.create_table(
            "J", [Column.of("ID", "number", nullable=False),
                  Column.of("JDOC", "raw(2000)")],
            durable="j_store", fs=fs)
        view = self._view(restored)
        assert [r["qty"] for r in view.scan()] == [42]
