"""Tests for the SQL SELECT front-end."""

import pytest

from repro.engine import Column, Database, NUMBER, CLOB, VARCHAR2
from repro.engine.constraints import IsJsonConstraint
from repro.engine.sql import compile_sql, execute_sql
from repro.errors import QueryError
from repro.jsontext import dumps


@pytest.fixture()
def db():
    database = Database()
    emp = database.create_table("emp", [
        Column("id", NUMBER), Column("dept", VARCHAR2(8)),
        Column("salary", NUMBER), Column("name", VARCHAR2(12)),
    ])
    emp.insert_many([
        {"id": 1, "dept": "eng", "salary": 100, "name": "ann"},
        {"id": 2, "dept": "eng", "salary": 120, "name": "bob"},
        {"id": 3, "dept": "ops", "salary": 90, "name": "cat"},
        {"id": 4, "dept": "ops", "salary": None, "name": "dan"},
        {"id": 5, "dept": "hr", "salary": 80, "name": "eve"},
    ])
    dept = database.create_table("dept", [
        Column("dept", VARCHAR2(8)), Column("floor", NUMBER)])
    dept.insert_many([{"dept": "eng", "floor": 3},
                      {"dept": "ops", "floor": 1}])
    docs = database.create_table("docs", [
        Column("id", NUMBER), Column("jdoc", CLOB)])
    docs.add_constraint(IsJsonConstraint("jdoc"))
    docs.insert({"id": 1, "jdoc": dumps(
        {"kind": "a", "v": 10, "tags": ["red", "hot"]})})
    docs.insert({"id": 2, "jdoc": dumps({"kind": "b", "v": 20})})
    return database


class TestBasics:
    def test_select_star(self, db):
        rows = execute_sql(db, "SELECT * FROM dept")
        assert rows == [{"dept": "eng", "floor": 3},
                        {"dept": "ops", "floor": 1}]

    def test_projection_and_alias(self, db):
        rows = execute_sql(db, "SELECT name, salary * 2 AS double_pay "
                               "FROM emp WHERE id = 1")
        assert rows == [{"name": "ann", "double_pay": 200}]

    def test_implicit_alias(self, db):
        rows = execute_sql(db, "SELECT salary + 1 bumped FROM emp "
                               "WHERE id = 1")
        assert rows == [{"bumped": 101}]

    def test_where_connectives(self, db):
        rows = execute_sql(db, "SELECT id FROM emp WHERE dept = 'eng' "
                               "AND salary > 100 OR name = 'eve' "
                               "ORDER BY id")
        assert [r["id"] for r in rows] == [2, 5]

    def test_where_not_in_like_between(self, db):
        assert len(execute_sql(
            db, "SELECT id FROM emp WHERE dept IN ('eng', 'hr')")) == 3
        assert len(execute_sql(
            db, "SELECT id FROM emp WHERE dept NOT IN ('eng')")) == 3
        assert len(execute_sql(
            db, "SELECT id FROM emp WHERE name LIKE '%a%'")) == 3
        assert len(execute_sql(
            db, "SELECT id FROM emp WHERE salary BETWEEN 90 AND 110")) == 2

    def test_is_null(self, db):
        assert execute_sql(db, "SELECT id FROM emp WHERE salary IS NULL") \
            == [{"id": 4}]
        assert len(execute_sql(
            db, "SELECT id FROM emp WHERE salary IS NOT NULL")) == 4

    def test_order_limit_distinct(self, db):
        rows = execute_sql(db, "SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert [r["dept"] for r in rows] == ["eng", "hr", "ops"]
        rows = execute_sql(db, "SELECT id FROM emp ORDER BY salary DESC "
                               "LIMIT 2")
        assert [r["id"] for r in rows] == [4, 2]  # DESC NULLS FIRST

    def test_order_by_ordinal(self, db):
        rows = execute_sql(db, "SELECT name, salary FROM emp "
                               "WHERE salary IS NOT NULL ORDER BY 2 DESC")
        assert rows[0]["name"] == "bob"

    def test_bind_parameters(self, db):
        rows = execute_sql(db, "SELECT id FROM emp WHERE dept = ? "
                               "AND salary >= ?", ["eng", 110])
        assert rows == [{"id": 2}]

    def test_string_escape(self, db):
        rows = execute_sql(db, "SELECT id FROM emp WHERE name = 'o''brien'")
        assert rows == []

    def test_comments_ignored(self, db):
        rows = execute_sql(db, "SELECT id -- trailing comment\n"
                               "FROM emp WHERE id = 1")
        assert rows == [{"id": 1}]


class TestAggregation:
    def test_group_by(self, db):
        rows = execute_sql(db, "SELECT dept, COUNT(*) AS n, "
                               "SUM(salary) AS total FROM emp "
                               "GROUP BY dept ORDER BY dept")
        assert rows == [
            {"dept": "eng", "n": 2, "total": 220},
            {"dept": "hr", "n": 1, "total": 80},
            {"dept": "ops", "n": 2, "total": 90},
        ]

    def test_global_aggregates(self, db):
        rows = execute_sql(db, "SELECT COUNT(*) AS n, AVG(salary) AS a, "
                               "MIN(salary) AS lo, MAX(salary) AS hi "
                               "FROM emp")
        assert rows == [{"n": 5, "a": 97.5, "lo": 80, "hi": 120}]

    def test_aggregate_over_expression(self, db):
        rows = execute_sql(db, "SELECT SUM(salary * 2) AS s FROM emp "
                               "WHERE dept = 'eng'")
        assert rows == [{"s": 440}]

    def test_having(self, db):
        rows = execute_sql(db, "SELECT dept, COUNT(*) AS n FROM emp "
                               "GROUP BY dept HAVING n > 1 ORDER BY dept")
        assert [r["dept"] for r in rows] == ["eng", "ops"]

    def test_order_by_aggregate_alias(self, db):
        rows = execute_sql(db, "SELECT dept, COUNT(*) AS n FROM emp "
                               "GROUP BY dept ORDER BY n DESC, dept")
        assert rows[0]["n"] == 2

    def test_aggregate_arithmetic_rejected(self, db):
        with pytest.raises(QueryError):
            execute_sql(db, "SELECT SUM(salary) / COUNT(*) FROM emp")


class TestJoins:
    def test_inner_join(self, db):
        rows = execute_sql(db, "SELECT name, floor FROM emp "
                               "JOIN dept ON emp.dept = dept.dept "
                               "ORDER BY id")
        assert len(rows) == 4  # hr unmatched

    def test_left_join(self, db):
        rows = execute_sql(db, "SELECT name, floor FROM emp "
                               "LEFT OUTER JOIN dept ON dept = dept "
                               "ORDER BY name")
        assert len(rows) == 5
        eve = [r for r in rows if r["name"] == "eve"][0]
        assert eve["floor"] is None


class TestWindow:
    def test_lag_in_arithmetic(self, db):
        rows = execute_sql(db, """
            SELECT name, salary,
                   salary - LAG(salary, 1, salary) OVER (ORDER BY salary)
                       AS delta
            FROM emp WHERE salary IS NOT NULL ORDER BY salary
        """)
        assert [r["delta"] for r in rows] == [0, 10, 10, 20]

    def test_window_with_group_by_rejected(self, db):
        with pytest.raises(QueryError):
            execute_sql(db, "SELECT LAG(salary) OVER (ORDER BY id) "
                            "FROM emp GROUP BY dept")


class TestSqlJson:
    def test_json_value_and_exists(self, db):
        rows = execute_sql(db, """
            SELECT id, JSON_VALUE(jdoc, '$.v' RETURNING NUMBER) AS v
            FROM docs WHERE JSON_EXISTS(jdoc, '$.tags')
        """)
        assert rows == [{"id": 1, "v": 10}]

    def test_json_textcontains(self, db):
        rows = execute_sql(db, "SELECT id FROM docs WHERE "
                               "JSON_TEXTCONTAINS(jdoc, '$.tags', 'red')")
        assert rows == [{"id": 1}]

    def test_json_dataguideagg(self, db):
        rows = execute_sql(db, "SELECT JSON_DATAGUIDEAGG(jdoc) AS dg "
                               "FROM docs")
        guide = rows[0]["dg"]
        assert "$.tags" in guide.paths()

    def test_json_value_varchar_returning(self, db):
        rows = execute_sql(db, """
            SELECT JSON_VALUE(jdoc, '$.kind' RETURNING VARCHAR2(1)) AS k
            FROM docs ORDER BY 1
        """)
        assert [r["k"] for r in rows] == ["a", "b"]


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM emp",
        "SELECT * FROM",
        "SELECT * FROM nope",
        "SELECT *, id FROM emp",
        "SELECT * FROM emp GROUP BY dept",
        "SELECT id FROM emp WHERE",
        "SELECT id FROM emp ORDER BY 9",
        "SELECT id FROM emp LIMIT",
        "SELECT id FROM emp; DROP TABLE emp",
        "UPDATE emp SET salary = 0",
        "SELECT id FROM emp WHERE name = 'unterminated",
    ])
    def test_rejected(self, db, bad):
        from repro.errors import EngineError
        with pytest.raises(EngineError):  # QueryError or CatalogError
            execute_sql(db, bad)

    def test_param_count_mismatch(self, db):
        with pytest.raises(QueryError):
            execute_sql(db, "SELECT id FROM emp WHERE id = ?")
        with pytest.raises(QueryError):
            execute_sql(db, "SELECT id FROM emp WHERE id = ?", [1, 2])

    def test_compile_returns_query(self, db):
        query = compile_sql(db, "SELECT id FROM emp WHERE dept = 'hr'")
        assert query.rows() == [{"id": 5}]
        assert "FILTER" in query.explain()
