"""Tests for view classes (QueryView / JsonTableView specifics)."""

from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, Query, expr
from repro.engine.types import BLOB
from repro.engine.view import JsonTableView, QueryView
from repro.sqljson.json_table import ColumnDef, JsonTable, NestedPath


def base_table(db):
    table = db.create_table("t", [Column("id", NUMBER),
                                  Column("jdoc", BLOB)])
    table.insert({"id": 1, "jdoc": oson_encode(
        {"name": "a", "tags": [{"t": "x"}, {"t": "y"}]})})
    table.insert({"id": 2, "jdoc": oson_encode({"name": "b"})})
    table.insert({"id": 3, "jdoc": None})
    return table


def json_view(table, include=("id",)):
    jt = JsonTable("$", [
        ColumnDef("name", "varchar2(8)", "$.name"),
        NestedPath("$.tags[*]", [ColumnDef("t", "varchar2(4)", "$.t")]),
    ])
    return JsonTableView("v", table, "jdoc", jt, include_columns=list(include))


class TestQueryView:
    def test_scan_reflects_underlying_query(self):
        db = Database()
        table = base_table(db)
        view = QueryView("qv", Query(table).select("id"))
        assert [r["id"] for r in view.scan()] == [1, 2, 3]

    def test_query_helper(self):
        db = Database()
        table = base_table(db)
        view = QueryView("qv", Query(table).select("id"))
        assert view.query().count() == 3


class TestJsonTableView:
    def test_null_documents_skipped(self):
        db = Database()
        view = json_view(base_table(db))
        rows = list(view.scan())
        assert {r["id"] for r in rows} == {1, 2}  # id 3 had NULL jdoc

    def test_include_columns_carried(self):
        db = Database()
        view = json_view(base_table(db))
        rows = list(view.scan())
        assert all("id" in r for r in rows)
        assert view.column_names[0] == "id"

    def test_un_nesting_row_counts(self):
        db = Database()
        view = json_view(base_table(db))
        rows = list(view.scan())
        assert len(rows) == 3  # 2 tags for doc 1, outer-join row for doc 2

    def test_scan_pushdown_filters_documents(self):
        db = Database()
        view = json_view(base_table(db))
        rows = list(view.scan_pushdown(['$.tags[*].t?(@ == "x")']))
        assert {r["id"] for r in rows} == {1}

    def test_scan_pushdown_none_means_all(self):
        db = Database()
        view = json_view(base_table(db))
        assert list(view.scan_pushdown(None)) == list(view.scan())

    def test_pushdown_path_for_include_column_is_none(self):
        db = Database()
        view = json_view(base_table(db))
        assert view.pushdown_path("id", "=", [1]) is None
        assert view.pushdown_path("t", "=", ["x"]) == \
            '$.tags[*].t?(@ == "x")'

    def test_query_integration_residual_filter(self):
        db = Database()
        view = json_view(base_table(db))
        db.register_view(view)
        rows = Query(view).where(expr.Col("t") == "y").rows()
        assert len(rows) == 1 and rows[0]["t"] == "y"
