"""Differential tests: morsel-batched execution vs row-at-a-time.

Every plan must produce the identical row list (values *and* order)
under both execution modes, whether a batch dispatches to the numpy
kernels or falls back to compiled closures.  The row strategies
deliberately include the gate-tripping cases — booleans, huge ints,
floats, NULL group keys, mixed-type columns — so both dispatch outcomes
are exercised.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Query, expr
from repro.engine.query import default_mode, set_default_mode
from repro.errors import QueryError

_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-5, max_value=5),
    st.just(2 ** 60),  # outside float64's exact range: forces fallback
    st.sampled_from([0.5, 2.0, -1.25]),
    st.sampled_from(["x", "y", "ab"]),
)

_ROWS = st.lists(
    st.fixed_dictionaries({"k": st.one_of(st.none(),
                                          st.sampled_from(["a", "b", "c"])),
                           "v": _VALUES,
                           "w": st.integers(min_value=-100, max_value=100)}),
    max_size=60)

_LITERALS = st.one_of(st.none(), st.booleans(),
                      st.integers(min_value=-5, max_value=5),
                      st.sampled_from([0.5, "x", "ab"]))

_OPS = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


def _predicates():
    simple = st.one_of(
        st.tuples(st.sampled_from(["k", "v", "w"]), _OPS, _LITERALS).map(
            lambda t: expr.Comparison(t[1], expr.Col(t[0]),
                                      expr.Literal(t[2]))),
        st.sampled_from(["k", "v"]).map(
            lambda c: expr.Col(c).in_(["a", 1, 0.5])),
        st.sampled_from(["k", "v"]).map(lambda c: expr.Col(c).is_null()),
        st.sampled_from(["k", "v"]).map(lambda c: expr.Col(c).is_not_null()),
        st.sampled_from(["k"]).map(lambda c: expr.Col(c).like("a%")),
    )
    return st.one_of(
        simple,
        st.tuples(simple, simple).map(lambda t: expr.And(*t)),
        st.tuples(simple, simple).map(lambda t: expr.Or(*t)),
        simple.map(expr.Not),
    )


def _compare_modes(build):
    """Run the same plan in both modes; exceptions must match too."""
    outcomes = []
    for mode in ("row", "morsel"):
        try:
            outcomes.append(("rows", build().mode(mode).rows()))
        except QueryError as exc:
            outcomes.append(("error", str(exc)))
    assert outcomes[0] == outcomes[1]
    return outcomes[0]


@settings(max_examples=200, deadline=None)
@given(rows=_ROWS, predicate=_predicates())
def test_filter_parity(rows, predicate):
    _compare_modes(lambda: Query(rows).where(predicate))


@settings(max_examples=100, deadline=None)
@given(rows=_ROWS, predicate=_predicates())
def test_filter_project_parity(rows, predicate):
    _compare_modes(lambda: (Query(rows)
                            .where(predicate)
                            .select("k", (expr.Col("w") * 2).as_("w2"),
                                    expr.NVL(expr.Col("v"), -1).as_("v"))))


@settings(max_examples=150, deadline=None)
@given(rows=_ROWS)
def test_group_by_parity(rows):
    _compare_modes(lambda: (Query(rows)
                            .group_by(["k"], n=expr.COUNT(),
                                      nv=expr.COUNT(expr.Col("v")),
                                      total=expr.SUM(expr.Col("w")),
                                      lo=expr.MIN(expr.Col("w")))))


@settings(max_examples=100, deadline=None)
@given(rows=_ROWS)
def test_global_aggregation_parity(rows):
    _compare_modes(lambda: (Query(rows)
                            .group_by([], n=expr.COUNT(),
                                      total=expr.SUM(expr.Col("w")),
                                      hi=expr.MAX(expr.Col("w")))))


@settings(max_examples=100, deadline=None)
@given(rows=_ROWS)
def test_sum_of_gate_tripping_values_parity(rows):
    """SUM over the column that mixes huge ints, floats and bools —
    every morsel must take the closure path and still agree exactly."""
    _compare_modes(lambda: (Query(rows)
                            .where(expr.Col("v").is_not_null())
                            .group_by(["k"], s=expr.COUNT(expr.Col("v")))))


@settings(max_examples=75, deadline=None)
@given(left=_ROWS, right=_ROWS)
def test_join_parity(left, right):
    _compare_modes(lambda: (Query(left)
                            .join([{"k": r["k"], "r": r["w"]} for r in right],
                                  "k", "k", how="left")))


def test_missing_column_raises_in_both_modes():
    rows = [{"a": 1}, {"b": 2}]
    for mode in ("row", "morsel"):
        with pytest.raises(QueryError):
            Query(rows).where(expr.Col("b") == 2).mode(mode).rows()
        with pytest.raises(QueryError):
            Query(rows).group_by(["b"], n=expr.COUNT()).mode(mode).rows()


def test_mode_survives_chaining():
    q = Query([{"a": 1}]).mode("row").where(expr.Col("a") == 1).limit(1)
    assert q._mode == "row"


def test_default_mode_roundtrip():
    previous = set_default_mode("row")
    try:
        assert default_mode() == "row"
    finally:
        set_default_mode(previous)
    assert default_mode() == previous


def test_unknown_mode_rejected():
    with pytest.raises(QueryError):
        Query([]).mode("vectorized")
    with pytest.raises(QueryError):
        set_default_mode("vectorized")
