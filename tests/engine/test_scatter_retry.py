"""Scatter-gather under shard failure: retry, abort, degraded reads.

Three contracts (DESIGN §11): transient faults retry on the seeded
backoff schedule and exhausted budgets surface typed; under
``on_failure="fail"`` the first failure aborts in-flight siblings
promptly (the regression tests count post-failure work); under
``"partial"`` the result is explicitly degraded — rows plus a marker —
and semantic errors are never degradable under either policy.
"""

import threading
import time

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.engine import executor, expr
from repro.engine.scatter import (DegradedRows, ScatterPolicy, ShardInput,
                                  ShardPlanInfo, execute_scatter)
from repro.errors import DegradedResult, ShardUnavailable, TransientFault
from repro.obs import clock as clockmod
from repro.obs import metrics
from repro.storage.health import FAILED, ShardHealthBoard


@pytest.fixture
def virtual_clock():
    clock = clockmod.VirtualClock()
    previous = clockmod.install_clock(clock)
    yield clock
    clockmod.install_clock(previous)


def guide_of(*documents):
    builder = DataGuideBuilder()
    builder.add_many(list(documents))
    return builder.guide()


SHARDS = [
    [{"k": "a", "v": 5}, {"k": "a", "v": 8}],
    [{"k": "b", "v": 12}, {"k": "b", "v": 18}],
    [{"k": "c", "v": 25}, {"k": "c", "v": 30}],
]

ALL_ROWS = [row for shard in SHARDS for row in shard]


def make_info(sources, health=None):
    inputs = [ShardInput(i, source, guide_of(*SHARDS[i % len(SHARDS)]))
              for i, source in enumerate(sources)]
    return ShardPlanInfo("t", inputs, lambda c: None, health=health)


def steady(rows):
    return lambda: iter(rows)


def flaky(rows, failures):
    """A shard source that raises TransientFault on its first
    ``failures`` scans, then serves normally (each retry re-invokes
    the source factory)."""
    state = {"left": failures}

    def source():
        if state["left"] > 0:
            state["left"] -= 1
            raise TransientFault("flaky scan")
        return iter(rows)
    return source


def run(info, policy=None, **kwargs):
    return execute_scatter(info, [True] * len(info.shards), None, None,
                           None, morsel=True, policy=policy, **kwargs)


class TestRetry:
    def test_transient_fault_retried_to_full_result(self, virtual_clock):
        info = make_info([steady(SHARDS[0]), flaky(SHARDS[1], failures=1),
                          steady(SHARDS[2])])
        retries = metrics.counter("engine.scatter.retries").value
        policy = ScatterPolicy()
        rows = run(info, policy)
        assert rows == ALL_ROWS
        assert not isinstance(rows, DegradedRows)
        assert metrics.counter(
            "engine.scatter.retries").value == retries + 1
        assert virtual_clock.sleeps == [
            policy.backoff.delay_ms("t:1", 0) / 1000.0]

    def test_backoff_schedule_is_seeded_and_per_shard(self, virtual_clock):
        policy = ScatterPolicy()
        attempts = policy.backoff.max_attempts
        info = make_info([flaky(SHARDS[0], failures=attempts - 1),
                          flaky(SHARDS[1], failures=attempts - 1)])
        rows = run(info, policy)
        assert rows == SHARDS[0] + SHARDS[1]
        expected = sorted(
            policy.backoff.delay_ms(f"t:{shard}", attempt) / 1000.0
            for shard in (0, 1) for attempt in range(attempts - 1))
        assert sorted(virtual_clock.sleeps) == expected
        # distinct keys decorrelate the shards' jitter
        assert (policy.backoff.delays_ms("t:0")
                != policy.backoff.delays_ms("t:1"))

    def test_exhausted_retries_surface_shard_unavailable(
            self, virtual_clock):
        policy = ScatterPolicy()
        info = make_info([steady(SHARDS[0]),
                          flaky(SHARDS[1], failures=99)])
        failed = metrics.counter("engine.scatter.shards_failed").value
        with pytest.raises(ShardUnavailable) as exc_info:
            run(info, policy)
        assert exc_info.value.shard_index == 1
        assert isinstance(exc_info.value.__cause__, TransientFault)
        assert metrics.counter(
            "engine.scatter.shards_failed").value == failed + 1

    def test_health_board_feedback(self, virtual_clock):
        board = ShardHealthBoard(2, fail_threshold=2)
        info = make_info([steady(SHARDS[0]), flaky(SHARDS[1], 99)],
                         health=board)
        with pytest.raises(ShardUnavailable):
            run(info, ScatterPolicy())
        assert board.state(1) == FAILED
        assert board.state(0) == "healthy"

    def test_failed_shard_refused_without_burning_retries(
            self, virtual_clock):
        board = ShardHealthBoard(2, fail_threshold=1)
        board.record_failure(1)
        board.record_failure(1)
        assert board.state(1) == FAILED
        info = make_info([steady(SHARDS[0]), steady(SHARDS[1])],
                         health=board)
        with pytest.raises(ShardUnavailable) as exc_info:
            run(info, ScatterPolicy())
        assert "refused" in str(exc_info.value)
        assert virtual_clock.sleeps == []


class TestPartialPolicy:
    def test_degraded_rows_carry_the_marker(self, virtual_clock):
        info = make_info([steady(SHARDS[0]), flaky(SHARDS[1], 99),
                          steady(SHARDS[2])])
        degraded = metrics.counter(
            "engine.scatter.degraded_results").value
        rows = run(info, ScatterPolicy(on_failure="partial"))
        assert isinstance(rows, DegradedRows)
        assert list(rows) == SHARDS[0] + SHARDS[2]
        marker = rows.degraded
        assert isinstance(marker, DegradedResult)
        assert marker.shards_failed == (1,)
        assert marker.retries >= 1
        assert "missing" in str(marker)
        assert metrics.counter(
            "engine.scatter.degraded_results").value == degraded + 1

    def test_full_success_under_partial_is_not_degraded(self):
        info = make_info([steady(s) for s in SHARDS])
        rows = run(info, ScatterPolicy(on_failure="partial"))
        assert rows == ALL_ROWS
        assert not isinstance(rows, DegradedRows)

    def test_group_by_degrades_to_surviving_shards(self, virtual_clock):
        keys = [executor.normalize_output("k")]
        aggregates = [("total", expr.SUM(expr.Col("v")))]
        info = make_info([steady(SHARDS[0]), flaky(SHARDS[1], 99),
                          steady(SHARDS[2])])
        rows = execute_scatter(
            info, [True] * 3, None, None, (keys, aggregates),
            morsel=True, policy=ScatterPolicy(on_failure="partial"))
        assert isinstance(rows, DegradedRows)
        survivors = SHARDS[0] + SHARDS[2]
        assert list(rows) == list(executor.group_by(
            iter(survivors), keys, aggregates))

    def test_semantic_errors_never_degrade(self, virtual_clock):
        def semantic():
            raise ZeroDivisionError("division by zero in predicate")
        info = make_info([steady(SHARDS[0]), semantic])
        with pytest.raises(ZeroDivisionError):
            run(info, ScatterPolicy(on_failure="partial"))
        assert virtual_clock.sleeps == []  # and never retried

    def test_all_shards_failing_degrades_to_empty(self, virtual_clock):
        info = make_info([flaky(SHARDS[0], 99), flaky(SHARDS[1], 99)])
        rows = run(info, ScatterPolicy(on_failure="partial"))
        assert isinstance(rows, DegradedRows)
        assert list(rows) == []
        assert rows.degraded.shards_failed == (0, 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ScatterPolicy(on_failure="shrug")


class TestPromptAbort:
    """Satellite regression: one shard's failure must stop in-flight
    siblings at their next row and keep queued shards from starting —
    not let them run to completion behind the propagated error."""

    def test_sibling_stops_promptly_after_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")  # force overlap
        failed = threading.Event()
        produced = []

        def slow_source():
            def rows():
                yield {"k": "a", "v": 0}
                failed.wait(timeout=5.0)
                for i in range(1000):
                    produced.append(i)
                    time.sleep(0.0005)  # bounded pacing, test-only
                    yield {"k": "a", "v": i}
            return rows()

        def failing_source():
            def rows():
                yield {"k": "b", "v": 0}
                failed.set()
                raise ShardUnavailable("mid-scan outage", shard_index=1)
            return rows()

        info = make_info([slow_source, failing_source])
        with pytest.raises(ShardUnavailable):
            run(info, ScatterPolicy())
        # the abort flag stops the survivor within a handful of rows;
        # without it the slow shard would emit all 1000
        assert len(produced) < 100

    def test_queued_shards_never_start_after_failure(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "1")
        touched = []

        def tracking(index, rows):
            def source():
                touched.append(index)
                return iter(rows)
            return source

        def failing():
            raise ShardUnavailable("down", shard_index=0)

        info = make_info([failing, tracking(1, SHARDS[1]),
                          tracking(2, SHARDS[2])])
        with pytest.raises(ShardUnavailable):
            run(info, ScatterPolicy())
        # one worker: the failure lands before the queued shards run,
        # and the drain cancels them instead of letting them start
        assert touched == []

    def test_partial_policy_does_not_abort_siblings(self, virtual_clock):
        info = make_info([steady(SHARDS[0]), flaky(SHARDS[1], 99),
                          steady(SHARDS[2])])
        rows = run(info, ScatterPolicy(on_failure="partial"))
        assert list(rows) == SHARDS[0] + SHARDS[2]
