"""Tests for the database catalog."""

import pytest

from repro.engine import Column, Database, NUMBER, CLOB, VARCHAR2
from repro.engine.constraints import IsJsonConstraint
from repro.engine.query import Query
from repro.engine.view import QueryView
from repro.errors import CatalogError


def db_with_table():
    db = Database("testdb")
    table = db.create_table("t", [Column("id", NUMBER),
                                  Column("name", VARCHAR2(10))])
    return db, table


class TestTables:
    def test_create_and_lookup(self):
        db, table = db_with_table()
        assert db.table("t") is table
        assert db.tables() == ["t"]

    def test_duplicate_rejected(self):
        db, _ = db_with_table()
        with pytest.raises(CatalogError):
            db.create_table("t", [Column("x", NUMBER)])

    def test_missing_table(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.table("nope")

    def test_drop(self):
        db, _ = db_with_table()
        db.drop_table("t")
        assert db.tables() == []
        with pytest.raises(CatalogError):
            db.drop_table("t")


class TestViews:
    def test_register_and_query(self):
        db, table = db_with_table()
        table.insert({"id": 1, "name": "a"})
        view = QueryView("v", Query(table).select("id"))
        db.register_view(view)
        assert db.views() == ["v"]
        assert db.query("v").rows() == [{"id": 1}]

    def test_view_name_collision_with_table(self):
        db, table = db_with_table()
        with pytest.raises(CatalogError):
            db.register_view(QueryView("t", Query(table)))

    def test_drop_view(self):
        db, table = db_with_table()
        db.register_view(QueryView("v", Query(table)))
        db.drop_view("v")
        with pytest.raises(CatalogError):
            db.view("v")


class TestIndexes:
    def json_db(self):
        db = Database()
        table = db.create_table("docs", [Column("jdoc", CLOB)])
        table.add_constraint(IsJsonConstraint("jdoc"))
        return db, table

    def test_create_search_index(self):
        db, table = self.json_db()
        index = db.create_json_search_index("idx", "docs", "jdoc")
        assert db.index("idx") is index
        assert db.indexes() == ["idx"]

    def test_duplicate_index_rejected(self):
        db, _ = self.json_db()
        db.create_json_search_index("idx", "docs", "jdoc")
        with pytest.raises(CatalogError):
            db.create_json_search_index("idx", "docs", "jdoc")

    def test_drop_index(self):
        db, _ = self.json_db()
        db.create_json_search_index("idx", "docs", "jdoc")
        db.drop_index("idx")
        with pytest.raises(CatalogError):
            db.index("idx")

    def test_drop_table_drops_dependent_index(self):
        db, _ = self.json_db()
        db.create_json_search_index("idx", "docs", "jdoc")
        db.drop_table("docs")
        with pytest.raises(CatalogError):
            db.index("idx")


class TestQueryFacade:
    def test_query_unknown_source(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.query("nope")

    def test_scan(self):
        db, table = db_with_table()
        table.insert({"id": 1, "name": "a"})
        assert list(db.scan("t")) == [{"id": 1, "name": "a"}]
