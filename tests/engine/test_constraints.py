"""Tests for the IS JSON check constraint and its hook mechanism."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode
from repro.engine import Column, NUMBER, CLOB, Table
from repro.engine.constraints import IsJsonConstraint
from repro.errors import ConstraintViolation


def json_table():
    t = Table("docs", [Column("id", NUMBER), Column("jdoc", CLOB)])
    constraint = IsJsonConstraint("jdoc")
    t.add_constraint(constraint)
    return t, constraint


class TestValidation:
    def test_valid_json_accepted(self):
        t, _ = json_table()
        t.insert({"id": 1, "jdoc": '{"a": 1}'})
        assert len(t) == 1

    def test_malformed_json_rejected(self):
        t, _ = json_table()
        with pytest.raises(ConstraintViolation):
            t.insert({"id": 1, "jdoc": '{"a": '})

    def test_null_satisfies_is_json(self):
        t, _ = json_table()
        t.insert({"id": 1, "jdoc": None})
        assert len(t) == 1

    def test_scalar_json_accepted(self):
        t, _ = json_table()
        t.insert({"id": 1, "jdoc": "42"})
        t.insert({"id": 2, "jdoc": "[1,2]"})

    def test_binary_json_accepted(self):
        from repro.engine.types import BLOB
        t = Table("bin", [Column("jdoc", BLOB)])
        constraint = IsJsonConstraint("jdoc")
        t.add_constraint(constraint)
        t.insert({"jdoc": oson_encode({"a": 1})})
        t.insert({"jdoc": bson.encode({"a": 1})})
        assert len(t) == 2

    def test_corrupt_binary_rejected(self):
        from repro.engine.types import BLOB
        t = Table("bin", [Column("jdoc", BLOB)])
        t.add_constraint(IsJsonConstraint("jdoc"))
        with pytest.raises(ConstraintViolation):
            t.insert({"jdoc": b"garbage-bytes"})


class TestHooks:
    def test_hook_receives_parsed_value(self):
        t, constraint = json_table()
        seen = []
        constraint.add_hook(lambda row, parsed: seen.append(parsed))
        t.insert({"id": 1, "jdoc": '{"a": [1, 2]}'})
        assert seen == [{"a": [1, 2]}]

    def test_hook_not_called_for_null(self):
        t, constraint = json_table()
        seen = []
        constraint.add_hook(lambda row, parsed: seen.append(parsed))
        t.insert({"id": 1, "jdoc": None})
        assert seen == []

    def test_hook_not_called_on_rejection(self):
        t, constraint = json_table()
        seen = []
        constraint.add_hook(lambda row, parsed: seen.append(parsed))
        with pytest.raises(ConstraintViolation):
            t.insert({"id": 1, "jdoc": "{bad"})
        assert seen == []

    def test_remove_hook(self):
        t, constraint = json_table()
        seen = []
        hook = lambda row, parsed: seen.append(parsed)  # noqa: E731
        constraint.add_hook(hook)
        constraint.remove_hook(hook)
        t.insert({"id": 1, "jdoc": "{}"})
        assert seen == []
        assert constraint.hook_count == 0

    def test_table_exposes_is_json_constraint(self):
        t, constraint = json_table()
        assert t.is_json_constraint("jdoc") is constraint
        assert t.is_json_constraint("id") is None
