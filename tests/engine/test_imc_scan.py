"""The IMC projection-pushdown rewrite (:class:`IMCScanRule`).

A scan of a table bound into an :class:`~repro.imc.IMCStore` with a
shaping ``[filter]* (project | group-by)`` prefix becomes an
``IMC SCAN`` that materializes only the referenced columns; results
must stay identical to the row path, and the rule must refuse any plan
whose column set it cannot prove.
"""

import pytest

from repro.engine import Column, NUMBER, Query, Table, VARCHAR2, expr
from repro.engine.plan import IMCScanNode, _collect_columns
from repro.imc import IMCStore
from repro.obs import metrics as obs_metrics


def bound_table():
    t = Table("emp", [Column("id", NUMBER), Column("name", VARCHAR2(10)),
                      Column("dept", VARCHAR2(10))])
    t.add_column(Column("name_len", NUMBER,
                        expression=expr.LENGTH(expr.Col("name"))))
    t.insert_many([
        {"id": 1, "name": "ann", "dept": "eng"},
        {"id": 2, "name": "bobby", "dept": "ops"},
        {"id": 3, "name": None, "dept": "eng"},
        {"id": 4, "name": "dee", "dept": "ops"},
    ])
    IMCStore().bind(t)
    return t


def head(query):
    return query._plan().nodes[0]


class TestRuleFires:
    def test_select_prefix(self):
        q = Query(bound_table()).select("id", "name_len")
        node = head(q)
        assert isinstance(node, IMCScanNode)
        assert node.columns == ["id", "name_len"]
        assert "IMC SCAN emp" in q.explain()

    def test_filter_then_select_collects_both(self):
        q = (Query(bound_table())
             .where(expr.Col("dept") == "eng")
             .select("id"))
        node = head(q)
        assert isinstance(node, IMCScanNode)
        assert node.columns == ["dept", "id"]

    def test_group_by_prefix(self):
        q = Query(bound_table()).group_by(
            ["dept"], total=expr.SumAgg(expr.Col("id")))
        assert isinstance(head(q), IMCScanNode)

    def test_expression_project(self):
        q = Query(bound_table()).select(
            (expr.Col("id") + expr.Col("name_len")).as_("x"))
        node = head(q)
        assert isinstance(node, IMCScanNode)
        assert node.columns == ["id", "name_len"]


class TestRuleRefuses:
    def test_unbound_table(self):
        t = Table("t", [Column("id", NUMBER)])
        t.insert({"id": 1})
        assert not isinstance(head(Query(t).select("id")), IMCScanNode)

    def test_no_shaping_terminator(self):
        # a bare filtered scan returns whole rows: narrowing would
        # change the answer
        q = Query(bound_table()).where(expr.Col("id") > 1)
        assert not isinstance(head(q), IMCScanNode)

    def test_join_before_project(self):
        other = Table("d", [Column("dept", VARCHAR2(10))])
        other.insert({"dept": "eng"})
        q = (Query(bound_table())
             .join(other, "dept", "dept")
             .select("id"))
        assert not isinstance(head(q), IMCScanNode)

    def test_count_star_only(self):
        # COUNT(*) references no column; a zero-column scan cannot
        # carry the row count
        q = Query(bound_table()).group_by(count=expr.CountAgg())
        assert not isinstance(head(q), IMCScanNode)

    def test_nodes_after_terminator_unaffected(self):
        q = (Query(bound_table()).select("id")
             .order_by(expr.Col("id"), desc=True).limit(2))
        assert isinstance(head(q), IMCScanNode)
        assert [r["id"] for r in q.rows()] == [4, 3]


class TestParity:
    def row_mode(self, build):
        t = Table("emp", [Column("id", NUMBER), Column("name", VARCHAR2(10)),
                          Column("dept", VARCHAR2(10))])
        t.add_column(Column("name_len", NUMBER,
                            expression=expr.LENGTH(expr.Col("name"))))
        for row in bound_table().raw_rows():
            t.insert(dict(row))
        return build(t).rows()

    @pytest.mark.parametrize("build", [
        lambda t: Query(t).select("id", "name_len"),
        lambda t: Query(t).where(expr.Col("dept") == "eng").select("id"),
        lambda t: Query(t).where(expr.Col("name").is_null()).select("id"),
        lambda t: Query(t).group_by(["dept"],
                                    total=expr.SumAgg(expr.Col("id")),
                                    rows=expr.CountAgg()),
        lambda t: Query(t).select("name_len").distinct(),
    ])
    def test_imc_path_matches_row_path(self, build):
        assert build(bound_table()).rows() == self.row_mode(build)

    def test_parity_after_dml(self):
        t = bound_table()
        q = Query(t).where(expr.Col("dept") == "eng").select("id",
                                                             "name_len")
        q.rows()  # populate through the IMC path
        t.insert({"id": 5, "name": "eve", "dept": "eng"})
        t.update(lambda r: r["id"] == 1, {"name": "a"})
        t.delete(lambda r: r["id"] == 3)
        expected = [{"id": 1, "name_len": 1}, {"id": 5, "name_len": 3}]
        assert q.rows() == expected


class TestObservability:
    def test_columns_read_advances_by_referenced_count(self):
        q = (Query(bound_table())
             .where(expr.Col("dept") == "eng")
             .select("id", "name_len"))
        before = obs_metrics.counter("imc.columns_read").value
        q.rows()
        assert (obs_metrics.counter("imc.columns_read").value - before
                == 3)  # dept + id + name_len

    def test_explain_analyze_surfaces_columns_read(self):
        q = Query(bound_table()).select("id")
        text = q.explain(analyze=True)
        assert "IMC SCAN emp [columns=id]" in text
        assert "metric imc.columns_read: 1" in text


class TestColumnWalker:
    def test_resolves_supported_shapes(self):
        out = set()
        e = expr.And(expr.Col("a") > 1,
                     expr.Or(expr.Col("b").is_null(),
                             expr.Not(expr.Col("c").like("x%"))),
                     expr.LENGTH(expr.Col("d")) == 1,
                     expr.Col("e").in_([1, 2]))
        assert _collect_columns(e, out)
        assert out == {"a", "b", "c", "d", "e"}

    def test_bails_on_unknown_nodes(self):
        # NVL builds a closure-local Expression subclass the walker
        # cannot see through — it must refuse, not guess
        assert not _collect_columns(expr.NVL(expr.Col("a"), 0), set())

    def test_unknown_node_in_plan_disables_rule(self):
        q = Query(bound_table()).select(
            expr.NVL(expr.Col("name"), "?").as_("n"))
        assert not isinstance(head(q), IMCScanNode)
        assert q.rows()[0] == {"n": "ann"}
