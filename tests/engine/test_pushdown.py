"""Tests for JSON_EXISTS predicate pushdown onto JSON_TABLE views."""

from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, Query, expr
from repro.engine.types import BLOB
from repro.engine.view import JsonTableView, render_pushdown_path
from repro.sqljson.json_table import ColumnDef, JsonTable, NestedPath

DOCS = [
    {"po": {"ref": "A-1", "items": [{"part": "p1", "qty": 1},
                                    {"part": "p2", "qty": 5}]}},
    {"po": {"ref": "B-2", "items": [{"part": "p3", "qty": 2}]}},
    {"po": {"ref": "C-3", "items": []}},
]


def setup_view():
    db = Database()
    table = db.create_table("t", [Column("id", NUMBER),
                                  Column("jdoc", BLOB)])
    for i, doc in enumerate(DOCS):
        table.insert({"id": i, "jdoc": oson_encode(doc)})
    jt = JsonTable("$", [
        ColumnDef("ref", "varchar2(8)", "$.po.ref"),
        NestedPath("$.po.items[*]", [
            ColumnDef("part", "varchar2(8)", "$.part"),
            ColumnDef("qty", "number", "$.qty"),
        ]),
    ])
    view = JsonTableView("v", table, "jdoc", jt)
    db.register_view(view)
    return db, view


class TestRenderPushdownPath:
    def test_string_literal(self):
        assert render_pushdown_path("$.a.b", "=", ["x"]) == '$.a.b?(@ == "x")'

    def test_string_escaping(self):
        rendered = render_pushdown_path("$.a", "=", ['he said "hi"'])
        assert rendered == '$.a?(@ == "he said \\"hi\\"")'

    def test_number_and_bool(self):
        assert render_pushdown_path("$.a", ">", [5]) == "$.a?(@ > 5)"
        assert render_pushdown_path("$.a", "=", [True]) == "$.a?(@ == true)"

    def test_in_list_becomes_or(self):
        assert render_pushdown_path("$.a", "=", ["x", "y"]) == \
            '$.a?(@ == "x" || @ == "y")'

    def test_unsupported_returns_none(self):
        assert render_pushdown_path("$.a", "LIKE", ["x"]) is None
        assert render_pushdown_path("$.a", "=", [None]) is None
        assert render_pushdown_path("$.a", "=", []) is None
        assert render_pushdown_path("$.a", "=", [object()]) is None


class TestPushdownCorrectness:
    def test_equality_pushdown_matches_plain_filter(self):
        _db, view = setup_view()
        pushed = Query(view).where(expr.Col("part") == "p3").rows()
        plain = [r for r in view.scan() if r["part"] == "p3"]
        assert pushed == plain
        assert len(pushed) == 1

    def test_range_pushdown(self):
        _db, view = setup_view()
        rows = Query(view).where(expr.Col("qty") > 1).rows()
        assert sorted(r["part"] for r in rows) == ["p2", "p3"]

    def test_in_list_pushdown(self):
        _db, view = setup_view()
        rows = Query(view).where(expr.Col("part").in_(["p1", "p3"])).rows()
        assert sorted(r["part"] for r in rows) == ["p1", "p3"]

    def test_conjunction_pushdown(self):
        _db, view = setup_view()
        rows = Query(view).where(expr.And(
            expr.Col("part") == "p2",
            expr.Col("qty") > 1)).rows()
        assert len(rows) == 1 and rows[0]["ref"] == "A-1"

    def test_residual_filter_still_applies(self):
        """Document-level pushdown is a superset: a doc matching on one
        row must not leak its non-matching rows."""
        _db, view = setup_view()
        rows = Query(view).where(expr.Col("part") == "p1").rows()
        assert len(rows) == 1  # not the p2 row of the same document
        assert rows[0]["part"] == "p1"

    def test_non_pushable_predicate_falls_back(self):
        _db, view = setup_view()
        rows = Query(view).where(expr.Col("part").like("p%")).rows()
        assert len(rows) == 3

    def test_disjunction_not_pushed_but_correct(self):
        _db, view = setup_view()
        rows = Query(view).where(expr.Or(
            expr.Col("part") == "p1",
            expr.Col("part") == "p3")).rows()
        assert sorted(r["part"] for r in rows) == ["p1", "p3"]

    def test_unknown_column_not_pushed(self):
        _db, view = setup_view()
        # 'id' comes from include_columns, not the JSON_TABLE: no path
        assert view.pushdown_path("id", "=", [1]) is None

    def test_pushdown_source_detection(self):
        _db, view = setup_view()
        q = Query(view).where(expr.Col("part") == "p1")
        assert q._plan().nodes[0].exists_paths
        q2 = Query(view).select("ref")
        assert q2._plan().nodes[0].exists_paths is None
