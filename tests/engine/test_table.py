"""Tests for heap tables: DML, constraints, virtual columns, listeners."""

import pytest

from repro.engine import Column, NUMBER, Table, VARCHAR2, expr
from repro.engine.constraints import CheckConstraint, NotNullConstraint
from repro.errors import (
    CatalogError,
    ConstraintViolation,
    EngineError,
    TypeCoercionError,
)


def people():
    return Table("people", [
        Column("id", NUMBER, nullable=False),
        Column("name", VARCHAR2(20)),
        Column("age", NUMBER),
    ])


class TestSchema:
    def test_columns(self):
        t = people()
        assert t.column_names == ["id", "name", "age"]
        assert t.column("id").sql_type == NUMBER

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            people().column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a", NUMBER), Column("a", NUMBER)])

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [])

    def test_add_column(self):
        t = people()
        t.add_column(Column("email", VARCHAR2(50)))
        assert t.has_column("email")

    def test_add_duplicate_column_rejected(self):
        t = people()
        with pytest.raises(CatalogError):
            t.add_column(Column("name", VARCHAR2(5)))

    def test_add_not_null_to_populated_table_rejected(self):
        t = people()
        t.insert({"id": 1})
        with pytest.raises(EngineError):
            t.add_column(Column("x", NUMBER, nullable=False))


class TestInsert:
    def test_basic(self):
        t = people()
        t.insert({"id": 1, "name": "ann", "age": 30})
        assert len(t) == 1
        assert list(t.scan()) == [{"id": 1, "name": "ann", "age": 30}]

    def test_missing_columns_default_null(self):
        t = people()
        t.insert({"id": 1})
        assert list(t.scan())[0]["name"] is None

    def test_not_null_enforced(self):
        t = people()
        with pytest.raises(EngineError):
            t.insert({"name": "no id"})

    def test_type_coercion_on_insert(self):
        t = people()
        t.insert({"id": "5", "age": "30"})
        row = list(t.scan())[0]
        assert row["id"] == 5 and row["age"] == 30

    def test_bad_type_rejected(self):
        t = people()
        with pytest.raises(TypeCoercionError):
            t.insert({"id": 1, "age": "not-a-number"})

    def test_unknown_column_rejected(self):
        t = people()
        with pytest.raises(CatalogError):
            t.insert({"id": 1, "nope": 1})

    def test_insert_many(self):
        t = people()
        assert t.insert_many([{"id": i} for i in range(5)]) == 5
        assert len(t) == 5

    def test_check_constraint(self):
        t = people()
        t.add_constraint(CheckConstraint(
            "age_positive", lambda row: row["age"] is None or row["age"] >= 0))
        t.insert({"id": 1, "age": 5})
        with pytest.raises(ConstraintViolation):
            t.insert({"id": 2, "age": -1})

    def test_not_null_constraint_object(self):
        t = people()
        t.add_constraint(NotNullConstraint("name"))
        with pytest.raises(ConstraintViolation):
            t.insert({"id": 1})


class TestDeleteUpdate:
    def test_delete(self):
        t = people()
        t.insert_many([{"id": i} for i in range(5)])
        removed = t.delete(lambda row: row["id"] % 2 == 0)
        assert removed == 3
        assert [r["id"] for r in t.scan()] == [1, 3]

    def test_update(self):
        t = people()
        t.insert_many([{"id": 1, "age": 10}, {"id": 2, "age": 20}])
        changed = t.update(lambda row: row["id"] == 2, {"age": 25})
        assert changed == 1
        assert [r["age"] for r in t.scan()] == [10, 25]

    def test_update_coerces(self):
        t = people()
        t.insert({"id": 1})
        t.update(lambda r: True, {"age": "44"})
        assert list(t.scan())[0]["age"] == 44


class TestVirtualColumns:
    def test_computed_on_scan(self):
        t = people()
        t.add_column(Column("age2", NUMBER,
                            expression=expr.Col("age") * 2))
        t.insert({"id": 1, "age": 21})
        assert list(t.scan())[0]["age2"] == 42

    def test_cannot_insert_into_virtual(self):
        t = people()
        t.add_column(Column("v", NUMBER, expression=expr.Literal(1)))
        with pytest.raises(EngineError):
            t.insert({"id": 1, "v": 9})

    def test_cannot_update_virtual(self):
        t = people()
        t.add_column(Column("v", NUMBER, expression=expr.Literal(1)))
        t.insert({"id": 1})
        with pytest.raises(EngineError):
            t.update(lambda r: True, {"v": 2})

    def test_virtual_not_stored(self):
        t = people()
        t.add_column(Column("v", NUMBER, expression=expr.Literal(1)))
        t.insert({"id": 1})
        assert "v" not in t.raw_rows()[0]

    def test_virtual_excluded_from_storage_bytes(self):
        t = people()
        before_schema = Table("p2", [Column("id", NUMBER)])
        t.add_column(Column("v", VARCHAR2(100),
                            expression=expr.Literal("x" * 100)))
        t.insert({"id": 1})
        before_schema.insert({"id": 1})
        # virtual column contributes nothing beyond the shared columns
        assert t.storage_bytes() < before_schema.storage_bytes() + 50


class TestListeners:
    def test_insert_listener_fires(self):
        t = people()
        seen = []
        t.on_insert(seen.append)
        t.insert({"id": 1})
        assert len(seen) == 1 and seen[0]["id"] == 1

    def test_delete_listener_fires(self):
        t = people()
        seen = []
        t.on_delete(seen.append)
        t.insert({"id": 1})
        t.delete(lambda r: True)
        assert len(seen) == 1

    def test_update_fires_delete_then_insert(self):
        t = people()
        log = []
        t.on_insert(lambda r: log.append(("ins", r["id"])))
        t.on_delete(lambda r: log.append(("del", r["id"])))
        t.insert({"id": 1})
        t.update(lambda r: True, {"age": 9})
        assert log == [("ins", 1), ("del", 1), ("ins", 1)]


class TestStorageAccounting:
    def test_bytes_grow_with_rows(self):
        t = people()
        empty = t.storage_bytes()
        t.insert({"id": 1, "name": "ann"})
        one = t.storage_bytes()
        t.insert({"id": 2, "name": "annabelle"})
        two = t.storage_bytes()
        assert empty == 0 < one < two

    def test_longer_values_take_more(self):
        a = people()
        b = people()
        a.insert({"id": 1, "name": "x"})
        b.insert({"id": 1, "name": "x" * 20})
        assert a.storage_bytes() < b.storage_bytes()
