"""Tests for the query builder and executor pipeline."""

import pytest

from repro.engine import Column, NUMBER, Query, Table, VARCHAR2, expr
from repro.errors import QueryError

ROWS = [
    {"id": 1, "dept": "eng", "salary": 100, "name": "ann"},
    {"id": 2, "dept": "eng", "salary": 120, "name": "bob"},
    {"id": 3, "dept": "ops", "salary": 90, "name": "cat"},
    {"id": 4, "dept": "ops", "salary": None, "name": "dan"},
    {"id": 5, "dept": "hr", "salary": 80, "name": "eve"},
]


def table():
    t = Table("emp", [Column("id", NUMBER), Column("dept", VARCHAR2(8)),
                      Column("salary", NUMBER), Column("name", VARCHAR2(8))])
    t.insert_many(ROWS)
    return t


class TestBasics:
    def test_scan_all(self):
        assert Query(table()).rows() == ROWS

    def test_where(self):
        rows = Query(table()).where(expr.Col("dept") == "eng").rows()
        assert [r["id"] for r in rows] == [1, 2]

    def test_where_null_dropped(self):
        rows = Query(table()).where(expr.Col("salary") > 0).rows()
        assert all(r["salary"] is not None for r in rows)

    def test_select_projection(self):
        rows = Query(table()).select("id", "name").rows()
        assert rows[0] == {"id": 1, "name": "ann"}

    def test_select_expression_alias(self):
        rows = (Query(table())
                .select("id", (expr.Col("salary") * 2).as_("double_pay"))
                .rows())
        assert rows[0]["double_pay"] == 200

    def test_list_source(self):
        assert Query(ROWS).count() == 5

    def test_callable_source(self):
        assert Query(lambda: iter(ROWS)).count() == 5

    def test_subquery_source(self):
        inner = Query(table()).where(expr.Col("dept") == "eng")
        assert Query(inner).count() == 2

    def test_bad_source(self):
        with pytest.raises(QueryError):
            Query(42).rows()

    def test_builder_is_immutable(self):
        base = Query(table())
        filtered = base.where(expr.Col("dept") == "hr")
        assert base.count() == 5
        assert filtered.count() == 1


class TestAggregation:
    def test_group_by(self):
        rows = (Query(table())
                .group_by(["dept"], n=expr.COUNT(),
                          total=expr.SUM(expr.Col("salary")))
                .order_by("dept")
                .rows())
        assert rows == [
            {"dept": "eng", "n": 2, "total": 220},
            {"dept": "hr", "n": 1, "total": 80},
            {"dept": "ops", "n": 2, "total": 90},
        ]

    def test_global_aggregate(self):
        assert Query(table()).group_by([], n=expr.COUNT()).scalar() == 5

    def test_global_aggregate_empty_input(self):
        empty = Table("e", [Column("x", NUMBER)])
        assert Query(empty).group_by([], n=expr.COUNT()).scalar() == 0

    def test_group_by_expression_key(self):
        rows = (Query(table())
                .group_by([expr.SUBSTR(expr.Col("dept"), 1, 1).as_("letter")],
                          n=expr.COUNT())
                .order_by("letter")
                .rows())
        assert rows == [{"letter": "e", "n": 2}, {"letter": "h", "n": 1},
                        {"letter": "o", "n": 2}]

    def test_having(self):
        rows = (Query(table())
                .group_by(["dept"], n=expr.COUNT())
                .having(expr.Col("n") > 1)
                .order_by("dept").rows())
        assert [r["dept"] for r in rows] == ["eng", "ops"]

    def test_non_aggregate_kwarg_rejected(self):
        with pytest.raises(QueryError):
            Query(table()).group_by(["dept"], x=expr.Col("id"))

    def test_scalar_shape_enforced(self):
        with pytest.raises(QueryError):
            Query(table()).scalar()


class TestJoin:
    def depts(self):
        return [{"dept": "eng", "floor": 3}, {"dept": "ops", "floor": 1}]

    def test_inner_join(self):
        rows = (Query(table())
                .join(self.depts(), "dept", "dept")
                .order_by("id").rows())
        assert len(rows) == 4  # hr has no match
        assert rows[0]["floor"] == 3

    def test_left_join(self):
        rows = (Query(table())
                .join(self.depts(), "dept", "dept", how="left")
                .order_by("id").rows())
        assert len(rows) == 5
        hr = [r for r in rows if r["dept"] == "hr"][0]
        assert hr["floor"] is None

    def test_join_multiplies_matches(self):
        multi = [{"dept": "eng", "tag": "a"}, {"dept": "eng", "tag": "b"}]
        rows = Query(table()).join(multi, "dept", "dept").rows()
        assert len(rows) == 4  # 2 eng employees x 2 tags

    def test_null_keys_never_join(self):
        left = [{"k": None, "v": 1}]
        right = [{"k": None, "w": 2}]
        assert Query(left).join(right, "k", "k").rows() == []
        assert Query(left).join(right, "k", "k", how="left").rows() == [
            {"k": None, "v": 1, "w": None}]

    def test_bad_join_type(self):
        with pytest.raises(QueryError):
            Query(table()).join(self.depts(), "dept", "dept", how="cross").rows()


class TestOrderLimitDistinct:
    def test_order_by(self):
        rows = Query(table()).order_by("salary").rows()
        salaries = [r["salary"] for r in rows]
        assert salaries == [80, 90, 100, 120, None]  # NULLS LAST

    def test_order_by_desc(self):
        rows = Query(table()).order_by("salary", desc=True).rows()
        assert [r["salary"] for r in rows] == [None, 120, 100, 90, 80]

    def test_multi_key_order(self):
        rows = Query(table()).order_by("dept", "salary",
                                       desc=[False, True]).rows()
        # DESC is NULLS FIRST (Oracle default): dan's NULL salary leads ops
        assert [r["id"] for r in rows] == [2, 1, 5, 4, 3]

    def test_order_by_expression(self):
        rows = Query(table()).order_by(expr.LENGTH(expr.Col("name"))).rows()
        assert len(rows) == 5

    def test_mismatched_desc_flags(self):
        with pytest.raises(QueryError):
            Query(table()).order_by("a", "b", desc=[True])

    def test_limit(self):
        assert Query(table()).limit(2).count() == 2
        assert Query(table()).limit(0).count() == 0

    def test_distinct(self):
        rows = Query(table()).select("dept").distinct().rows()
        assert sorted(r["dept"] for r in rows) == ["eng", "hr", "ops"]

    def test_union_all(self):
        q = Query(table()).select("id").union_all(
            Query(table()).select("id"))
        assert q.count() == 10


class TestWindow:
    def test_lag_over_order(self):
        rows = (Query(table())
                .where(expr.Col("salary").is_not_null())
                .window("prev", expr.LAG(expr.Col("salary")),
                        order_by="salary")
                .rows())
        assert [r["prev"] for r in rows] == [None, 80, 90, 100]

    def test_lag_difference(self):
        rows = (Query(table())
                .where(expr.Col("salary").is_not_null())
                .window("prev", expr.LAG(expr.Col("salary"), 1,
                                         expr.Col("salary")),
                        order_by="salary")
                .select("salary",
                        (expr.Col("salary") - expr.Col("prev")).as_("diff"))
                .rows())
        assert [r["diff"] for r in rows] == [0, 10, 10, 20]


class TestExplain:
    def test_explain_lists_operators(self):
        plan = (Query(table())
                .where(expr.Col("dept") == "eng")
                .group_by(["dept"], n=expr.COUNT())
                .order_by("n", desc=True)
                .limit(1)
                .explain())
        for keyword in ("SCAN emp", "FILTER", "HASH GROUP BY", "SORT",
                        "LIMIT"):
            assert keyword in plan
