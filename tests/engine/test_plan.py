"""The logical plan layer: node building, labels, rewrite rules.

The plan layer replaced the hand-wired volcano chain (ISSUE 8); these
tests pin what the refactor must preserve — explain() label text, hook
(cancellation) semantics, operator order — plus the new scatter rewrite
over sharded sources.
"""

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.engine import Query, expr
from repro.engine import plan as planmod
from repro.engine.scatter import ShardInput, ShardPlanInfo

ROWS = [
    {"k": "a", "v": 5},
    {"k": "b", "v": 12},
    {"k": "a", "v": 20},
    {"k": "b", "v": 30},
]


def build(query):
    return planmod.build_plan(query._source, query._ops)


class TestBuildPlan:
    def test_node_sequence_and_labels(self):
        q = (Query(ROWS)
             .where(expr.Col("v") >= 10)
             .group_by(["k"], total=expr.SUM(expr.Col("v")))
             .order_by("total", desc=True))
        plan = build(q)
        assert [n.op for n in plan.nodes] == [
            "scan", "where", "group_by", "order_by"]
        assert plan.explain_lines() == [
            "SCAN list",
            "FILTER v >= 10",
            "HASH GROUP BY k AGG SUM(v) AS total",
            "SORT total DESC",
        ]

    def test_all_operator_labels(self):
        q = (Query(ROWS)
             .select("k", "v")
             .join(ROWS, "k", "k")
             .distinct()
             .limit(3)
             .union_all(ROWS))
        labels = build(q).explain_lines()
        assert labels[1] == "PROJECT k AS k, v AS v"
        assert labels[2] == "HASH JOIN (inner) ON k = k"
        assert labels[3] == "DISTINCT"
        assert labels[4] == "LIMIT 3"
        assert labels[5] == "UNION ALL"

    def test_execute_matches_query_rows(self):
        q = Query(ROWS).where(expr.Col("v") >= 10).select("v")
        plan = planmod.rewrite(build(q))
        assert list(plan.execute(morsel=True)) == q.rows()

    def test_unknown_operation_rejected(self):
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            planmod.build_plan(ROWS, [("teleport", ())])


class TestHookSemantics:
    def test_hook_sees_source_and_result_rows(self):
        seen = []
        q = (Query(ROWS).where(expr.Col("v") >= 10)
             .instrumented(seen.append))
        result = q.rows()
        # every source row consumed + every result row produced
        assert len(seen) == len(ROWS) + len(result)

    def test_hook_abort_propagates(self):
        class Abort(Exception):
            pass

        def bomb(row):
            raise Abort

        with pytest.raises(Abort):
            Query(ROWS).where(expr.Col("v") >= 10).instrumented(
                bomb).rows()


class FakeShardedSource:
    """A minimal sharded source: per-shard row lists with per-shard
    DataGuides, routing by ``k`` under a trivial placement function."""

    name = "fake"

    def __init__(self, shards, routing_field=None, shard_of_value=None):
        self._shards = shards
        self.routing_field = routing_field
        self.shard_of_value = shard_of_value

    def scan(self):
        for rows in self._shards:
            yield from rows

    def shard_plan(self):
        inputs = []
        for index, rows in enumerate(self._shards):
            builder = DataGuideBuilder()
            builder.add_many(rows)
            inputs.append(ShardInput(index,
                                     lambda rows=rows: iter(rows),
                                     builder.guide()))
        return ShardPlanInfo(self.name, inputs,
                             lambda column: f"$.{column}",
                             routing_field=self.routing_field,
                             shard_of_value=self.shard_of_value)


SHARDS = [
    [{"k": "a", "v": 5}, {"k": "a", "v": 20}],
    [{"k": "b", "v": 12}, {"k": "b", "v": 30}],
]


class TestScatterRule:
    def test_fuses_filter_project_group(self):
        source = FakeShardedSource(SHARDS)
        q = (Query(source)
             .where(expr.Col("v") >= 10)
             .select("k", "v")
             .group_by(["k"], total=expr.SUM(expr.Col("v")))
             .order_by("total"))
        plan = q._plan()
        assert isinstance(plan.nodes[0], planmod.ScatterNode)
        assert [n.op for n in plan.nodes] == ["scan", "order_by"]
        label = plan.nodes[0].label()
        assert label.startswith(
            "SCATTER SCAN fake [shards=2 scanned=2 pruned=0]")
        assert "FILTER v >= 10" in label
        assert "PROJECT k AS k, v AS v" in label
        assert "GATHER GROUP BY k AGG SUM(v) AS total" in label

    def test_fusion_stops_at_first_non_fusable(self):
        source = FakeShardedSource(SHARDS)
        q = (Query(source)
             .order_by("v")
             .where(expr.Col("v") >= 10))
        plan = q._plan()
        node = plan.nodes[0]
        assert isinstance(node, planmod.ScatterNode)
        # nothing fused: the sort comes first
        assert node.predicate is None and node.group is None
        assert [n.op for n in plan.nodes] == ["scan", "order_by", "where"]

    def test_second_filter_stays_residual(self):
        """Only a filter *ahead of* projection/grouping fuses; a HAVING
        after the group-by must stay its own node."""
        source = FakeShardedSource(SHARDS)
        q = (Query(source)
             .group_by(["k"], total=expr.SUM(expr.Col("v")))
             .having(expr.Col("total") > 20))
        plan = q._plan()
        assert isinstance(plan.nodes[0], planmod.ScatterNode)
        assert plan.nodes[0].group is not None
        assert [n.op for n in plan.nodes] == ["scan", "where"]

    def test_rows_match_unsharded(self):
        source = FakeShardedSource(SHARDS)
        sharded = (Query(source)
                   .where(expr.Col("v") >= 10)
                   .group_by(["k"], total=expr.SUM(expr.Col("v")),
                             n=expr.COUNT())
                   .rows())
        flat = (Query(ROWS)
                .where(expr.Col("v") >= 10)
                .group_by(["k"], total=expr.SUM(expr.Col("v")),
                          n=expr.COUNT())
                .rows())
        key = lambda r: r["k"]  # noqa: E731
        assert sorted(sharded, key=key) == sorted(flat, key=key)

    def test_pruning_decided_at_rewrite_time(self):
        """A plain explain() — no execution — already reports pruning."""
        source = FakeShardedSource(SHARDS)
        text = (Query(source)
                .where(expr.Col("v") > 100)   # above every shard's max
                .explain())
        assert "[shards=2 scanned=0 pruned=2]" in text

    def test_routing_equality_prunes_to_home_shard(self):
        placement = {"a": 0, "b": 1}
        source = FakeShardedSource(
            SHARDS, routing_field="k",
            shard_of_value=lambda v: placement.get(v))
        q = Query(source).where(expr.Col("k") == "b")
        plan = q._plan()
        assert plan.nodes[0].selected == [False, True]
        assert q.rows() == SHARDS[1]

    def test_scatter_hook_counts(self):
        source = FakeShardedSource(SHARDS)
        seen = []
        result = (Query(source)
                  .where(expr.Col("v") >= 10)
                  .instrumented(seen.append)
                  .rows())
        # hook fires per source row inside the workers + per result row
        assert len(seen) == sum(len(s) for s in SHARDS) + len(result)

    def test_profile_carries_scatter_metrics(self):
        source = FakeShardedSource(SHARDS)
        profile = (Query(source)
                   .where(expr.Col("v") > 25)
                   .group_by(["k"], total=expr.SUM(expr.Col("v")))
                   .profile())
        head = profile["stages"][0]
        assert head["op"] == "scan"
        assert head["metrics"].get("engine.scatter.shards_scanned") == 1
        assert head["metrics"].get("engine.scatter.shards_pruned") == 1


class TestPushdownInteraction:
    def test_unsharded_source_keeps_plain_scan(self):
        plan = Query(ROWS).where(expr.Col("v") >= 10)._plan()
        assert isinstance(plan.nodes[0], planmod.ScanNode)
        assert not isinstance(plan.nodes[0], planmod.ScatterNode)

    def test_shard_plan_returning_none_keeps_plain_scan(self):
        class NotReallySharded:
            name = "plain"

            def scan(self):
                return iter(ROWS)

            def shard_plan(self):
                return None

        plan = Query(NotReallySharded()).where(
            expr.Col("v") >= 10)._plan()
        assert not isinstance(plan.nodes[0], planmod.ScatterNode)
