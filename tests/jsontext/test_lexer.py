"""Tests for the streaming JSON tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import JsonParseError
from repro.jsontext.lexer import JsonEventType, tokenize

E = JsonEventType


def types(text):
    return [e.type for e in tokenize(text)]


def scalars(text):
    return [e.value for e in tokenize(text) if e.type is E.SCALAR]


class TestScalars:
    def test_string(self):
        assert scalars('"hello"') == ["hello"]

    def test_empty_string(self):
        assert scalars('""') == [""]

    def test_integer(self):
        assert scalars("42") == [42]

    def test_negative_integer(self):
        assert scalars("-17") == [-17]

    def test_zero(self):
        assert scalars("0") == [0]

    def test_float(self):
        assert scalars("3.25") == [3.25]

    def test_float_exponent(self):
        assert scalars("1e3") == [1000.0]
        assert scalars("2.5E-2") == [0.025]
        assert scalars("1e+2") == [100.0]

    def test_int_vs_float_type(self):
        assert isinstance(scalars("5")[0], int)
        assert isinstance(scalars("5.0")[0], float)
        assert isinstance(scalars("5e0")[0], float)

    def test_true_false_null(self):
        assert scalars("true") == [True]
        assert scalars("false") == [False]
        assert scalars("null") == [None]

    def test_unicode_passthrough(self):
        assert scalars('"héllo ☃"') == ["héllo ☃"]


class TestEscapes:
    @pytest.mark.parametrize("literal,expected", [
        (r'"\n"', "\n"), (r'"\t"', "\t"), (r'"\r"', "\r"),
        (r'"\b"', "\b"), (r'"\f"', "\f"), (r'"\\"', "\\"),
        (r'"\/"', "/"), (r'"\""', '"'),
    ])
    def test_simple_escapes(self, literal, expected):
        assert scalars(literal) == [expected]

    def test_unicode_escape(self):
        assert scalars(r'"\u0041"') == ["A"]

    def test_surrogate_pair(self):
        assert scalars(r'"\ud83d\ude00"') == ["\U0001F600"]

    def test_lone_high_surrogate_kept(self):
        # a high surrogate not followed by a low one decodes as-is
        assert scalars(r'"\ud800x"') == ["\ud800x"]

    def test_invalid_escape(self):
        with pytest.raises(JsonParseError):
            list(tokenize(r'"\q"'))

    def test_truncated_unicode_escape(self):
        with pytest.raises(JsonParseError):
            list(tokenize(r'"\u00"'))


class TestStructure:
    def test_empty_object(self):
        assert types("{}") == [E.OBJECT_START, E.OBJECT_END]

    def test_empty_array(self):
        assert types("[]") == [E.ARRAY_START, E.ARRAY_END]

    def test_simple_object(self):
        events = list(tokenize('{"a": 1}'))
        assert [e.type for e in events] == [
            E.OBJECT_START, E.FIELD_NAME, E.SCALAR, E.OBJECT_END]
        assert events[1].value == "a"
        assert events[2].value == 1

    def test_nested(self):
        assert types('{"a": [1, {"b": null}]}') == [
            E.OBJECT_START, E.FIELD_NAME, E.ARRAY_START, E.SCALAR,
            E.OBJECT_START, E.FIELD_NAME, E.SCALAR, E.OBJECT_END,
            E.ARRAY_END, E.OBJECT_END]

    def test_whitespace_tolerated(self):
        assert types('  { "a" :\n\t[ 1 , 2 ]\r}  ') == [
            E.OBJECT_START, E.FIELD_NAME, E.ARRAY_START, E.SCALAR,
            E.SCALAR, E.ARRAY_END, E.OBJECT_END]

    def test_positions_recorded(self):
        events = list(tokenize('{"a": 1}'))
        assert events[0].position == 0
        assert events[1].position == 1


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "{", "[", '{"a"}', '{"a": }', '{"a": 1,}', "[1,]",
        "[1 2]", '{"a" 1}', "{1: 2}", "tru", "nul", "truex",
        '"unterminated', "01", "1.", "1e", "-", "--1", "{}}", "[]]",
        "1 2", '"a" "b"', "'single'", "[1, 2,]", "+1", ".5", "NaN",
        "Infinity", '{"a": 1} extra', '"\x01"',
    ])
    def test_malformed_input_raises(self, bad):
        with pytest.raises(JsonParseError):
            list(tokenize(bad))

    def test_error_carries_position(self):
        try:
            list(tokenize("[1, x]"))
        except JsonParseError as exc:
            assert exc.position == 4
        else:
            pytest.fail("expected JsonParseError")


class TestProperties:
    @given(st.integers(min_value=-(10**18), max_value=10**18))
    def test_integer_roundtrip(self, value):
        assert scalars(str(value)) == [value]

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip(self, value):
        assert scalars(repr(value)) == [value]

    @given(st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=50))
    def test_string_roundtrip_via_serializer(self, value):
        from repro.jsontext import dumps
        assert scalars(dumps(value)) == [value]
