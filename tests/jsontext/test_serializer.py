"""Tests for the compact JSON serializer."""

import pytest

from repro.errors import JsonSerializeError, ReproError
from repro.jsontext import dumps, loads


class TestDumps:
    def test_compact_no_whitespace(self):
        text = dumps({"a": [1, 2], "b": {"c": "d"}})
        assert text == '{"a":[1,2],"b":{"c":"d"}}'
        assert " " not in text

    def test_scalars(self):
        assert dumps(None) == "null"
        assert dumps(True) == "true"
        assert dumps(False) == "false"
        assert dumps(42) == "42"
        assert dumps("hi") == '"hi"'

    def test_float_keeps_decimal_point(self):
        # floats must round-trip as floats, not collapse to ints
        assert dumps(5.0) == "5.0"
        assert isinstance(loads(dumps(5.0)), float)

    def test_control_characters_escaped(self):
        assert dumps("\x00") == '"\\u0000"'
        assert dumps("a\nb") == '"a\\nb"'
        assert dumps('q"q') == '"q\\"q"'
        assert dumps("back\\slash") == '"back\\\\slash"'

    def test_tuple_serializes_as_array(self):
        assert dumps((1, 2)) == "[1,2]"

    def test_empty_containers(self):
        assert dumps({}) == "{}"
        assert dumps([]) == "[]"

    def test_nan_rejected(self):
        with pytest.raises(JsonSerializeError):
            dumps(float("nan"))
        with pytest.raises(JsonSerializeError):
            dumps(float("inf"))

    def test_non_string_key_rejected(self):
        with pytest.raises(JsonSerializeError) as exc_info:
            dumps({1: "x"})
        assert exc_info.value.json_type == "int"

    def test_unsupported_type_rejected(self):
        with pytest.raises(JsonSerializeError) as exc_info:
            dumps(object())
        assert exc_info.value.json_type == "object"

    def test_serialize_errors_catchable_via_base(self):
        # the library-wide contract: every raised error is a ReproError,
        # never a bare builtin
        with pytest.raises(ReproError):
            dumps(float("nan"))
        with pytest.raises(ReproError):
            dumps({(1, 2): "x"})

    def test_key_order_preserved(self):
        assert dumps({"z": 1, "a": 2}) == '{"z":1,"a":2}'


class TestPretty:
    def test_pretty_is_parseable(self):
        doc = {"a": [1, {"b": None}], "c": "x"}
        pretty = dumps(doc, pretty=True)
        assert "\n" in pretty
        assert loads(pretty) == doc

    def test_pretty_empty(self):
        assert dumps({}, pretty=True) == "{}"
        assert dumps([], pretty=True) == "[]"

    def test_pretty_indent(self):
        pretty = dumps({"a": 1}, pretty=True, indent=4)
        assert '    "a": 1' in pretty
