"""Tests for the event parser / DOM builder."""

import pytest
from hypothesis import given

from repro.errors import JsonParseError
from repro.jsontext import dumps, loads
from tests.strategies import json_values


class TestLoads:
    def test_scalars(self):
        assert loads("1") == 1
        assert loads('"x"') == "x"
        assert loads("true") is True
        assert loads("false") is False
        assert loads("null") is None

    def test_object(self):
        assert loads('{"a": 1, "b": [2, 3]}') == {"a": 1, "b": [2, 3]}

    def test_key_order_preserved(self):
        assert list(loads('{"z": 1, "a": 2, "m": 3}')) == ["z", "a", "m"]

    def test_duplicate_keys_keep_last(self):
        assert loads('{"a": 1, "a": 2}') == {"a": 2}

    def test_deep_nesting(self):
        depth = 200
        text = "[" * depth + "1" + "]" * depth
        value = loads(text)
        for _ in range(depth):
            assert isinstance(value, list) and len(value) == 1
            value = value[0]
        assert value == 1

    def test_empty_containers(self):
        assert loads('{"a": {}, "b": []}') == {"a": {}, "b": []}

    def test_malformed_raises(self):
        with pytest.raises(JsonParseError):
            loads('{"a": ')

    def test_nested_heterogeneous(self):
        doc = loads('{"a": [1, "x", null, true, {"b": 2.5}]}')
        assert doc == {"a": [1, "x", None, True, {"b": 2.5}]}


class TestRoundTrip:
    @given(json_values())
    def test_dumps_loads_roundtrip(self, value):
        assert loads(dumps(value)) == value

    @given(json_values())
    def test_double_roundtrip_stable(self, value):
        once = dumps(value)
        assert dumps(loads(once)) == once
