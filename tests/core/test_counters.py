"""Unit tests for the cache instrumentation registry."""

import pytest

from repro.core.counters import (
    BoundedCache,
    IdentityCache,
    cache_named,
    counters_for,
    restore_caches_enabled,
    set_caches_enabled,
    snapshot_all,
)


class TestCounters:
    def test_registry_returns_same_record(self):
        a = counters_for("test.same")
        b = counters_for("test.same")
        assert a is b

    def test_hit_rate_and_snapshot(self):
        record = counters_for("test.rate")
        record.reset()
        record.hits = 3
        record.misses = 1
        assert record.lookups == 4
        assert record.hit_rate() == 0.75
        snap = record.snapshot()
        assert snap["hits"] == 3 and snap["hit_rate"] == 0.75
        assert "test.rate" in snapshot_all()

    def test_zero_lookups_hit_rate(self):
        record = counters_for("test.zero")
        record.reset()
        assert record.hit_rate() == 0.0


class TestBoundedCache:
    def test_lru_eviction_counts(self):
        cache = BoundedCache("test.lru", maxsize=2)
        cache.counters.reset()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.counters.evictions == 1
        assert cache.counters.misses == 1
        assert cache.counters.hits == 3

    def test_disabled_is_passthrough(self):
        cache = BoundedCache("test.disabled", maxsize=4)
        cache.put("a", 1)
        cache.enabled = False
        assert cache.get("a") is None
        cache.put("b", 2)
        cache.enabled = True
        assert cache.get("b") is None  # the disabled put was dropped
        assert cache.get("a") == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BoundedCache("test.bad", maxsize=0)


class TestIdentityCache:
    def test_keyed_by_identity_not_equality(self):
        cache = IdentityCache("test.identity", maxsize=4)
        key_a = b"same-bytes"
        # bytes(bytes) returns the same object in CPython; round-trip
        # through bytearray to get an equal-but-distinct key
        key_b = bytes(bytearray(key_a))
        assert key_b == key_a and key_b is not key_a
        cache.put(key_a, "A")
        assert cache.get(key_a) == "A"
        assert cache.get(key_b) is None

    def test_entry_pins_key_object(self):
        cache = IdentityCache("test.pin", maxsize=2)
        key = bytes(bytearray(b"pinned"))
        cache.put(key, 1)
        key_id = id(key)
        del key
        # the entry still holds the only reference, so the id cannot be
        # recycled into a colliding new object while the entry lives
        entry = cache._entries[key_id]
        assert entry[1] == 1 and id(entry[0]) == key_id


class TestEnableToggle:
    def test_cache_named_finds_live_caches(self):
        cache = BoundedCache("test.named", maxsize=2)
        assert cache_named("test.named") is cache

    def test_set_and_restore_selected(self):
        a = BoundedCache("test.toggle_a", maxsize=2)
        b = BoundedCache("test.toggle_b", maxsize=2)
        previous = set_caches_enabled(False, names=["test.toggle_a"])
        assert previous == {"test.toggle_a": True}
        assert a.enabled is False and b.enabled is True
        restore_caches_enabled(previous)
        assert a.enabled is True

    def test_hot_path_caches_are_registered(self):
        # importing the sqljson stack registers every hot-path cache
        import repro.sqljson.adapters  # noqa: F401
        for name in ("sqljson.path_parse", "sqljson.oson_adapter",
                     "oson.document", "oson.dictionary_intern"):
            assert cache_named(name) is not None, name
