"""Unit tests for the cache instrumentation registry."""

import threading

import pytest

from repro.core.counters import (
    BoundedCache,
    IdentityCache,
    cache_named,
    counters_for,
    restore_caches_enabled,
    set_caches_enabled,
    snapshot_all,
)


class TestCounters:
    def test_registry_returns_same_record(self):
        a = counters_for("test.same")
        b = counters_for("test.same")
        assert a is b

    def test_hit_rate_and_snapshot(self):
        record = counters_for("test.rate")
        record.reset()
        record.hits = 3
        record.misses = 1
        assert record.lookups == 4
        assert record.hit_rate() == 0.75
        snap = record.snapshot()
        assert snap["hits"] == 3 and snap["hit_rate"] == 0.75
        assert "test.rate" in snapshot_all()

    def test_zero_lookups_hit_rate(self):
        record = counters_for("test.zero")
        record.reset()
        assert record.hit_rate() == 0.0


class TestBoundedCache:
    def test_lru_eviction_counts(self):
        cache = BoundedCache("test.lru", maxsize=2)
        cache.counters.reset()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.counters.evictions == 1
        assert cache.counters.misses == 1
        assert cache.counters.hits == 3

    def test_disabled_is_passthrough(self):
        cache = BoundedCache("test.disabled", maxsize=4)
        cache.put("a", 1)
        cache.enabled = False
        assert cache.get("a") is None
        cache.put("b", 2)
        cache.enabled = True
        assert cache.get("b") is None  # the disabled put was dropped
        assert cache.get("a") == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BoundedCache("test.bad", maxsize=0)


class TestIdentityCache:
    def test_keyed_by_identity_not_equality(self):
        cache = IdentityCache("test.identity", maxsize=4)
        key_a = b"same-bytes"
        # bytes(bytes) returns the same object in CPython; round-trip
        # through bytearray to get an equal-but-distinct key
        key_b = bytes(bytearray(key_a))
        assert key_b == key_a and key_b is not key_a
        cache.put(key_a, "A")
        assert cache.get(key_a) == "A"
        assert cache.get(key_b) is None

    def test_entry_pins_key_object(self):
        cache = IdentityCache("test.pin", maxsize=2)
        key = bytes(bytearray(b"pinned"))
        cache.put(key, 1)
        key_id = id(key)
        del key
        # the entry still holds the only reference, so the id cannot be
        # recycled into a colliding new object while the entry lives
        entry = cache._entries[key_id]
        assert entry[1] == 1 and id(entry[0]) == key_id


class TestEnableToggle:
    def test_cache_named_finds_live_caches(self):
        cache = BoundedCache("test.named", maxsize=2)
        assert cache_named("test.named") is cache

    def test_set_and_restore_selected(self):
        a = BoundedCache("test.toggle_a", maxsize=2)
        b = BoundedCache("test.toggle_b", maxsize=2)
        previous = set_caches_enabled(False, names=["test.toggle_a"])
        assert previous == {"test.toggle_a": True}
        assert a.enabled is False and b.enabled is True
        restore_caches_enabled(previous)
        assert a.enabled is True

    def test_hot_path_caches_are_registered(self):
        # importing the sqljson stack registers every hot-path cache
        import repro.sqljson.adapters  # noqa: F401
        for name in ("sqljson.path_parse", "sqljson.oson_adapter",
                     "oson.document", "oson.dictionary_intern"):
            assert cache_named(name) is not None, name


class TestThreadSafety:
    """Regression tests for the unsynchronized check-then-insert and
    read-modify-write races the registry and caches used to have.

    Before the fix, a concurrent ``counters_for`` could hand two threads
    distinct records for the same name (half the tallies vanished when
    the second registration won), ``hits += 1`` lost increments under
    interleaving, and concurrent ``get``/``put`` could corrupt the
    OrderedDict mid-``move_to_end``.  These hammers fail intermittently
    (lost counts, KeyError, wrong sizes) on the old code.
    """

    THREADS = 8
    ROUNDS = 2000

    def _hammer(self, work):
        errors = []

        def run():
            try:
                work()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors

    def test_registry_single_record_under_contention(self):
        seen = []
        lock = threading.Lock()

        def work():
            for i in range(self.ROUNDS):
                record = counters_for(f"test.race_registry.{i % 16}")
                with lock:
                    seen.append(record)

        self._hammer(work)
        by_name = {}
        for record in seen:
            by_name.setdefault(record.name, set()).add(id(record))
        assert all(len(ids) == 1 for ids in by_name.values()), \
            "counters_for returned distinct records for one name"

    def test_counter_increments_are_not_lost(self):
        record = counters_for("test.race_increments")
        record.reset()

        def work():
            for _ in range(self.ROUNDS):
                record.record_hit()
                record.record_miss()

        self._hammer(work)
        assert record.hits == self.THREADS * self.ROUNDS
        assert record.misses == self.THREADS * self.ROUNDS

    def test_bounded_cache_exact_tallies_and_bound(self):
        cache = BoundedCache("test.race_bounded", maxsize=8)
        cache.counters.reset()

        def work():
            for i in range(self.ROUNDS):
                cache.put(i % 4, i)
                assert cache.get(i % 4) is not None  # within maxsize
                cache.get("never-inserted")

        self._hammer(work)
        total = self.THREADS * self.ROUNDS
        assert cache.counters.hits == total
        assert cache.counters.misses == total
        assert len(cache) <= cache.maxsize

    def test_identity_cache_survives_churn(self):
        cache = IdentityCache("test.race_identity", maxsize=8)
        cache.counters.reset()
        keys = [bytes(bytearray(b"key-%d" % i)) for i in range(16)]

        def work():
            for i in range(self.ROUNDS):
                key = keys[i % len(keys)]
                cache.put(key, i)
                cache.get(key)

        self._hammer(work)
        assert len(cache) <= cache.maxsize
        counters = cache.counters
        assert counters.hits + counters.misses == self.THREADS * self.ROUNDS
