"""Tests for the REL storage decomposition."""

from repro.engine import Database
from repro.workloads.purchase_orders import PurchaseOrderGenerator
from repro.workloads.relational import (
    create_rel_tables,
    rel_storage_bytes,
    shred_documents,
)


def setup(n=25):
    db = Database()
    master, detail = create_rel_tables(db)
    docs = list(PurchaseOrderGenerator().documents(n))
    shred_documents(master, detail, docs)
    return db, master, detail, docs


class TestShredding:
    def test_row_counts(self):
        _db, master, detail, docs = setup()
        assert len(master) == len(docs)
        assert len(detail) == sum(len(d["purchaseOrder"]["items"])
                                  for d in docs)

    def test_foreign_keys_consistent(self):
        _db, master, detail, _docs = setup()
        master_ids = {r["po_id"] for r in master.scan()}
        assert all(r["po_id"] in master_ids for r in detail.scan())

    def test_values_preserved(self):
        _db, master, detail, docs = setup()
        po = docs[3]["purchaseOrder"]
        master_row = [r for r in master.scan() if r["po_id"] == 3][0]
        assert master_row["reference"] == po["reference"]
        assert master_row["costcenter"] == po["costcenter"]
        detail_rows = [r for r in detail.scan() if r["po_id"] == 3]
        assert [r["partno"] for r in detail_rows] == \
            [i["partno"] for i in po["items"]]

    def test_optional_foreign_id(self):
        _db, master, _detail, docs = setup(100)
        with_fid = sum("foreign_id" in d["purchaseOrder"] for d in docs)
        stored = sum(r["foreign_id"] is not None for r in master.scan())
        assert stored == with_fid

    def test_line_item_ids_unique(self):
        _db, _master, detail, _docs = setup()
        ids = [r["li_id"] for r in detail.scan()]
        assert len(ids) == len(set(ids))


class TestStorageAccounting:
    def test_index_bytes_included(self):
        _db, master, detail, _docs = setup()
        base = master.storage_bytes() + detail.storage_bytes()
        with_indexes = rel_storage_bytes(master, detail)
        assert with_indexes == base + 8 * (len(master) + 2 * len(detail))
