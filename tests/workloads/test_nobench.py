"""Tests for the NOBENCH generator and query suite."""

import pytest

from repro.imc.json_modes import (
    JsonColumnIMC,
    OSON_IMC_MODE,
    TEXT_MODE,
    VC_IMC_MODE,
)
from repro.jsontext import dumps
from repro.workloads.nobench import (
    NobenchGenerator,
    NobenchQueries,
    SPARSE_FIELD_COUNT,
    SPARSE_PER_DOCUMENT,
    VC_PATHS,
)

N = 400


class TestGenerator:
    def test_deterministic(self):
        a = NobenchGenerator(seed=1).document(5)
        b = NobenchGenerator(seed=1).document(5)
        assert a == b

    def test_common_fields(self):
        doc = NobenchGenerator().document(3)
        for field in ("str1", "str2", "num", "bool", "dyn1", "dyn2",
                      "nested_obj", "nested_arr", "thousandth"):
            assert field in doc
        assert doc["num"] == 3
        assert doc["thousandth"] == 3

    def test_sparse_fields_per_document(self):
        doc = NobenchGenerator().document(0)
        sparse = [k for k in doc if k.startswith("sparse_")]
        assert len(sparse) == SPARSE_PER_DOCUMENT

    def test_sparse_space_covered(self):
        docs = list(NobenchGenerator().documents(SPARSE_FIELD_COUNT // SPARSE_PER_DOCUMENT))
        seen = set()
        for doc in docs:
            seen.update(k for k in doc if k.startswith("sparse_"))
        assert len(seen) == SPARSE_FIELD_COUNT

    def test_dynamic_typing(self):
        generator = NobenchGenerator()
        assert isinstance(generator.document(4)["dyn1"], int)
        assert isinstance(generator.document(5)["dyn1"], str)

    def test_homogeneous_documents_identical_structure(self):
        docs = list(NobenchGenerator().homogeneous_documents(10))
        keys = set(frozenset(d) for d in docs)
        assert len(keys) == 1

    def test_heterogeneous_documents_unique_fields(self):
        docs = list(NobenchGenerator().heterogeneous_documents(10))
        uniques = [k for d in docs for k in d if k.startswith("unique_")]
        assert len(set(uniques)) == 10


def make_queries(mode, vc_paths=()):
    texts = [dumps(d) for d in NobenchGenerator().documents(N)]
    imc = JsonColumnIMC(mode, vc_paths)
    imc.load_texts(texts)
    imc.populate()
    return NobenchQueries(imc, N)


@pytest.fixture(scope="module")
def text_queries():
    return make_queries(TEXT_MODE)


@pytest.fixture(scope="module")
def oson_queries():
    return make_queries(OSON_IMC_MODE)


@pytest.fixture(scope="module")
def vc_queries():
    return make_queries(VC_IMC_MODE, VC_PATHS)


class TestQueries:
    def test_q1_projects_all(self, oson_queries):
        result = oson_queries.q1()
        assert len(result) == N
        assert result[5] == (oson_queries.q1()[5])

    def test_q2_nested_projection(self, oson_queries):
        result = oson_queries.q2()
        assert len(result) == N
        assert result[3][1] == 3  # nested_obj.num == i

    def test_q3_q4_sparse_projection(self, oson_queries):
        assert 0 < len(oson_queries.q3()) < N
        assert 0 < len(oson_queries.q4()) < N

    def test_q5_point_lookup(self, oson_queries):
        assert len(oson_queries.q5()) == 1

    def test_q6_range(self, oson_queries):
        low, span = 100, 10
        result = oson_queries.q6(low, span)
        assert result == list(range(low, low + span))

    def test_q7_dynamic_range(self, oson_queries):
        result = oson_queries.q7(100, 10)
        # only even docs have numeric dyn1
        assert result == [v for v in range(100, 110) if v % 2 == 0]

    def test_q8_array_membership(self, oson_queries):
        assert len(oson_queries.q8()) >= 1

    def test_q9_sparse_predicate(self, oson_queries):
        result = oson_queries.q9()
        assert all("sparse_550" in doc for doc in result)

    def test_q10_groupby_sum(self, oson_queries):
        sums = oson_queries.q10()
        assert sum(sums.values()) == sum(range(N))

    def test_q11_self_join(self, oson_queries):
        matches = oson_queries.q11(limit=50)
        # nested_obj.str == str1 of the same document by construction
        assert all(a == b for a, b in matches)
        assert len(matches) == 50


class TestModeParity:
    """All three modes must return identical results (Figures 5/6 compare
    time, not answers)."""

    def test_text_vs_oson(self, text_queries, oson_queries):
        assert text_queries.run_all() == oson_queries.run_all()

    def test_oson_vs_vc(self, oson_queries, vc_queries):
        # VC mode accelerates Q6/Q7/Q10/Q11; results must not change
        assert oson_queries.q6() == vc_queries.q6()
        assert oson_queries.q7() == vc_queries.q7()
        assert oson_queries.q10() == vc_queries.q10()
        assert sorted(oson_queries.q11(limit=100)) == \
            sorted(vc_queries.q11(limit=100))

    def test_vc_uses_vectors(self, vc_queries):
        assert vc_queries.source.has_vector("$.num")
        assert vc_queries.source.has_vector("$.dyn1")
        assert vc_queries.source.has_vector("$.str1")
