"""Tests for the purchaseOrder workload: generator, views, Q1-Q9 parity."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.types import BLOB
from repro.jsontext import dumps
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
    build_rel_views,
)
from repro.workloads.relational import (
    create_rel_tables,
    rel_storage_bytes,
    shred_documents,
)

N = 120


@pytest.fixture(scope="module")
def documents():
    return list(PurchaseOrderGenerator().documents(N))


@pytest.fixture(scope="module")
def all_storages(documents):
    """The four storage methods of Figure 3, sharing one Database."""
    db = Database()
    setups = {}
    encodings = [("json", dumps, CLOB), ("bson", bson.encode, BLOB),
                 ("oson", oson_encode, BLOB)]
    for name, encode_fn, sql_type in encodings:
        table = db.create_table(f"po_{name}", [Column("did", NUMBER),
                                               Column("jdoc", sql_type)])
        for i, doc in enumerate(documents):
            table.insert({"did": i, "jdoc": encode_fn(doc)})
        mv, dmdv = build_po_views(db, table, "jdoc", name)
        setups[name] = PoOlapQueries(mv, dmdv)
    master, detail = create_rel_tables(db)
    shred_documents(master, detail, documents)
    mv, dmdv = build_rel_views(db, master, detail, "rel")
    setups["rel"] = PoOlapQueries(mv, dmdv)
    return db, setups, master, detail


class TestGenerator:
    def test_deterministic(self, documents):
        again = list(PurchaseOrderGenerator().documents(N))
        assert documents == again

    def test_master_detail_shape(self, documents):
        po = documents[0]["purchaseOrder"]
        assert {"reference", "requestor", "costcenter", "items"} <= set(po)
        item = po["items"][0]
        assert {"itemno", "partno", "description", "quantity",
                "unitprice"} <= set(item)

    def test_item_counts_in_range(self, documents):
        for doc in documents:
            assert 1 <= len(doc["purchaseOrder"]["items"]) <= 5


class TestStorageParity:
    """The paper's premise: the views hide the physical storage, so all
    four storages must return identical answers for Q1-Q9."""

    def test_all_queries_agree(self, documents, all_storages):
        _db, setups, _m, _d = all_storages
        params = PoQueryParams(documents)
        results = {name: queries.run_all(params)
                   for name, queries in setups.items()}
        assert results["json"] == results["bson"] == results["oson"] \
            == results["rel"]

    def test_q2_groups_match_document_counts(self, documents, all_storages):
        _db, setups, _m, _d = all_storages
        rows = setups["oson"].q2()
        assert sum(r["n"] for r in rows) == N

    def test_q6_window_results(self, documents, all_storages):
        _db, setups, _m, _d = all_storages
        params = PoQueryParams(documents)
        oson_rows = setups["oson"].q6(params.partno)
        rel_rows = setups["rel"].q6(params.partno)
        assert oson_rows == rel_rows
        assert all("difference" in r for r in oson_rows)

    def test_q7_sums_match_manual(self, documents, all_storages):
        _db, setups, _m, _d = all_storages
        expected: dict = {}
        for doc in documents:
            po = doc["purchaseOrder"]
            for item in po["items"]:
                cc = po["costcenter"]
                expected[cc] = expected.get(cc, 0) \
                    + item["quantity"] * item["unitprice"]
        rows = setups["json"].q7()
        got = {r["costcenter"]: r["total"] for r in rows}
        assert got.keys() == expected.keys()
        for cc in expected:
            assert got[cc] == pytest.approx(expected[cc])

    def test_q9_row_count_is_total_items(self, documents, all_storages):
        _db, setups, _m, _d = all_storages
        total_items = sum(len(d["purchaseOrder"]["items"])
                          for d in documents)
        assert len(setups["bson"].q9()) == total_items


class TestRelStorage:
    def test_shred_row_counts(self, documents, all_storages):
        _db, _s, master, detail = all_storages
        assert len(master) == N
        assert len(detail) == sum(len(d["purchaseOrder"]["items"])
                                  for d in documents)

    def test_storage_bytes_accounts_indexes(self, all_storages):
        _db, _s, master, detail = all_storages
        assert rel_storage_bytes(master, detail) > \
            master.storage_bytes() + detail.storage_bytes()

    def test_figure4_shape_rel_smallest(self, documents, all_storages):
        """Figure 4: REL < JSON ~= OSON < BSON (BSON marginally biggest)."""
        db, _s, master, detail = all_storages
        sizes = {name: db.table(f"po_{name}").storage_bytes()
                 for name in ("json", "bson", "oson")}
        sizes["rel"] = rel_storage_bytes(master, detail)
        assert sizes["rel"] < sizes["json"]
        assert sizes["rel"] < sizes["oson"]
        # self-contained formats within ~2x of each other
        assert max(sizes["json"], sizes["bson"], sizes["oson"]) < \
            2 * min(sizes["json"], sizes["bson"], sizes["oson"])
