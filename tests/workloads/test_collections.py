"""Tests for the twelve synthetic collections (Tables 10-12 inputs)."""

import pytest

from repro.core.dataguide import json_dataguide_agg
from repro.core.oson.stats import segment_stats, size_stats
from repro.jsontext import dumps, loads
from repro.workloads.collections import (
    COLLECTION_NAMES,
    collection,
)

EXPECTED_NAMES = ["workOrder", "salesOrder", "eventMessage", "purchaseOrder",
                  "bookOrder", "LoanNotes", "TwitterMsg", "AcquisionDoc",
                  "NOBENCHDoc", "YCSBDoc", "TwitterMsgArchive", "SensorData"]


class TestRegistry:
    def test_paper_row_order(self):
        assert COLLECTION_NAMES == EXPECTED_NAMES

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            collection("nope")

    def test_scale_controls_count(self):
        assert len(collection("workOrder", scale=0.1)) == 10
        assert len(collection("workOrder", scale=0.02)) == 2
        assert len(collection("SensorData", scale=0.001)) == 1  # min 1 doc

    def test_deterministic(self):
        assert collection("bookOrder", 0.05) == collection("bookOrder", 0.05)


class TestDocumentValidity:
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_json_serializable(self, name):
        scale = 0.02 if name not in ("TwitterMsgArchive", "SensorData") else 1
        docs = collection(name, scale)
        for doc in docs[:3]:
            assert loads(dumps(doc)) == doc


class TestStructuralShape:
    """The qualitative Table 10/11/12 characteristics each collection was
    designed to reproduce."""

    def test_loan_notes_dictionary_heavy(self):
        stats = segment_stats(collection("LoanNotes", 0.1))
        assert stats.dictionary_ratio > 0.5  # paper: 62.7%

    def test_ycsb_value_heavy(self):
        stats = segment_stats(collection("YCSBDoc", 0.1))
        assert stats.values_ratio > 0.7  # paper: 84.4%

    def test_sensor_tree_heavy_and_oson_much_smaller(self):
        docs = collection("SensorData", 0.3)
        seg = segment_stats(docs)
        assert seg.tree_ratio > 0.5       # paper: 80.8%
        assert seg.dictionary_ratio < 0.01
        sizes = size_stats(docs)
        assert sizes.avg_oson < 0.7 * sizes.avg_json  # paper: 0.46x

    def test_archive_oson_smaller_than_text(self):
        sizes = size_stats(collection("TwitterMsgArchive", 0.3))
        assert sizes.avg_oson < sizes.avg_json  # paper: 2.5M vs 5.05M

    def test_small_collections_near_parity(self):
        for name in ("workOrder", "salesOrder", "purchaseOrder",
                     "bookOrder", "YCSBDoc"):
            sizes = size_stats(collection(name, 0.2))
            ratio = sizes.avg_oson / sizes.avg_json
            assert 0.5 < ratio < 1.6, (name, ratio)

    def test_nobench_distinct_paths_dominated_by_sparse(self):
        guide = json_dataguide_agg(collection("NOBENCHDoc", 1.0))
        sparse = [p for p in guide.paths() if "sparse_" in p]
        assert len(sparse) >= 500

    def test_sensor_fan_out_is_huge(self):
        """Table 12: SensorData's DMDV fan-out ratio is in the tens of
        thousands; ours must at least be very large per document."""
        from repro.core.dataguide.views import build_json_table
        docs = collection("SensorData", 0.1)
        guide = json_dataguide_agg(docs)
        jt = build_json_table(guide)
        fan_out = len(jt.rows(docs[0]))
        assert fan_out > 1000
