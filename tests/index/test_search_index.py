"""Tests for the schema-agnostic JSON search index."""

import pytest

from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.constraints import IsJsonConstraint
from repro.errors import IndexError_
from repro.jsontext import dumps

DOCS = [
    {"name": "red phone", "price": 100},
    {"name": "blue tablet", "price": 250,
     "extras": {"warranty": "2 years"}},
    {"name": "red tablet", "price": 180},
]


def make_db(with_constraint=True, preload=0):
    db = Database()
    table = db.create_table("docs", [Column("id", NUMBER),
                                     Column("jdoc", CLOB)])
    if with_constraint:
        table.add_constraint(IsJsonConstraint("jdoc"))
    for i in range(preload):
        table.insert({"id": i, "jdoc": dumps(DOCS[i])})
    index = db.create_json_search_index("idx", "docs", "jdoc")
    for i in range(preload, len(DOCS)):
        table.insert({"id": i, "jdoc": dumps(DOCS[i])})
    return db, table, index


class TestMaintenance:
    def test_incremental_on_insert(self):
        _db, _table, index = make_db()
        assert index.inverted.indexed_documents == 3

    def test_existing_rows_indexed_at_creation(self):
        _db, _table, index = make_db(preload=2)
        assert index.inverted.indexed_documents == 3
        assert len(index.docs_with_keywords("phone")) == 1

    def test_uses_constraint_hook_when_available(self):
        _db, _table, index = make_db(with_constraint=True)
        assert index._uses_constraint_hook

    def test_falls_back_to_listener_without_constraint(self):
        _db, _table, index = make_db(with_constraint=False)
        assert not index._uses_constraint_hook
        assert index.inverted.indexed_documents == 3

    def test_delete_removes_from_inverted(self):
        _db, table, index = make_db()
        table.delete(lambda row: row["id"] == 0)
        assert index.docs_with_keywords("phone") == []
        assert index.inverted.indexed_documents == 2

    def test_delete_keeps_dataguide_paths(self):
        """The persistent DataGuide is additive (section 3.4)."""
        _db, table, index = make_db()
        paths_before = set(index.get_dataguide().paths())
        table.delete(lambda row: True)
        assert set(index.get_dataguide().paths()) == paths_before

    def test_update_reindexes(self):
        _db, table, index = make_db()
        table.update(lambda row: row["id"] == 0,
                     {"jdoc": dumps({"name": "green phone", "price": 1})})
        assert len(index.docs_with_keywords("green")) == 1
        assert index.docs_with_keywords("red phone") == []

    def test_detach_stops_maintenance(self):
        db, table, index = make_db()
        db.drop_index("idx")
        table.insert({"id": 99, "jdoc": dumps({"name": "late doc"})})
        assert index.docs_with_keywords("late") == []


class TestSearch:
    def test_docs_with_path(self):
        _db, _table, index = make_db()
        rows = index.docs_with_path("$.extras.warranty")
        assert [r["id"] for r in rows] == [1]

    def test_docs_with_field(self):
        _db, _table, index = make_db()
        assert len(index.docs_with_field("extras")) == 1
        assert len(index.docs_with_field("name")) == 3

    def test_docs_with_keywords(self):
        _db, _table, index = make_db()
        assert [r["id"] for r in index.docs_with_keywords("red")] == [0, 2]
        assert [r["id"] for r in
                index.docs_with_keywords("red", path="$.name")] == [0, 2]

    def test_docs_with_number(self):
        _db, _table, index = make_db()
        assert [r["id"] for r in index.docs_with_number("$.price", 250)] == [1]

    def test_index_results_agree_with_operator_scan(self):
        """Index-accelerated JSON_EXISTS == full-scan JSON_EXISTS."""
        from repro.sqljson import json_exists
        _db, table, index = make_db()
        path = "$.extras.warranty"
        indexed = {r["id"] for r in index.docs_with_path(path)}
        scanned = {r["id"] for r in table.scan()
                   if json_exists(r["jdoc"], path)}
        assert indexed == scanned


class TestDataGuideIntegration:
    def test_get_dataguide(self):
        _db, _table, index = make_db()
        guide = index.get_dataguide()
        assert "$.extras.warranty" in guide.paths()

    def test_dataguide_disabled(self):
        db = Database()
        table = db.create_table("d", [Column("jdoc", CLOB)])
        index = db.create_json_search_index("i", "d", "jdoc",
                                            dataguide=False)
        table.insert({"jdoc": "{}"})
        with pytest.raises(IndexError_):
            index.get_dataguide()

    def test_compute_statistics_fills_dg_rows(self):
        _db, _table, index = make_db()
        assert index.compute_statistics() > 0
        rows = index.dg_table.rows()
        price = [r for r in rows if r["PATH"] == "$.price"][0]
        assert price["FREQUENCY"] == 3
        assert price["MIN_VALUE"] == "100"
        assert price["MAX_VALUE"] == "250"

    def test_unknown_column_rejected(self):
        db = Database()
        db.create_table("d", [Column("jdoc", CLOB)])
        with pytest.raises(IndexError_):
            db.create_json_search_index("i", "d", "nope")
