"""Tests for the $DG relational table."""

from repro.core.dataguide.model import PathEntry, SCALAR, ARRAY
from repro.index.dg_table import DgTable


def scalar_entry(path="$.a", scalar_type="number", **kwargs):
    return PathEntry(path, SCALAR, scalar_type=scalar_type, **kwargs)


class TestDgTable:
    def test_record_new(self):
        dg = DgTable("IDX")
        dg.record_new(scalar_entry())
        assert len(dg) == 1
        rows = dg.rows()
        assert rows[0]["PATH"] == "$.a"
        assert rows[0]["TYPE"] == "number"

    def test_structural_columns_written_stats_deferred(self):
        dg = DgTable("IDX")
        entry = scalar_entry(frequency=10, min_value=1, max_value=9)
        dg.record_new(entry)
        row = dg.rows()[0]
        assert row["FREQUENCY"] is None  # stats lazy until write_statistics
        assert dg.write_statistics([entry]) == 1
        row = dg.rows()[0]
        assert row["FREQUENCY"] == 10
        assert row["MIN_VALUE"] == "1"

    def test_refresh_rewrites_type(self):
        dg = DgTable("IDX")
        entry = scalar_entry()
        dg.record_new(entry)
        entry.scalar_type = "string"  # generalized
        dg.refresh(entry)
        assert len(dg) == 1  # still one row
        assert dg.rows()[0]["TYPE"] == "string"
        assert dg.insert_count == 2  # two physical writes

    def test_refresh_unknown_entry_inserts(self):
        dg = DgTable("IDX")
        dg.refresh(scalar_entry())
        assert len(dg) == 1

    def test_lookup_by_path_and_kind(self):
        dg = DgTable("IDX")
        dg.record_new(scalar_entry("$.x"))
        dg.record_new(PathEntry("$.x", ARRAY))
        assert len(dg.lookup("$.x")) == 2
        assert len(dg.lookup("$.x", SCALAR)) == 1
        assert dg.lookup("$.y") == []

    def test_array_type_label(self):
        dg = DgTable("IDX")
        dg.record_new(PathEntry("$.items.parts", ARRAY, in_array=True))
        assert dg.rows()[0]["TYPE"] == "array of array"

    def test_write_statistics_skips_unknown(self):
        dg = DgTable("IDX")
        assert dg.write_statistics([scalar_entry("$.ghost")]) == 0
