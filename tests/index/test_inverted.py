"""Tests for the inverted index over field names, paths and tokens."""

from repro.index.inverted import InvertedIndex, tokenize_value


class TestTokenizer:
    def test_word_tokens_lowercased(self):
        assert tokenize_value("Hello World_42!") == ["hello", "world_42"]

    def test_empty(self):
        assert tokenize_value("") == []
        assert tokenize_value("!!!") == []


def sample_index():
    index = InvertedIndex()
    index.add_document(0, {"name": "red phone", "price": 100,
                           "specs": {"color": "red"}})
    index.add_document(1, {"name": "blue tablet", "price": 250,
                           "tags": ["sale", "new"]})
    index.add_document(2, {"name": "red tablet", "active": True})
    return index


class TestMaintenance:
    def test_field_postings(self):
        index = sample_index()
        assert index.docs_with_field("name") == {0, 1, 2}
        assert index.docs_with_field("specs") == {0}
        assert index.docs_with_field("color") == {0}
        assert index.docs_with_field("missing") == set()

    def test_path_postings(self):
        index = sample_index()
        assert index.docs_with_path("$.specs.color") == {0}
        assert index.docs_with_path("$.tags") == {1}
        assert index.docs_with_path("$") == {0, 1, 2}

    def test_token_postings(self):
        index = sample_index()
        assert index.docs_with_token("red") == {0, 2}
        assert index.docs_with_token("RED") == {0, 2}  # case folded
        assert index.docs_with_token("tablet") == {1, 2}

    def test_path_scoped_tokens(self):
        index = sample_index()
        assert index.docs_with_token("red", path="$.name") == {0, 2}
        assert index.docs_with_token("red", path="$.specs.color") == {0}
        # token appears in the doc but not under this path
        assert index.docs_with_token("sale", path="$.name") == set()

    def test_array_values_indexed(self):
        index = sample_index()
        assert index.docs_with_token("sale", path="$.tags") == {1}

    def test_numbers_and_booleans(self):
        index = sample_index()
        assert index.docs_with_number("$.price", 100) == {0}
        assert index.docs_with_number("$.price", 101) == set()
        assert index.docs_with_token("true", path="$.active") == {2}

    def test_keyword_conjunction(self):
        index = sample_index()
        assert index.docs_with_keywords("red phone") == {0}
        assert index.docs_with_keywords("red tablet") == {2}
        assert index.docs_with_keywords("red missing") == set()
        assert index.docs_with_keywords("") == set()

    def test_remove_document(self):
        index = sample_index()
        index.remove_document(0, {"name": "red phone", "price": 100,
                                  "specs": {"color": "red"}})
        assert index.docs_with_token("red") == {2}
        assert index.docs_with_field("specs") == set()
        assert index.indexed_documents == 2

    def test_nested_arrays_of_objects(self):
        index = InvertedIndex()
        index.add_document(7, {"items": [{"sku": "widget one"},
                                         {"sku": "widget two"}]})
        assert index.docs_with_path("$.items.sku") == {7}
        assert index.docs_with_token("widget", path="$.items.sku") == {7}

    def test_accounting(self):
        index = sample_index()
        assert index.key_count() > 0
        assert index.postings_size() >= index.key_count()
