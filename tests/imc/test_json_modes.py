"""Tests for the three JSON execution modes (TEXT / OSON-IMC / VC-IMC)."""

import pytest

from repro.core.oson import OsonDocument
from repro.errors import EngineError
from repro.imc.json_modes import (
    JsonColumnIMC,
    OSON_IMC_MODE,
    TEXT_MODE,
    VC_IMC_MODE,
)
from repro.jsontext import dumps
from repro.sqljson.operators import json_value

DOCS = [{"str1": f"s{i}", "num": i, "nested": {"v": i * 2}}
        for i in range(10)]
TEXTS = [dumps(d) for d in DOCS]


def collection(mode, vc_paths=()):
    imc = JsonColumnIMC(mode, vc_paths)
    imc.load_texts(TEXTS)
    imc.populate()
    return imc


class TestModes:
    def test_text_mode_handles_are_text(self):
        imc = collection(TEXT_MODE)
        handles = list(imc.handles())
        assert all(isinstance(h, str) for h in handles)
        assert [json_value(h, "$.num") for h in handles] == list(range(10))

    def test_oson_mode_handles_are_oson(self):
        imc = collection(OSON_IMC_MODE)
        handles = list(imc.handles())
        assert all(isinstance(h, OsonDocument) for h in handles)
        assert [json_value(h, "$.num") for h in handles] == list(range(10))

    def test_modes_agree_on_query_results(self):
        text = collection(TEXT_MODE)
        oson = collection(OSON_IMC_MODE)
        for path in ("$.str1", "$.num", "$.nested.v", "$.missing"):
            assert ([json_value(h, path) for h in text.handles()]
                    == [json_value(h, path) for h in oson.handles()])

    def test_vc_mode_vectors(self):
        imc = collection(VC_IMC_MODE, vc_paths=("$.num", "$.str1"))
        assert imc.has_vector("$.num")
        assert imc.vector("$.num").to_list() == list(range(10))
        assert imc.vector("$.str1").to_list() == [f"s{i}" for i in range(10)]

    def test_vc_vector_matches_operator_extraction(self):
        imc = collection(VC_IMC_MODE, vc_paths=("$.nested.v",))
        expected = [json_value(t, "$.nested.v") for t in TEXTS]
        assert imc.vector("$.nested.v").to_list() == expected

    def test_vc_unpopulated_path_rejected(self):
        imc = collection(VC_IMC_MODE, vc_paths=("$.num",))
        with pytest.raises(EngineError):
            imc.vector("$.str1")

    def test_vc_paths_only_in_vc_mode(self):
        with pytest.raises(EngineError):
            JsonColumnIMC(TEXT_MODE, vc_paths=("$.x",))

    def test_unknown_mode_rejected(self):
        with pytest.raises(EngineError):
            JsonColumnIMC("warp-speed")

    def test_unpopulated_access_rejected(self):
        imc = JsonColumnIMC(OSON_IMC_MODE)
        imc.load_texts(TEXTS)
        with pytest.raises(EngineError):
            list(imc.handles())

    def test_document_at(self):
        imc = collection(OSON_IMC_MODE)
        assert json_value(imc.document_at(3), "$.num") == 3

    def test_selection_to_indexes(self):
        imc = collection(VC_IMC_MODE, vc_paths=("$.num",))
        from repro.imc import kernels
        mask = kernels.compare(imc.vector("$.num"), ">=", 8)
        assert imc.selection_to_indexes(mask) == [8, 9]

    def test_memory_accounting(self):
        text = collection(TEXT_MODE)
        oson = collection(OSON_IMC_MODE)
        vc = collection(VC_IMC_MODE, vc_paths=("$.num",))
        assert text.memory_bytes() > 0
        assert oson.memory_bytes() > 0
        assert vc.memory_bytes() > oson.memory_bytes()  # vectors add memory

    def test_len(self):
        assert len(collection(TEXT_MODE)) == 10
