"""Tests for numpy-backed column vectors."""

import numpy as np
import pytest

from repro.errors import EngineError
from repro.imc.columns import BOOL, NUMERIC, STRING, ColumnVector


class TestInference:
    def test_numeric(self):
        v = ColumnVector.from_values("n", [1, 2.5, None, 3])
        assert v.kind == NUMERIC
        assert v.values.dtype == np.float64
        assert list(v.valid) == [True, True, False, True]

    def test_string(self):
        v = ColumnVector.from_values("s", ["a", None, "bc"])
        assert v.kind == STRING

    def test_bool(self):
        v = ColumnVector.from_values("b", [True, False, None])
        assert v.kind == BOOL

    def test_mixed_degrades_to_string(self):
        """JSON's dynamically typed fields: mixed column becomes STRING,
        matching the DataGuide's generalization."""
        v = ColumnVector.from_values("d", [1, "x", None])
        assert v.kind == STRING

    def test_all_null(self):
        v = ColumnVector.from_values("z", [None, None])
        assert not v.valid.any()

    def test_unsupported_type(self):
        with pytest.raises(EngineError):
            ColumnVector.from_values("bad", [object()])


class TestReads:
    def test_value_at_with_nulls(self):
        v = ColumnVector.from_values("n", [1, None, 2.5])
        assert v.value_at(0) == 1
        assert v.value_at(1) is None
        assert v.value_at(2) == 2.5

    def test_ints_come_back_as_ints(self):
        v = ColumnVector.from_values("n", [7])
        assert v.value_at(0) == 7
        assert isinstance(v.value_at(0), int)

    def test_to_list_roundtrip(self):
        values = [1, None, 3.5, 2]
        assert ColumnVector.from_values("n", values).to_list() == values

    def test_bool_roundtrip(self):
        values = [True, None, False]
        assert ColumnVector.from_values("b", values).to_list() == values

    def test_string_roundtrip(self):
        values = ["a", None, "long string here"]
        assert ColumnVector.from_values("s", values).to_list() == values

    def test_memory_bytes(self):
        v = ColumnVector.from_values("n", list(range(100)))
        assert v.memory_bytes() >= 100 * 8

    def test_len(self):
        assert len(ColumnVector.from_values("n", [1, 2, 3])) == 3
