"""Tests for the IMC store (columnar population of table columns)."""

import pytest

from repro.engine import Column, NUMBER, Table, VARCHAR2, expr
from repro.errors import CatalogError
from repro.imc import IMCStore


def table_with_vc():
    t = Table("emp", [Column("id", NUMBER), Column("name", VARCHAR2(10))])
    t.add_column(Column("name_len", NUMBER,
                        expression=expr.LENGTH(expr.Col("name"))))
    t.insert_many([{"id": 1, "name": "ann"}, {"id": 2, "name": "bobby"},
                   {"id": 3, "name": None}])
    return t


class TestPopulate:
    def test_populate_all_columns(self):
        store = IMCStore()
        vectors = store.populate(table_with_vc())
        assert {v.name for v in vectors} == {"id", "name", "name_len"}

    def test_stored_column_values(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id"])
        assert store.column("emp", "id").to_list() == [1, 2, 3]

    def test_virtual_column_evaluated_at_population(self):
        """Section 5.2.1: JSON_VALUE-style virtual columns become columnar
        vectors, the extraction cost paid once."""
        store = IMCStore()
        store.populate(table_with_vc(), ["name_len"])
        assert store.column("emp", "name_len").to_list() == [3, 5, None]

    def test_unknown_column_rejected(self):
        store = IMCStore()
        with pytest.raises(CatalogError):
            store.populate(table_with_vc(), ["nope"])

    def test_unpopulated_lookup_rejected(self):
        store = IMCStore()
        with pytest.raises(CatalogError):
            store.column("emp", "id")

    def test_is_populated(self):
        store = IMCStore()
        t = table_with_vc()
        assert not store.is_populated("emp", "id")
        store.populate(t, ["id"])
        assert store.is_populated("emp", "id")

    def test_evict(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id", "name"])
        store.evict("emp", "id")
        assert not store.is_populated("emp", "id")
        assert store.is_populated("emp", "name")
        store.evict("emp")
        assert not store.is_populated("emp", "name")

    def test_memory_accounting(self):
        store = IMCStore()
        assert store.memory_bytes() == 0
        store.populate(table_with_vc(), ["id"])
        assert store.memory_bytes() > 0
