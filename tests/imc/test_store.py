"""Tests for the IMC store (columnar population of table columns)."""

import threading

import pytest

from repro.engine import Column, NUMBER, Table, VARCHAR2, expr
from repro.errors import CatalogError
from repro.imc import IMCStore
from repro.obs import metrics as obs_metrics


def table_with_vc():
    t = Table("emp", [Column("id", NUMBER), Column("name", VARCHAR2(10))])
    t.add_column(Column("name_len", NUMBER,
                        expression=expr.LENGTH(expr.Col("name"))))
    t.insert_many([{"id": 1, "name": "ann"}, {"id": 2, "name": "bobby"},
                   {"id": 3, "name": None}])
    return t


class TestPopulate:
    def test_populate_all_columns(self):
        store = IMCStore()
        vectors = store.populate(table_with_vc())
        assert {v.name for v in vectors} == {"id", "name", "name_len"}

    def test_stored_column_values(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id"])
        assert store.column("emp", "id").to_list() == [1, 2, 3]

    def test_virtual_column_evaluated_at_population(self):
        """Section 5.2.1: JSON_VALUE-style virtual columns become columnar
        vectors, the extraction cost paid once."""
        store = IMCStore()
        store.populate(table_with_vc(), ["name_len"])
        assert store.column("emp", "name_len").to_list() == [3, 5, None]

    def test_unknown_column_rejected(self):
        store = IMCStore()
        with pytest.raises(CatalogError):
            store.populate(table_with_vc(), ["nope"])

    def test_unpopulated_lookup_rejected(self):
        store = IMCStore()
        with pytest.raises(CatalogError):
            store.column("emp", "id")

    def test_is_populated(self):
        store = IMCStore()
        t = table_with_vc()
        assert not store.is_populated("emp", "id")
        store.populate(t, ["id"])
        assert store.is_populated("emp", "id")

    def test_evict(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id", "name"])
        store.evict("emp", "id")
        assert not store.is_populated("emp", "id")
        assert store.is_populated("emp", "name")
        store.evict("emp")
        assert not store.is_populated("emp", "name")

    def test_memory_accounting(self):
        store = IMCStore()
        assert store.memory_bytes() == 0
        store.populate(table_with_vc(), ["id"])
        assert store.memory_bytes() > 0


def row_mode_column(table, name):
    """What row-at-a-time evaluation serves for one column right now."""
    column = table.column(name)
    if column.expression is not None:
        return [column.expression.evaluate(r) for r in table.raw_rows()]
    return [r.get(name) for r in table.raw_rows()]


class TestCoherence:
    """The stale-read bugfix: populated vectors must track DML — a
    columnar answer is always byte-identical to row mode."""

    def test_insert_after_populate_is_visible(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id", "name_len"])
        t.insert({"id": 4, "name": "dee"})
        assert store.column("emp", "id").to_list() == [1, 2, 3, 4]
        assert store.column("emp", "name_len").to_list() == [3, 5, None, 3]

    def test_update_after_populate_is_visible(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["name_len"])
        t.update(lambda r: r["id"] == 2, {"name": "bo"})
        assert (store.column("emp", "name_len").to_list()
                == row_mode_column(t, "name_len"))

    def test_delete_after_populate_is_visible(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id"])
        t.delete(lambda r: r["id"] == 2)
        assert store.column("emp", "id").to_list() == [1, 3]

    def test_mixed_dml_matches_row_mode(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t)
        t.insert({"id": 4, "name": "dee"})
        t.update(lambda r: r["id"] == 1, {"name": "a"})
        t.delete(lambda r: r["id"] == 3)
        t.insert({"id": 5, "name": None})
        for name in t.column_names:
            assert (store.column("emp", name).to_list()
                    == row_mode_column(t, name)), name

    def test_scan_rows_absorbs_delta(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id"])
        t.insert({"id": 9, "name": "zz"})
        rows = store.scan_rows(t, ["id", "name_len"])
        assert rows[-1] == {"id": 9, "name_len": 2}
        assert all(set(r) == {"id", "name_len"} for r in rows)


class TestDuplicateColumns:
    """The duplicate-name bugfix: populate dedupes, keeping order."""

    def test_populate_dedupes_preserving_order(self):
        store = IMCStore()
        vectors = store.populate(table_with_vc(),
                                 ["name_len", "id", "name_len", "id"])
        assert [v.name for v in vectors] == ["name_len", "id"]

    def test_scan_rows_dedupes(self):
        store = IMCStore()
        rows = store.scan_rows(table_with_vc(), ["id", "id"])
        assert rows[0] == {"id": 1}


class TestResidentGauge:
    """The gauge bugfix: ``imc.resident_bytes`` tracks
    :meth:`memory_bytes` exactly through every transition."""

    def gauge(self):
        return obs_metrics.gauge("imc.resident_bytes").value

    def test_gauge_exact_through_transitions(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t, ["id", "name"])
        assert self.gauge() == store.memory_bytes()
        store.evict("emp", "id")
        assert self.gauge() == store.memory_bytes()
        store.populate(t, ["id", "id", "name_len"])
        assert self.gauge() == store.memory_bytes()
        store.evict("emp")
        assert self.gauge() == store.memory_bytes() == 0


class TestConcurrency:
    """The unguarded-state bugfix: populate/evict/read from many
    threads never corrupts the cache or crashes."""

    def test_populate_evict_read_hammer(self):
        store = IMCStore()
        t = table_with_vc()
        store.populate(t)
        errors = []
        start = threading.Barrier(8)

        def worker(slot):
            try:
                start.wait()
                for i in range(60):
                    turn = (slot + i) % 4
                    if turn == 0:
                        store.populate(t, ["id", "name_len"])
                    elif turn == 1:
                        store.evict("emp", "name_len")
                    elif turn == 2:
                        try:
                            values = store.column("emp", "id").to_list()
                            assert values == [1, 2, 3]
                        except CatalogError:
                            pass  # legitimately evicted by a peer
                    else:
                        assert store.memory_bytes() >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        store.populate(t, ["id"])
        assert store.column("emp", "id").to_list() == [1, 2, 3]
        assert (obs_metrics.gauge("imc.resident_bytes").value
                == store.memory_bytes())
