"""Tests for the vectorized predicate/aggregate kernels."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.imc import kernels
from repro.imc.columns import ColumnVector

NUMS = ColumnVector.from_values("n", [10, 25, None, 40, 25])
STRS = ColumnVector.from_values("s", ["apple", "banana", None, "apricot"])
BOOLS = ColumnVector.from_values("b", [True, False, None, True])


class TestCompare:
    def test_numeric_ops(self):
        assert list(kernels.compare(NUMS, "=", 25)) == [False, True, False,
                                                        False, True]
        assert list(kernels.compare(NUMS, ">", 20)) == [False, True, False,
                                                        True, True]
        assert list(kernels.compare(NUMS, "<=", 10)) == [True, False, False,
                                                         False, False]
        assert list(kernels.compare(NUMS, "<>", 25)) == [True, False, False,
                                                         True, False]

    def test_nulls_never_match(self):
        for op in ("=", "<>", "<", ">", "<=", ">="):
            assert not kernels.compare(NUMS, op, 25)[2]

    def test_null_literal_matches_nothing(self):
        assert not kernels.compare(NUMS, "=", None).any()

    def test_string_compare(self):
        assert list(kernels.compare(STRS, "=", "banana")) == [False, True,
                                                              False, False]

    def test_cross_type_matches_nothing(self):
        assert not kernels.compare(NUMS, "=", "10").any()
        assert not kernels.compare(STRS, ">", 5).any()
        assert not kernels.compare(NUMS, "=", True).any()

    def test_bool_compare(self):
        assert list(kernels.compare(BOOLS, "=", True)) == [True, False,
                                                           False, True]

    def test_unknown_op(self):
        with pytest.raises(QueryError):
            kernels.compare(NUMS, "LIKE", 1)

    def test_between(self):
        assert list(kernels.between(NUMS, 20, 40)) == [False, True, False,
                                                       False, True]

    def test_isin(self):
        assert list(kernels.isin(NUMS, [10, 40])) == [True, False, False,
                                                      True, False]

    def test_starts_with(self):
        assert list(kernels.starts_with(STRS, "ap")) == [True, False, False,
                                                         True]
        assert not kernels.starts_with(NUMS, "x").any()

    def test_not_null(self):
        assert list(kernels.not_null(NUMS)) == [True, True, False, True, True]


class TestAggregates:
    def test_count_skips_nulls(self):
        assert kernels.agg_count(NUMS) == 4

    def test_count_with_selection(self):
        selection = kernels.compare(NUMS, ">", 20)
        assert kernels.agg_count(NUMS, selection) == 3

    def test_sum_min_max_avg(self):
        assert kernels.agg_sum(NUMS) == 100
        assert kernels.agg_min(NUMS) == 10
        assert kernels.agg_max(NUMS) == 40
        assert kernels.agg_avg(NUMS) == 25

    def test_aggregates_over_empty_selection(self):
        empty = np.zeros(len(NUMS), dtype=np.bool_)
        assert kernels.agg_sum(NUMS, empty) is None
        assert kernels.agg_min(NUMS, empty) is None
        assert kernels.agg_avg(NUMS, empty) is None
        assert kernels.agg_count(NUMS, empty) == 0

    def test_sum_requires_numeric(self):
        with pytest.raises(QueryError):
            kernels.agg_sum(STRS)

    def test_min_max_on_strings(self):
        assert kernels.agg_min(STRS) == "apple"
        assert kernels.agg_max(STRS) == "banana"


class TestGroupBy:
    KEYS = ColumnVector.from_values("k", ["a", "b", "a", None, "b"])
    VALS = ColumnVector.from_values("v", [1, 2, 3, 4, None])

    def test_group_by_sum(self):
        assert kernels.group_by_sum(self.KEYS, self.VALS) == {"a": 4, "b": 2}

    def test_group_by_count(self):
        assert kernels.group_by_count(self.KEYS) == {"a": 2, "b": 2}

    def test_group_by_with_selection(self):
        selection = kernels.compare(self.VALS, ">", 1)
        assert kernels.group_by_sum(self.KEYS, self.VALS,
                                    selection) == {"a": 3, "b": 2}

    def test_group_by_sum_requires_numeric(self):
        with pytest.raises(QueryError):
            kernels.group_by_sum(self.KEYS, STRS)

    def test_results_match_row_at_a_time(self):
        import random
        rng = random.Random(5)
        keys = [rng.choice("abcd") for _ in range(200)]
        vals = [rng.randint(0, 100) for _ in range(200)]
        kv = ColumnVector.from_values("k", keys)
        vv = ColumnVector.from_values("v", vals)
        expected: dict = {}
        for k, v in zip(keys, vals):
            expected[k] = expected.get(k, 0) + v
        assert kernels.group_by_sum(kv, vv) == expected
