"""Persistent IMC: cold start from durable column segments.

The tentpole contract: a table whose columns were populated and then
lifted into column segments by checkpoint/compact is served **from the
segments** on reopen — no full-table extraction scan (the
``imc.populate`` span is absent), ``imc.columns_read`` counts exactly
the projected columns, and any damaged segment degrades to
rebuild-from-OSON with a quarantine diagnostic, never an error.  The
hypothesis differential pins the scan equivalences: persisted-segment
scan ≡ fresh populate ≡ row mode, including the merged base+delta
read after post-reopen DML.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, NUMBER, Query, VARCHAR2, expr
from repro.engine.table import DurableTable
from repro.imc import IMCStore
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.storage import CollectionStore

COLUMNS = ["id", "name", "name_len"]


def make_table(store):
    t = DurableTable("emp", [Column("id", NUMBER),
                             Column("name", VARCHAR2(64))], store)
    t.add_column(Column("name_len", NUMBER,
                        expression=expr.LENGTH(expr.Col("name"))))
    return t


def seed_store(directory, rows):
    """Create, fill, populate, checkpoint (cutting segments), close."""
    store = CollectionStore.create(str(directory))
    table = make_table(store)
    for row in rows:
        table.insert(dict(row))
    imc = IMCStore()
    imc.populate(table, COLUMNS)
    store.checkpoint()
    store.close()


def reopen(directory):
    store = CollectionStore.open(str(directory))
    table = make_table(store)
    imc = IMCStore()
    imc.bind(table)
    return store, table, imc


ROWS = [{"id": 1, "name": "ann"}, {"id": 2, "name": "bobby"},
        {"id": 3, "name": None}, {"id": 4, "name": "dee"}]


def span_names(spans):
    out = []
    for s in spans:
        out.append(s.name)
        out.extend(span_names(s.children))
    return out


class TestColdStart:
    def test_segments_pinned_by_checkpoint(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store = CollectionStore.open(str(tmp_path))
        pinned = {(e["table"], e["column"]) for e in store.imc_segments()}
        assert pinned == {("emp", c) for c in COLUMNS}
        store.close()

    def test_populate_serves_segments_without_rescan(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store, table, imc = reopen(tmp_path)
        before = obs_metrics.snapshot_metrics()
        previous = obs_trace.set_tracing_enabled(True)
        obs_trace.take_spans()
        try:
            imc.populate(table, COLUMNS)
            spans = span_names(obs_trace.take_spans())
        finally:
            obs_trace.set_tracing_enabled(previous)
        deltas = obs_metrics.metric_deltas(before,
                                           obs_metrics.snapshot_metrics())
        assert "imc.segment_load" in spans
        assert "imc.populate" not in spans  # zero extraction scans
        assert deltas.get("imc.segment_loads") == len(COLUMNS)
        assert "imc.populates" not in deltas
        assert imc.segment_quarantines() == []
        store.close()

    def test_cold_values_match_row_mode(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store, table, imc = reopen(tmp_path)
        imc.populate(table, COLUMNS)
        for name in COLUMNS:
            column = table.column(name)
            if column.expression is not None:
                expected = [column.expression.evaluate(r)
                            for r in table.raw_rows()]
            else:
                expected = [r.get(name) for r in table.raw_rows()]
            assert imc.column("emp", name).to_list() == expected, name
        store.close()

    def test_query_cold_start_projects_only_named_columns(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store, table, imc = reopen(tmp_path)
        q = Query(table).select("id", "name_len")
        text = q.explain(analyze=True)
        assert "IMC SCAN emp [columns=id, name_len]" in text
        assert "metric imc.columns_read: 2" in text
        assert "metric imc.segment_loads: 2" in text
        assert "metric imc.populates" not in text
        store.close()


class TestDegradation:
    def corrupt_one_segment(self, tmp_path, column):
        store = CollectionStore.open(str(tmp_path))
        entry = [e for e in store.imc_segments()
                 if e["column"] == column][0]
        store.close()
        path = tmp_path / entry["name"]
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        return entry["name"]

    def test_corrupt_segment_degrades_with_quarantine(self, tmp_path):
        seed_store(tmp_path, ROWS)
        name = self.corrupt_one_segment(tmp_path, "name_len")
        store, table, imc = reopen(tmp_path)
        imc.populate(table, COLUMNS)
        # the answer is still exact (rebuilt from OSON)...
        assert imc.column("emp", "name_len").to_list() == [3, 5, None, 3]
        # ...and the degraded read is accounted for
        quarantines = imc.segment_quarantines()
        assert [q.name for q in quarantines] == [name]
        assert quarantines[0].column == "name_len"
        # the intact segments still serve
        assert imc.column("emp", "id").to_list() == [1, 2, 3, 4]
        store.close()

    def test_missing_segment_degrades(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store = CollectionStore.open(str(tmp_path))
        victim = store.imc_segments()[0]["name"]
        store.close()
        (tmp_path / victim).unlink()
        store, table, imc = reopen(tmp_path)
        imc.populate(table, COLUMNS)
        assert imc.column("emp", "id").to_list() == [1, 2, 3, 4]
        assert len(imc.segment_quarantines()) == 1
        store.close()


class TestRestartStability:
    def test_double_restart_identical(self, tmp_path):
        seed_store(tmp_path, ROWS)
        results = []
        for _ in range(2):
            store, table, imc = reopen(tmp_path)
            imc.populate(table, COLUMNS)
            results.append({name: imc.column("emp", name).to_list()
                            for name in COLUMNS})
            entries = [dict(e) for e in store.imc_segments()]
            results.append(entries)
            store.close()
        assert results[0] == results[2]
        assert results[1] == results[3]

    def test_dml_then_checkpoint_refreshes_segments(self, tmp_path):
        seed_store(tmp_path, ROWS)
        store, table, imc = reopen(tmp_path)
        imc.populate(table, COLUMNS)
        table.insert({"id": 5, "name": "eve"})
        table.update(lambda r: r["id"] == 1, {"name": "a"})
        table.delete(lambda r: r["id"] == 2)
        store.checkpoint()  # lifts the refreshed columnar form
        store.close()
        store, table, imc = reopen(tmp_path)
        rows = imc.scan_rows(table, ["id", "name_len"])
        assert sorted((r["id"], r["name_len"]) for r in rows) == [
            (1, 1), (3, None), (4, 3), (5, 3)]
        assert imc.segment_quarantines() == []
        store.close()


NAMES = st.one_of(st.none(), st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs",)),
    max_size=8))
ROW_SETS = st.lists(
    st.fixed_dictionaries({"id": st.integers(-1000, 1000), "name": NAMES}),
    min_size=0, max_size=12)
DML = st.lists(st.tuples(st.sampled_from(["insert", "update", "delete"]),
                         st.integers(-1000, 1000), NAMES), max_size=4)


class TestDifferential:
    """persisted-segment scan ≡ fresh populate ≡ row mode."""

    @settings(max_examples=20, deadline=None)
    @given(rows=ROW_SETS, dml=DML)
    def test_three_way_equivalence(self, tmp_path_factory, rows, dml):
        directory = tmp_path_factory.mktemp("imcdiff")
        seed_store(directory, rows)
        store, table, imc = reopen(directory)
        # post-reopen DML: the merged base+delta read path
        for op, key, name in dml:
            if op == "insert":
                table.insert({"id": key, "name": name})
            elif op == "update":
                table.update(lambda r: r["id"] == key, {"name": name})
            else:
                table.delete(lambda r: r["id"] == key)
        persisted = imc.scan_rows(table, COLUMNS)
        fresh = IMCStore()
        fresh.populate(table, COLUMNS)
        fresh_scan = fresh.scan_rows(table, COLUMNS)
        row_mode = [{name: row[name] for name in COLUMNS}
                    for row in table.scan()]
        assert persisted == fresh_scan == row_mode
        store.close()
