"""Tests for the durable column-segment codec (:mod:`repro.imc.segments`)."""

import pytest

from repro.analysis.diagnostics import Severity
from repro.errors import StorageError
from repro.imc.segments import (
    SegmentQuarantine,
    decode_column_segment,
    encodable_values,
    encode_column_segment,
    imc_segment_name,
    parse_imc_segment_name,
    segment_entry,
    valid_entries,
    verify_column_segment,
)


class TestNames:
    def test_round_trip(self):
        assert imc_segment_name(7) == "imc-00000007.col"
        assert parse_imc_segment_name("imc-00000007.col") == 7

    @pytest.mark.parametrize("name", [
        "imc-0000000a.col", "imc-.col", "log-00000001.col",
        "imc-00000001.log", "manifest.json"])
    def test_rejects_non_segment_names(self, name):
        assert parse_imc_segment_name(name) is None


class TestEncodable:
    def test_json_scalars_are_encodable(self):
        assert encodable_values([1, 2.5, None])
        assert encodable_values(["x", None, "y"])
        assert encodable_values([True, None, False])

    def test_big_ints_are_not(self):
        assert not encodable_values([1, 2 ** 60])

    def test_non_json_scalars_are_not(self):
        assert not encodable_values([b"raw"])
        assert not encodable_values([{"nested": 1}])

    def test_mixed_kinds_are_not(self):
        # a string frame would coerce 1 -> "1": not an exact round-trip
        assert not encodable_values([1, "x"])
        assert not encodable_values([True, 1])
        assert not encodable_values(["x", False])


def round_trip(values, doc_ids=None):
    ids = list(range(len(values))) if doc_ids is None else doc_ids
    data = encode_column_segment("t", "c", ids, values)
    segment = decode_column_segment(data)
    assert segment.table == "t" and segment.column == "c"
    assert segment.doc_ids == list(ids)
    return segment.values


class TestRoundTrip:
    def test_numeric_preserves_int_vs_float(self):
        values = [1, 2.0, -3, 0.5, None]
        out = round_trip(values)
        assert out == values
        assert [type(v) for v in out] == [type(v) for v in values]

    def test_bool(self):
        assert round_trip([True, False, None]) == [True, False, None]

    def test_string_with_nulls_and_unicode(self):
        values = ["ann", "", None, "péché", "x" * 500]
        assert round_trip(values) == values

    def test_mixed_kinds_rejected_at_encode(self):
        with pytest.raises(StorageError):
            encode_column_segment("t", "c", [0, 1], [1, "x"])

    def test_empty_column(self):
        assert round_trip([]) == []

    def test_exact_53_bit_boundary(self):
        values = [2 ** 53, -(2 ** 53)]
        assert round_trip(values) == values


class TestEncodeValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            encode_column_segment("t", "c", [1], [1, 2])

    def test_unsorted_doc_ids_rejected(self):
        with pytest.raises(StorageError):
            encode_column_segment("t", "c", [2, 1], ["a", "b"])

    def test_unencodable_values_rejected(self):
        with pytest.raises(StorageError):
            encode_column_segment("t", "c", [1], [2 ** 60])


class TestDecodeRejectsDamage:
    def good(self):
        return encode_column_segment("emp", "id", [1, 2, 3], [10, 20, 30])

    def test_bit_flip_anywhere_detected(self):
        data = self.good()
        for offset in range(0, len(data), 7):
            corrupted = bytearray(data)
            corrupted[offset] ^= 0x40
            with pytest.raises(StorageError):
                decode_column_segment(bytes(corrupted))

    def test_truncation_detected(self):
        data = self.good()
        for cut in (1, 13, len(data) // 2, len(data) - 1):
            with pytest.raises(StorageError):
                decode_column_segment(data[:cut])

    def test_trailing_garbage_detected(self):
        with pytest.raises(StorageError):
            decode_column_segment(self.good() + b"\x00" * 8)

    def test_empty_input_detected(self):
        with pytest.raises(StorageError):
            decode_column_segment(b"")


class TestVerify:
    def test_clean_segment_no_findings(self):
        data = encode_column_segment("emp", "id", [1], [7])
        assert verify_column_segment(data) == []

    def test_damage_is_warning_never_fatal(self):
        data = bytearray(encode_column_segment("emp", "id", [1, 2], [7, 8]))
        data[len(data) // 2] ^= 0xFF
        findings = verify_column_segment(bytes(data), path="imc-1.col")
        assert findings
        assert all(f.severity is Severity.WARNING for f in findings)
        assert any(f.rule == "storage.fsck.imc-corrupt" for f in findings)

    def test_garbage_never_raises(self):
        assert verify_column_segment(b"not a segment at all")


class TestManifestEntries:
    def test_entry_shape(self):
        entry = segment_entry("imc-00000001.col", 64, "emp", "id", 3)
        assert valid_entries([entry]) == [entry]

    def test_malformed_rows_degrade_to_absent(self):
        good = segment_entry("imc-00000001.col", 64, "emp", "id", 3)
        assert valid_entries([good, {"name": 1}, "junk", None]) == [good]
        assert valid_entries("not a list") == []
        assert valid_entries(None) == []


class TestQuarantine:
    def test_render(self):
        q = SegmentQuarantine("imc-00000001.col", "emp", "id", "torn")
        assert "emp.id" in q.render() and "torn" in q.render()
