"""CollectionStore lifecycle: DML, checkpoint, compaction, reopen."""

import posixpath
from decimal import Decimal

import pytest

from repro.errors import StorageError
from repro.storage import CollectionStore, MemoryFileSystem
from repro.storage.manifest import MANIFEST_NAME, structural_signature


@pytest.fixture
def fs():
    return MemoryFileSystem()


DOCS = [
    {"po": {"id": 1, "items": [{"sku": "A"}], "total": Decimal("10.50")}},
    {"po": {"id": 2, "rush": True}},
    {"event": {"tags": ["x", "y"], "level": 3}},
]


class TestLifecycle:
    def test_insert_get_roundtrip(self, fs):
        store = CollectionStore.create("db", fs=fs)
        ids = store.insert_many(DOCS)
        assert ids == [0, 1, 2]
        assert len(store) == 3
        for doc_id, doc in zip(ids, DOCS):
            assert doc_id in store
            assert store.get(doc_id) == doc
        store.close()

    def test_create_refuses_existing_store(self, fs):
        CollectionStore.create("db", fs=fs).close()
        with pytest.raises(StorageError):
            CollectionStore.create("db", fs=fs)

    def test_create_refuses_logs_without_manifest(self, fs):
        """A directory with log files but no manifest is a
        crash-degraded store recovery can still read — create must not
        truncate it."""
        store = CollectionStore.create("db", fs=fs)
        doc_id = store.insert(DOCS[0])
        store.close()
        fs.remove(posixpath.join("db", MANIFEST_NAME))
        with pytest.raises(StorageError):
            CollectionStore.create("db", fs=fs)
        # open_or_create routes to recovery instead
        again = CollectionStore.open_or_create("db", fs=fs)
        assert again.get(doc_id) == DOCS[0]
        again.close()

    def test_open_missing_directory_raises(self, fs):
        with pytest.raises(StorageError):
            CollectionStore.open("nowhere", fs=fs)

    def test_open_or_create_then_reopen(self, fs):
        store = CollectionStore.open_or_create("db", fs=fs)
        doc_id = store.insert(DOCS[0])
        store.close()
        again = CollectionStore.open_or_create("db", fs=fs)
        assert again.get(doc_id) == DOCS[0]
        again.close()

    def test_update_and_delete(self, fs):
        with CollectionStore.create("db", fs=fs) as store:
            ids = store.insert_many(DOCS)
            store.update(ids[0], {"po": {"id": 1, "status": "done"}})
            store.delete(ids[1])
            assert store.get(ids[0]) == {"po": {"id": 1, "status": "done"}}
            assert ids[1] not in store
            assert store.doc_ids() == [ids[0], ids[2]]

    def test_update_delete_unknown_id_raise(self, fs):
        with CollectionStore.create("db", fs=fs) as store:
            with pytest.raises(StorageError):
                store.update(99, {})
            with pytest.raises(StorageError):
                store.delete(99)
            with pytest.raises(StorageError):
                store.get(99)

    def test_closed_store_refuses_dml(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.close()
        with pytest.raises(StorageError):
            store.insert({"a": 1})

    def test_doc_ids_never_reused_after_delete_and_reopen(self, fs):
        store = CollectionStore.create("db", fs=fs)
        first = store.insert(DOCS[0])
        store.delete(first)
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert again.insert(DOCS[1]) > first
        again.close()


class TestDurability:
    def test_acknowledged_insert_is_synced(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.insert(DOCS[0])
        # recovery over only the durable bytes must see the document
        survivor = CollectionStore.open("db", fs=fs.durable_state())
        assert survivor.get(0) == DOCS[0]
        survivor.close()
        store.close()

    def test_clean_reopen_reuses_wal(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.insert_many(DOCS)
        files_before = store.storage_files()
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert again.storage_files() == files_before
        assert again.recovery.clean
        again.close()

    def test_decimal_fidelity_through_restart(self, fs):
        store = CollectionStore.create("db", fs=fs)
        doc_id = store.insert(DOCS[0])
        store.close()
        again = CollectionStore.open("db", fs=fs)
        total = again.get(doc_id)["po"]["total"]
        assert total == Decimal("10.50") and isinstance(total, Decimal)
        again.close()


class TestCheckpoint:
    def test_checkpoint_seals_wal_and_rolls_sequence(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.insert_many(DOCS)
        assert store.storage_files() == ["log-00000001.log"]
        store.checkpoint()
        assert store.storage_files() == ["log-00000001.log",
                                         "log-00000002.log"]
        store.insert({"late": 1})
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert len(again) == 4
        again.close()

    def test_checkpointed_dataguide_revalidates(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.insert_many(DOCS)
        store.checkpoint()
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert again.recovery.dataguide_status == "revalidated"
        again.close()

    def test_dataguide_persists_across_restart(self, fs):
        store = CollectionStore.create("db", fs=fs)
        store.insert_many(DOCS)
        signature = structural_signature(store._builder)
        store.checkpoint()
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert structural_signature(again._builder) == signature
        paths = {e.path for e in again._builder.entries()}
        assert "$.po.items[*].sku" in paths or "$.po.items.sku" in paths
        again.close()


class TestCompaction:
    def test_compact_drops_dead_versions_and_old_files(self, fs):
        store = CollectionStore.create("db", fs=fs)
        ids = store.insert_many(DOCS)
        for _ in range(5):
            store.update(ids[0], {"po": {"id": 1, "rev": _}})
        store.delete(ids[1])
        store.checkpoint()
        reclaimed = store.compact()
        assert reclaimed > 0
        assert len(store.storage_files()) == 2  # one segment + fresh WAL
        listed = fs.listdir("db")
        assert [n for n in listed if n.endswith(".log")] == sorted(
            store.storage_files())
        assert store.doc_ids() == [ids[0], ids[2]]
        store.close()

    def test_compact_reclaims_orphans_below_horizon(self, fs):
        """An earlier compaction that crashed between publishing its
        manifest and its remove sweep leaves unreferenced logs below
        the horizon; the next compaction garbage-collects them."""
        store = CollectionStore.create("db", fs=fs)
        store.insert_many(DOCS)
        orphan = posixpath.join("db", "log-00000000.log")
        handle = fs.create(orphan)
        handle.write(b"superseded by a crashed compaction")
        handle.sync()
        handle.close()
        store.compact()
        assert not fs.exists(orphan)
        listed = [n for n in fs.listdir("db") if n.endswith(".log")]
        assert listed == sorted(store.storage_files())
        store.close()

    def test_compact_shrinks_dataguide(self, fs):
        store = CollectionStore.create("db", fs=fs)
        doc_id = store.insert({"ghost": {"gone": 1}})
        store.insert(DOCS[0])
        store.delete(doc_id)
        # additive guide still remembers the deleted shape...
        assert any(e.path.startswith("$.ghost")
                   for e in store._builder.entries())
        store.compact()
        # ...compaction is the sanctioned shrink point
        assert not any(e.path.startswith("$.ghost")
                       for e in store._builder.entries())
        store.close()

    def test_compacted_store_reopens_identically(self, fs):
        store = CollectionStore.create("db", fs=fs)
        ids = store.insert_many(DOCS)
        store.delete(ids[2])
        store.compact()
        contents = dict(store.documents())
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert dict(again.documents()) == contents
        assert again.recovery.clean
        again.close()
