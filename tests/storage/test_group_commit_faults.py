"""Crash sweep for group-commit batches (ISSUE 7 acceptance criterion).

The workload commits multi-operation batches; the sweep crashes it at
every mutating I/O boundary under three power-loss modes — ``crash``
(all pending bytes lost), ``torn`` (the active write survives
partially) and ``writeback`` (a deterministic prefix of the file's
pending bytes had already been written back by the OS, which is the
only mode that can cut a multi-frame batch *between* frames).  Oracle:

* every **acknowledged** commit survives exactly (group commit acks
  only after the batch fsync, so acknowledgement still means durable);
* of the one in-flight (unacknowledged) batch, the survivors are an
  **exact prefix** in submission order — never a subset with holes;
* a strict nonempty prefix of a multi-op batch is **reported** as a cut
  batch (``storage.recover.partial-batch``), never silently absorbed;
* the recovered store stays writable, and a second restart serves
  exactly what the first did (the cut stays inside the seal).

Seed is logged for reproduction:
``REPRO_FAULT_SEED=<n> python -m pytest tests/storage/test_group_commit_faults.py``.
"""

import os

import pytest

from repro.errors import StorageError
from repro.storage import CollectionStore
from repro.storage.faults import (CRASH, TORN, WRITEBACK,
                                  enumerate_fault_points, run_with_fault)
from repro.storage.log import parse_log_name

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260806"))
MODES = (CRASH, TORN, WRITEBACK)

DIR = "db"

BATCH_A = [
    {"po": {"id": 1, "items": [{"sku": "A", "qty": 2}]}},
    {"po": {"id": 2, "note": "n" * 30}},
    {"po": {"id": 3, "rush": True}},
    {"event": {"kind": "audit", "tags": ["x", "y"]}},
]
BATCH_B = [
    {"sensor": {"r": [1, 2, 3]}},
    {"sensor": {"r": [4], "unit": "C"}},
    {"po": {"id": 7}},
]
BATCH_C = [
    {"post": {"checkpoint": True}},
    {"post": {"n": 2}},
]
UPDATED = {"po": {"id": 2, "status": "CLOSED"}}


def workload(fs, journal):
    """Journals an ``attempt`` entry (with the deterministic doc ids the
    fresh store will assign) before every commit and an ``ack`` entry
    after it returns — the prefix oracle needs to know what was in
    flight at the crash."""
    store = CollectionStore.create(DIR, fs=fs)
    journal.append(("created",))
    next_id = 0

    def batch(docs):
        nonlocal next_id
        predicted = list(range(next_id, next_id + len(docs)))
        journal.append(("attempt-batch", predicted, docs))
        ids = store.insert_many(docs)
        assert ids == predicted
        next_id += len(docs)
        journal.append(("ack-batch", ids, docs))
        return ids

    ids_a = batch(BATCH_A)
    journal.append(("attempt-update", ids_a[1], UPDATED))
    store.update(ids_a[1], UPDATED)
    journal.append(("ack-update", ids_a[1], UPDATED))
    batch(BATCH_B)
    journal.append(("attempt-delete", ids_a[0]))
    store.delete(ids_a[0])
    journal.append(("ack-delete", ids_a[0]))
    store.checkpoint()
    journal.append(("checkpoint",))
    batch(BATCH_C)
    store.close()
    journal.append(("closed",))


def acked_documents(journal):
    docs = {}
    for entry in journal:
        if entry[0] == "ack-batch":
            for doc_id, doc in zip(entry[1], entry[2]):
                docs[doc_id] = doc
        elif entry[0] == "ack-update":
            docs[entry[1]] = entry[2]
        elif entry[0] == "ack-delete":
            docs.pop(entry[1], None)
    return docs


def in_flight(journal):
    """The single unacknowledged attempt at the crash, or None."""
    pending = None
    for entry in journal:
        kind = entry[0]
        if kind.startswith("attempt-"):
            pending = entry
        elif kind.startswith("ack-"):
            pending = None
    return pending


def check_case(case, outcome):
    context = case.describe()
    durable = outcome.durable
    expected = acked_documents(outcome.journal)
    attempt = in_flight(outcome.journal)
    try:
        store = CollectionStore.open(DIR, fs=durable)
    except StorageError:
        log_files = [n for n in (durable.listdir(DIR)
                                 if durable.exists(DIR) else [])
                     if parse_log_name(n) is not None]
        assert not outcome.journal and not log_files, (
            f"{context}: refused to open after acknowledgements")
        return
    report = store.recovery

    # these modes only lose never-synced bytes: no quarantine, no
    # acknowledged loss
    assert not report.quarantined, (
        f"{context}: quarantine from a pure power-loss mode:\n"
        + report.summary())
    for doc_id, doc in expected.items():
        if (attempt is not None and attempt[0] == "attempt-update"
                and attempt[1] == doc_id):
            # unacked update in flight: old or new value, nothing else
            assert store.get(doc_id) in (doc, attempt[2]), (
                f"{context}: doc {doc_id} is neither pre- nor "
                f"post-update image")
            continue
        if (attempt is not None and attempt[0] == "attempt-delete"
                and attempt[1] == doc_id):
            if doc_id in store:
                assert store.get(doc_id) == doc
            continue
        assert doc_id in store, f"{context}: acknowledged doc {doc_id} lost"
        assert store.get(doc_id) == doc, (
            f"{context}: acknowledged doc {doc_id} diverged")

    # survivors beyond the acknowledged set must be an exact prefix of
    # the in-flight batch
    extras = sorted(set(store.doc_ids()) - set(expected))
    if extras:
        assert attempt is not None and attempt[0] == "attempt-batch", (
            f"{context}: unexplained surviving docs {extras}")
        predicted, docs = attempt[1], attempt[2]
        k = len(extras)
        assert extras == predicted[:k], (
            f"{context}: survivors {extras} are not a prefix of the "
            f"in-flight batch {predicted}")
        for doc_id, doc in zip(extras, docs[:k]):
            assert store.get(doc_id) == doc, (
                f"{context}: in-flight survivor {doc_id} diverged")
        if 0 < k < len(predicted):
            # a strict prefix means the batch was cut mid-flight: the
            # shortfall must be reported, never silently absorbed
            assert report.cut_batches, (
                f"{context}: batch cut to {k}/{len(predicted)} with no "
                f"cut-batch report:\n" + report.summary())
            assert any(d.rule == "storage.recover.partial-batch"
                       for d in report.diagnostics)

    # recovered store stays writable...
    new_id = store.insert({"post": {"recovery": True}})
    assert store.get(new_id) == {"post": {"recovery": True}}
    served = {doc_id: store.get(doc_id) for doc_id in store.doc_ids()}
    store.close()

    # ...and a second restart serves exactly the same state: the seal
    # written during recovery keeps the cut inside it
    second = CollectionStore.open(DIR, fs=durable)
    assert {doc_id: second.get(doc_id)
            for doc_id in second.doc_ids()} == served, (
        f"{context}: state changed between first and second restart")
    second.close()


@pytest.fixture(scope="module")
def enumeration():
    print(f"\n[group-commit sweep] REPRO_FAULT_SEED={SEED}")
    return enumerate_fault_points(workload, seed=SEED, modes=MODES)


def test_workload_completes_without_faults():
    from repro.storage.faults import FaultyFileSystem
    journal = []
    workload(FaultyFileSystem(), journal)
    assert journal[-1] == ("closed",)


def test_writeback_mode_cuts_at_least_one_batch(enumeration):
    """The sweep must actually exercise the strict-prefix path: across
    all writeback cases, at least one batch survives cut (otherwise the
    cut-report assertions above are vacuous)."""
    cut_seen = 0
    for case in [c for c in enumeration.cases
                 if c.plan.mode == WRITEBACK]:
        outcome = run_with_fault(workload, case)
        if not outcome.crashed:
            continue
        try:
            store = CollectionStore.open(DIR, fs=outcome.durable)
        except StorageError:
            continue
        if store.recovery.cut_batches:
            cut_seen += 1
        store.close()
    assert cut_seen > 0, (
        "no writeback case produced a cut batch — the sweep is not "
        "covering mid-batch power loss")


@pytest.mark.parametrize("mode", list(MODES))
def test_group_commit_crash_sweep(enumeration, mode):
    cases = [c for c in enumeration.cases if c.plan.mode == mode]
    assert cases
    for case in cases:
        outcome = run_with_fault(workload, case)
        assert outcome.crashed, f"{case.describe()}: fault never fired"
        check_case(case, outcome)
