"""Runtime chaos injector: seeded decisions, fault windows, env gate.

The load-bearing property is determinism — a chaos-sweep failure must
replay from its printed seed alone — so every decision is asserted to
be a pure function of ``(seed, rule index, matched ordinal)``.
"""

import pytest

from repro.errors import StorageError, TransientFault
from repro.obs import clock as clockmod
from repro.obs import metrics
from repro.storage import chaos


@pytest.fixture
def virtual_clock():
    clock = clockmod.VirtualClock()
    previous = clockmod.install_clock(clock)
    yield clock
    clockmod.install_clock(previous)


def fire_pattern(plan, point, n=200, shard=None):
    """Which of n ops fault, as a tuple of ordinals (fresh injector)."""
    injector = chaos.ChaosInjector(plan)
    fired = []
    for i in range(n):
        try:
            injector.fault_point(point, shard=shard)
        except TransientFault:
            fired.append(i)
    return tuple(fired)


class TestChaosRule:
    def test_point_prefix_matching(self):
        rule = chaos.ChaosRule(point="shard")
        assert rule.matches("shard.read", None)
        assert rule.matches("shard.commit", 2)
        assert not rule.matches("sharding.read", None)

    def test_exact_and_wildcard(self):
        assert chaos.ChaosRule(point="shard.read").matches("shard.read", 0)
        assert not chaos.ChaosRule(point="shard.read").matches(
            "shard.scan", 0)
        assert chaos.ChaosRule(point="").matches("anything.at.all", None)

    def test_shard_restriction(self):
        rule = chaos.ChaosRule(point="shard.read", shard=1)
        assert rule.matches("shard.read", 1)
        assert not rule.matches("shard.read", 0)
        assert not rule.matches("shard.read", None)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            chaos.ChaosPlan(rules=(chaos.ChaosRule(kind="meteor"),))


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = chaos.ChaosPlan(seed=7, rules=(
            chaos.ChaosRule(point="shard.read", rate=0.2),))
        first = fire_pattern(plan, "shard.read")
        assert first  # rate 0.2 over 200 ops must fire at least once
        assert fire_pattern(plan, "shard.read") == first

    def test_different_seeds_differ(self):
        patterns = {
            fire_pattern(chaos.ChaosPlan(seed=s, rules=(
                chaos.ChaosRule(point="shard.read", rate=0.2),)),
                "shard.read")
            for s in range(5)}
        assert len(patterns) > 1

    def test_rate_zero_point_mismatch_never_fires(self):
        plan = chaos.ChaosPlan(seed=1, rules=(
            chaos.ChaosRule(point="shard.commit", rate=1.0),))
        assert fire_pattern(plan, "shard.read") == ()

    def test_faults_are_catchable_storage_errors(self):
        plan = chaos.ChaosPlan(seed=1, rules=(
            chaos.ChaosRule(point="shard.read"),))
        injector = chaos.ChaosInjector(plan)
        with pytest.raises(StorageError) as exc_info:
            injector.fault_point("shard.read", shard=3)
        assert exc_info.value.shard_index == 3
        assert exc_info.value.fault_point == "shard.read"
        assert "seed 1" in str(exc_info.value)


class TestWindows:
    def test_start_skips_warmup_ops(self):
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", rate=1.0, start=5),))
        assert fire_pattern(plan, "p", n=8) == (5, 6, 7)

    def test_limit_expires_the_rule(self):
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", rate=1.0, limit=3),))
        assert fire_pattern(plan, "p", n=10) == (0, 1, 2)

    def test_unavailability_window(self):
        """start+limit together: ops pass, then a finite outage, then
        the shard is reachable again — the recovery-drill shape."""
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", kind=chaos.UNAVAILABLE,
                            rate=1.0, start=4, limit=4),))
        assert fire_pattern(plan, "p", n=20) == (4, 5, 6, 7)

    def test_windows_are_per_shard_when_restricted(self):
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", shard=1, rate=1.0, limit=2),))
        assert fire_pattern(plan, "p", n=6, shard=0) == ()
        assert fire_pattern(plan, "p", n=6, shard=1) == (0, 1)


class TestLatency:
    def test_latency_sleeps_through_project_clock(self, virtual_clock):
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", kind=chaos.LATENCY, rate=1.0,
                            latency_ms=7.0, limit=2),))
        injector = chaos.ChaosInjector(plan)
        for _ in range(5):
            injector.fault_point("p")  # never raises
        assert virtual_clock.sleeps == [0.007, 0.007]

    def test_latency_counted_separately(self, virtual_clock):
        spikes = metrics.counter("storage.chaos.latency_spikes").value
        errors = metrics.counter("storage.chaos.io_errors").value
        total = metrics.counter("storage.chaos.faults_injected").value
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", kind=chaos.LATENCY, limit=1),
            chaos.ChaosRule(point="p", kind=chaos.IO_ERROR, limit=1,
                            start=1),))
        injector = chaos.ChaosInjector(plan)
        injector.fault_point("p")
        with pytest.raises(TransientFault):
            injector.fault_point("p")
        assert metrics.counter(
            "storage.chaos.latency_spikes").value == spikes + 1
        assert metrics.counter(
            "storage.chaos.io_errors").value == errors + 1
        assert metrics.counter(
            "storage.chaos.faults_injected").value == total + 2


class TestInstallation:
    def test_disabled_by_default_here(self):
        # the test env must not run under ambient chaos
        assert chaos.installed() is None

    def test_active_restores_previous(self):
        plan = chaos.ChaosPlan(seed=3, rules=(
            chaos.ChaosRule(point="p"),))
        with chaos.active(plan) as injector:
            assert chaos.installed() is injector
            with pytest.raises(TransientFault):
                chaos.fault_point("p")
        assert chaos.installed() is None
        chaos.fault_point("p")  # free when off

    def test_stats_report_matched_and_fired(self):
        plan = chaos.ChaosPlan(seed=0, rules=(
            chaos.ChaosRule(point="p", rate=1.0, limit=2),))
        injector = chaos.ChaosInjector(plan)
        for _ in range(5):
            try:
                injector.fault_point("p")
            except TransientFault:
                pass
        (row,) = injector.stats()
        assert row["matched"] == 5
        assert row["fired"] == 2
        assert row["kind"] == chaos.IO_ERROR


class TestEnvParsing:
    @pytest.mark.parametrize("value", [None, "", "0", "off", "FALSE",
                                       "banana", "7:2.0", "7:0"])
    def test_disabled_or_invalid(self, value):
        assert chaos.plan_from_env(value) is None

    def test_seed_only(self):
        plan = chaos.plan_from_env("42")
        assert plan is not None
        assert plan.seed == 42
        assert all(rule.rate == 0.02 for rule in plan.rules)

    def test_seed_and_rate(self):
        plan = chaos.plan_from_env("42:0.5")
        assert plan.seed == 42
        assert all(rule.rate == 0.5 for rule in plan.rules)

    def test_sprinkle_covers_every_point(self):
        plan = chaos.ChaosPlan.sprinkle(1, rate=1.0)
        kinds = {rule.kind for rule in plan.rules}
        assert kinds == {chaos.IO_ERROR, chaos.LATENCY}
        for rule in plan.rules:
            for point in chaos.POINTS:
                assert rule.matches(point, None)

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(chaos.CHAOS_ENV, "9:0.1")
        injector = chaos.install_from_env()
        try:
            assert injector is not None
            assert injector.plan.seed == 9
        finally:
            chaos.uninstall()
