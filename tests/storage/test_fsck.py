"""Offline integrity checking and its CLI surfaces.

`repro.storage.fsck` is the one verification code path shared by
``python -m repro.tools.store fsck`` and ``python -m repro.analysis
verify`` — these tests drive all three entries over the same stores,
including real on-disk ones (OsFileSystem)."""

import json
import posixpath

from repro.analysis import cli as analysis_cli
from repro.analysis.diagnostics import has_errors
from repro.storage import CollectionStore, MemoryFileSystem, fsck
from repro.storage.files import OsFileSystem
from repro.storage.fsck import is_store_file, verify_store_file
from repro.storage.framing import frame
from repro.storage.manifest import MANIFEST_NAME
from repro.tools import store as store_cli


def make_store(fs, directory="db"):
    store = CollectionStore.create(directory, fs=fs)
    store.insert_many([
        {"po": {"id": 1, "items": [{"sku": "A"}]}},
        {"po": {"id": 2}},
    ])
    store.checkpoint()
    store.insert({"event": {"kind": "x"}})
    store.close()
    return store


class TestVerifyStoreFile:
    def test_sniffs_store_files(self):
        fs = MemoryFileSystem()
        make_store(fs)
        for name in fs.listdir("db"):
            data = fs.read_bytes(posixpath.join("db", name))
            assert is_store_file(data), name
        assert not is_store_file(b"\x00\x01plainly not")

    def test_clean_files_have_no_errors(self):
        fs = MemoryFileSystem()
        make_store(fs)
        for name in fs.listdir("db"):
            data = fs.read_bytes(posixpath.join("db", name))
            diagnostics = verify_store_file(data, path=name)
            assert not has_errors(diagnostics), (name, diagnostics)

    def test_detects_bitflip_with_file_attribution(self):
        fs = MemoryFileSystem()
        make_store(fs)
        name = "log-00000001.log"
        data = bytearray(fs.read_bytes(posixpath.join("db", name)))
        data[len(data) // 2] ^= 0x20
        diagnostics = verify_store_file(bytes(data), path=name)
        assert has_errors(diagnostics)
        assert all(d.path == name for d in diagnostics)

    def test_sealed_length_flags_slack(self):
        data = frame(b"\x03" + (5).to_bytes(8, "little"))  # delete record
        padded = data + b"junk past seal"
        diagnostics = verify_store_file(padded, sealed_length=len(data))
        assert any(d.rule == "storage.fsck.sealed-slack"
                   for d in diagnostics)
        assert not has_errors(diagnostics)  # slack is a warning


class TestFsck:
    def test_clean_store(self):
        fs = MemoryFileSystem()
        make_store(fs)
        assert not has_errors(fsck(fs, "db"))

    def test_missing_referenced_segment(self):
        fs = MemoryFileSystem()
        make_store(fs)
        fs.remove(posixpath.join("db", "log-00000001.log"))
        diagnostics = fsck(fs, "db")
        assert any(d.rule == "storage.fsck.missing" for d in diagnostics)

    def test_orphan_log_above_horizon_is_warned_and_verified(self):
        fs = MemoryFileSystem()
        make_store(fs)
        handle = fs.create(posixpath.join("db", "log-00000099.log"))
        handle.write(frame(b"\x00RLOG1" + (99).to_bytes(4, "little")))
        handle.sync()
        handle.close()
        diagnostics = fsck(fs, "db")
        assert any(d.rule == "storage.fsck.orphan-log"
                   for d in diagnostics)

    def test_corrupt_manifest_reported(self):
        fs = MemoryFileSystem()
        make_store(fs)
        fs.mutate_durable(posixpath.join("db", MANIFEST_NAME),
                          lambda d: d[:8] + b"\xff" * 8 + d[16:])
        assert has_errors(fsck(fs, "db"))


class TestStoreCli:
    """python -m repro.tools.store against a real on-disk store."""

    def seed(self, tmp_path):
        directory = str(tmp_path / "db")
        make_store(OsFileSystem(), directory)
        return directory

    def test_open_prints_report(self, tmp_path, capsys):
        directory = self.seed(tmp_path)
        assert store_cli.main(["open", directory]) == 0
        out = capsys.readouterr().out
        assert "documents live: 3" in out
        assert "dataguide paths:" in out

    def test_open_json(self, tmp_path, capsys):
        directory = self.seed(tmp_path)
        assert store_cli.main(["--json", "open", directory]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["documents"] == 3
        assert payload["manifest"] == "ok"

    def test_open_non_store_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert store_cli.main(["open", str(empty)]) == 1
        assert "cannot open" in capsys.readouterr().err

    def test_fsck_clean_and_after_damage(self, tmp_path, capsys):
        directory = self.seed(tmp_path)
        assert store_cli.main(["fsck", directory]) == 0
        assert "store clean" in capsys.readouterr().out
        segment = tmp_path / "db" / "log-00000001.log"
        blob = bytearray(segment.read_bytes())
        blob[len(blob) // 2] ^= 0x08
        segment.write_bytes(bytes(blob))
        assert store_cli.main(["fsck", directory]) == 1

    def test_fsck_missing_directory_is_a_clean_error(self, tmp_path,
                                                     capsys):
        missing = str(tmp_path / "never-created")
        assert store_cli.main(["fsck", missing]) == 1
        err = capsys.readouterr().err
        assert "cannot fsck" in err
        assert "never-created" in err

    def test_fsck_is_read_only(self, tmp_path):
        directory = self.seed(tmp_path)
        before = {p.name: p.read_bytes()
                  for p in (tmp_path / "db").iterdir()}
        store_cli.main(["fsck", directory])
        after = {p.name: p.read_bytes()
                 for p in (tmp_path / "db").iterdir()}
        assert before == after

    def test_compact(self, tmp_path, capsys):
        directory = self.seed(tmp_path)
        assert store_cli.main(["compact", directory]) == 0
        assert "compacted to 3 live documents" in capsys.readouterr().out
        assert store_cli.main(["fsck", directory]) == 0


class TestAnalysisVerifyIntegration:
    """``python -m repro.analysis verify`` sniffs store files and shares
    the fsck code path (the CI satellite)."""

    def test_verify_accepts_store_directory(self, tmp_path, capsys):
        directory = str(tmp_path / "db")
        make_store(OsFileSystem(), directory)
        assert analysis_cli.main(["verify", directory]) == 0
        out = capsys.readouterr().out
        assert "store image ok" in out

    def test_verify_flags_damaged_store_file(self, tmp_path, capsys):
        directory = tmp_path / "db"
        make_store(OsFileSystem(), str(directory))
        segment = directory / "log-00000001.log"
        blob = bytearray(segment.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        segment.write_bytes(bytes(blob))
        assert analysis_cli.main(["verify", str(segment)]) == 1
        assert "storage.frame" in capsys.readouterr().out

    def test_forced_store_format(self, tmp_path, capsys):
        directory = tmp_path / "db"
        make_store(OsFileSystem(), str(directory))
        manifest = directory / "MANIFEST"
        assert analysis_cli.main(
            ["verify", "--format", "store", str(manifest)]) == 0
        capsys.readouterr()
