"""Checksummed frame scanning: roundtrips, torn tails, resync."""

import pytest

from repro.errors import StorageError
from repro.storage.framing import (FRAME_MAGIC, HEADER_SIZE, MAX_PAYLOAD,
                                   first_frame, frame, scan_frames)

PAYLOADS = [b"alpha", b"", b"b" * 300, b"\x00\xff" * 17]


def concat(payloads):
    return b"".join(frame(p) for p in payloads)


class TestRoundtrip:
    def test_single_frame(self):
        data = frame(b"hello")
        scan = scan_frames(data)
        assert [f.payload for f in scan.valid_frames] == [b"hello"]
        assert scan.consumed == len(data)
        assert not scan.torn
        assert not scan.diagnostics

    def test_many_frames_with_offsets(self):
        data = concat(PAYLOADS)
        scan = scan_frames(data)
        assert [f.payload for f in scan.frames] == PAYLOADS
        expected_offset = 0
        for found, payload in zip(scan.frames, PAYLOADS):
            assert found.offset == expected_offset
            expected_offset += HEADER_SIZE + len(payload)
        assert scan.consumed == len(data)

    def test_base_offset_shifts_reported_positions(self):
        scan = scan_frames(frame(b"x"), base_offset=1000)
        assert scan.frames[0].offset == 1000

    def test_empty_input(self):
        scan = scan_frames(b"")
        assert not scan.frames and not scan.torn and scan.consumed == 0

    def test_oversized_payload_refused_at_write_time(self):
        with pytest.raises(StorageError):
            frame(b"\x00" * (MAX_PAYLOAD + 1))


class TestTornTail:
    """A crash mid-append leaves an incomplete last frame — a WARNING
    (expected crash signature), never an ERROR."""

    def test_torn_header(self):
        data = concat(PAYLOADS) + FRAME_MAGIC[:2]
        scan = scan_frames(data)
        assert scan.torn
        assert [f.payload for f in scan.frames] == PAYLOADS
        assert scan.consumed == len(concat(PAYLOADS))
        (diag,) = scan.diagnostics
        assert diag.rule == "storage.frame.torn-header"
        assert diag.severity.name == "WARNING"

    def test_torn_payload(self):
        whole = frame(b"z" * 64)
        data = concat(PAYLOADS) + whole[:-10]
        scan = scan_frames(data)
        assert scan.torn
        assert scan.consumed == len(concat(PAYLOADS))
        (diag,) = scan.diagnostics
        assert diag.rule == "storage.frame.torn-payload"
        assert diag.severity.name == "WARNING"

    def test_every_truncation_point_is_torn_or_clean(self):
        data = concat(PAYLOADS)
        boundaries = set()
        offset = 0
        for payload in PAYLOADS:
            offset += HEADER_SIZE + len(payload)
            boundaries.add(offset)
        for cut in range(len(data) + 1):
            scan = scan_frames(data[:cut])
            if cut in boundaries or cut == 0:
                assert not scan.torn and not scan.diagnostics, cut
            else:
                assert scan.torn, cut
            # never an ERROR: truncation is always a recognizable tear
            assert all(d.severity.name == "WARNING"
                       for d in scan.diagnostics), cut


class TestSealable:
    """``sealable`` is the seal length: the whole run minus only a
    trailing torn tail.  Corrupt durable bytes stay *inside* it, so a
    seal never silently discards damaged acknowledged data."""

    def test_clean_run_is_fully_sealable(self):
        data = concat(PAYLOADS)
        assert scan_frames(data).sealable == len(data)

    def test_torn_tail_is_excluded(self):
        clean = concat(PAYLOADS)
        assert scan_frames(clean + frame(b"z" * 64)[:-10]).sealable == \
            len(clean)
        assert scan_frames(clean + FRAME_MAGIC[:2]).sealable == len(clean)

    def test_corrupt_frame_and_resynced_records_stay_inside_seal(self):
        data = bytearray(concat(PAYLOADS))
        target = (2 * HEADER_SIZE + len(PAYLOADS[0]) + len(PAYLOADS[1])
                  + HEADER_SIZE + 5)
        data[target] ^= 0x10
        scan = scan_frames(bytes(data))
        assert scan.sealable == len(data)
        # the clean prefix ends at the damage, but the seal must not
        assert scan.consumed < scan.sealable


class TestCorruption:
    def test_bitflip_in_payload_fails_crc_but_resyncs(self):
        data = bytearray(concat(PAYLOADS))
        # flip a bit inside the third frame's payload
        target = 2 * HEADER_SIZE + len(PAYLOADS[0]) + len(
            PAYLOADS[1]) + HEADER_SIZE + 5
        data[target] ^= 0x10
        scan = scan_frames(bytes(data))
        assert [f.payload for f in scan.valid_frames] == [
            PAYLOADS[0], PAYLOADS[1], PAYLOADS[3]]
        assert len(scan.corrupt_frames) == 1
        assert any(d.rule == "storage.frame.crc" for d in scan.diagnostics)
        # the clean prefix ends before the damaged frame
        assert scan.consumed == (2 * HEADER_SIZE + len(PAYLOADS[0])
                                 + len(PAYLOADS[1]))

    def test_garbage_prefix_resyncs_to_first_magic(self):
        data = b"\x01\x02\x03garbage" + concat(PAYLOADS)
        scan = scan_frames(data)
        assert [f.payload for f in scan.frames] == PAYLOADS
        assert any(d.rule == "storage.frame.resync"
                   for d in scan.diagnostics)
        assert scan.consumed == 0  # no clean prefix

    def test_bad_length_field_resyncs(self):
        first = bytearray(frame(b"damaged-length"))
        first[4:8] = (0x0FFFFFFF).to_bytes(4, "little")  # huge claim
        data = bytes(first) + concat([b"survivor"])
        scan = scan_frames(data)
        assert [f.payload for f in scan.valid_frames] == [b"survivor"]
        assert any(d.rule == "storage.frame.bad-length"
                   for d in scan.diagnostics)

    def test_implausible_length_with_no_resync_is_error(self):
        first = bytearray(frame(b"x"))
        first[4:8] = (MAX_PAYLOAD + 5).to_bytes(4, "little")
        scan = scan_frames(bytes(first[:HEADER_SIZE]))
        assert not scan.torn
        assert any(d.rule == "storage.frame.bad-length"
                   and d.severity.name == "ERROR"
                   for d in scan.diagnostics)

    def test_corrupt_frame_keeps_untrusted_payload_for_attribution(self):
        data = bytearray(frame(b"attributable"))
        data[-1] ^= 0xFF
        scan = scan_frames(bytes(data))
        (bad,) = scan.corrupt_frames
        assert bad.payload == b"attributabl" + bytes([data[-1]])


def test_first_frame_skips_corrupt_frames():
    damaged = bytearray(frame(b"bad"))
    damaged[-1] ^= 1
    data = bytes(damaged) + frame(b"good")
    assert first_frame(data) == b"good"
    assert first_frame(b"not a store file") is None
