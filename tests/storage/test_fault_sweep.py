"""The exhaustive crash-point sweep (ISSUE 2 acceptance criterion).

A recording pass discovers every write/flush/sync/replace boundary the
store protocol touches during a representative workload (inserts,
updates, deletes, two checkpoints, a compaction).  The sweep then
re-runs the workload once per (boundary × failure mode) — clean crash,
torn write, bit flip, truncation — crashes it there, and recovers from
the surviving durable bytes.  The oracle:

* the store **opens** (or, only when nothing was ever acknowledged and
  no log file survives, refuses with a clean error);
* **clean-crash and torn-write faults lose no acknowledged commit**:
  every journaled operation is reflected exactly, with an empty
  quarantine;
* **bit-flip and truncation faults** (which damage *durable* bytes, so
  acknowledged data can genuinely be destroyed) never lose data
  silently: any acknowledged document that is not intact is accounted
  for by a quarantined record or an explicit corruption diagnostic;
* the recovered DataGuide structurally equals a from-scratch rebuild
  over the surviving documents;
* the recovered store stays writable, and a **second reopen** serves
  exactly what the first recovery served (the seal written during
  recovery loses nothing and keeps re-reporting quarantined damage).

The seed is logged so CI failures are reproducible:
``REPRO_FAULT_SEED=<n> python -m pytest tests/storage/test_fault_sweep.py``.
"""

import os

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.errors import StorageError
from repro.storage import CollectionStore
from repro.storage.faults import (BITFLIP, CRASH, TORN, TRUNCATE,
                                  FaultyFileSystem, SimulatedCrash,
                                  enumerate_fault_points, run_with_fault)
from repro.storage.log import parse_log_name
from repro.storage.manifest import structural_signature

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260806"))

DIR = "db"

DOCS = [
    {"po": {"id": 1, "items": [{"sku": "A", "qty": 2}], "note": "x" * 40}},
    {"po": {"id": 2, "items": [], "rush": True}},
    {"po": {"id": 3, "total": 19.75}},
    {"event": {"kind": "audit", "tags": ["a", "b"]}},
    {"sensor": {"readings": [1, 2, 3, 4], "unit": "C"}},
    {"po": {"id": 6, "nested": {"deep": {"leaf": None}}}},
]
UPDATED = {"po": {"id": 1, "status": "CLOSED"}}


def workload(fs, journal):
    """The swept protocol exercise; appends acknowledged ops to
    ``journal`` as they are acknowledged (i.e. after fsync returns)."""
    store = CollectionStore.create(DIR, fs=fs)
    journal.append(("created",))
    for doc in DOCS[:3]:
        doc_id = store.insert(doc)
        journal.append(("insert", doc_id, doc))
    store.checkpoint()
    journal.append(("checkpoint",))
    doc_id = store.insert(DOCS[3])
    journal.append(("insert", doc_id, DOCS[3]))
    store.update(0, UPDATED)
    journal.append(("update", 0, UPDATED))
    store.delete(1)
    journal.append(("delete", 1))
    store.checkpoint()
    journal.append(("checkpoint",))
    doc_id = store.insert(DOCS[4])
    journal.append(("insert", doc_id, DOCS[4]))
    store.compact()
    journal.append(("compact",))
    doc_id = store.insert(DOCS[5])
    journal.append(("insert", doc_id, DOCS[5]))
    store.close()
    journal.append(("closed",))


def expected_documents(journal):
    docs = {}
    for entry in journal:
        if entry[0] == "insert":
            docs[entry[1]] = entry[2]
        elif entry[0] == "update":
            docs[entry[1]] = entry[2]
        elif entry[0] == "delete":
            docs.pop(entry[1], None)
    return docs


def corruption_evidence(report):
    """True when recovery explicitly surfaced damage to durable bytes."""
    if report.quarantined:
        return True
    if report.torn_tail_bytes:
        return True
    if report.manifest_status != "ok":
        return True
    interesting = ("storage.frame.", "storage.recover.",
                   "storage.manifest.")
    return any(d.rule.startswith(interesting) for d in report.diagnostics)


def check_recovered(case, outcome):
    durable = outcome.durable
    expected = expected_documents(outcome.journal)
    context = case.describe()
    try:
        store = CollectionStore.open(DIR, fs=durable)
    except StorageError:
        # only legitimate when nothing was ever acknowledged and no log
        # bytes survived to recover from
        log_files = [n for n in (durable.listdir(DIR)
                                 if durable.exists(DIR) else [])
                     if parse_log_name(n) is not None]
        assert not outcome.journal and not log_files, (
            f"{context}: store refused to open but "
            f"{len(outcome.journal)} ops were acknowledged")
        return
    report = store.recovery

    if case.plan.mode in (CRASH, TORN):
        # crash and torn-write faults only touch never-synced bytes:
        # zero loss, zero quarantine
        assert not report.quarantined, (
            f"{context}: quarantine after a pure crash fault:\n"
            + report.summary())
        for doc_id, doc in expected.items():
            assert doc_id in store, (
                f"{context}: acknowledged doc {doc_id} lost")
            assert store.get(doc_id) == doc, (
                f"{context}: acknowledged doc {doc_id} diverged")
        for doc_id in store.doc_ids():
            if doc_id not in expected:
                # durable-but-unacknowledged (crash raced the ack):
                # keeping it is allowed, corrupting it is not
                store.get(doc_id)
    else:
        # bit flips / truncation destroy durable bytes: acknowledged
        # data may be damaged but never silently dropped
        quarantined_ids = {q.doc_id for q in report.quarantined}
        for doc_id, doc in expected.items():
            intact = doc_id in store and store.get(doc_id) == doc
            if intact:
                continue
            assert corruption_evidence(report), (
                f"{context}: doc {doc_id} damaged with no quarantine or "
                f"diagnostic:\n" + report.summary())
            attributed = (doc_id in quarantined_ids
                          or None in quarantined_ids
                          or doc_id not in store)
            assert attributed or corruption_evidence(report), (
                f"{context}: doc {doc_id} unaccounted for")

    # recovered DataGuide == from-scratch rebuild over survivors
    rebuilt = DataGuideBuilder()
    for _, document in store.documents():
        rebuilt.add(document)
    assert (structural_signature(store._builder)
            == structural_signature(rebuilt)), (
        f"{context}: recovered DataGuide diverges from rebuild")

    # the store must stay writable after any recovery
    new_id = store.insert({"post": {"recovery": True}})
    assert store.get(new_id) == {"post": {"recovery": True}}
    surviving = {doc_id: store.get(doc_id) for doc_id in store.doc_ids()}
    store.close()

    # double restart: everything the first recovery served must still
    # be served by the next open — the seal written during the first
    # recovery may not silently drop records it just applied, and
    # quarantined damage must be re-reported, not forgotten
    second = CollectionStore.open(DIR, fs=durable)
    assert ({doc_id: second.get(doc_id)
             for doc_id in second.doc_ids()} == surviving), (
        f"{context}: documents changed between first and second reopen")
    if report.quarantined:
        assert second.recovery.quarantined, (
            f"{context}: quarantine vanished on the second reopen")
    second.close()


@pytest.fixture(scope="module")
def enumeration():
    print(f"\n[fault sweep] REPRO_FAULT_SEED={SEED}")
    return enumerate_fault_points(workload, seed=SEED)


class TestSweepShape:
    def test_workload_completes_without_faults(self):
        fs = FaultyFileSystem()
        journal = []
        workload(fs, journal)
        assert journal[-1] == ("closed",)

    def test_enumeration_covers_all_boundary_kinds(self, enumeration):
        kinds = {op.op for op in enumeration.ops}
        assert {"write", "flush", "sync", "create", "replace",
                "remove"} <= kinds
        assert len(enumeration.ops) > 40  # a real protocol, not a stub

    def test_each_case_actually_crashes(self, enumeration):
        case = enumeration.cases[10]
        with pytest.raises(SimulatedCrash):
            run_it = FaultyFileSystem(plan=case.plan)
            workload(run_it, [])


@pytest.mark.parametrize("mode", [CRASH, TORN, BITFLIP, TRUNCATE])
def test_crash_point_sweep(enumeration, mode):
    """Every boundary × this failure mode recovers consistently."""
    cases = [c for c in enumeration.cases if c.plan.mode == mode]
    assert cases
    for case in cases:
        outcome = run_with_fault(workload, case)
        assert outcome.crashed, f"{case.describe()}: fault never fired"
        check_recovered(case, outcome)


def test_recovery_is_itself_crash_safe(enumeration):
    """Crash the store *during recovery* at every boundary recovery
    touches, then recover again: acknowledged data still survives."""
    mid = len(enumeration.ops) // 2
    base_case = [c for c in enumeration.cases
                 if c.plan.mode == CRASH and c.op.index == mid][0]
    outcome = run_with_fault(workload, base_case)
    expected = expected_documents(outcome.journal)

    def reopen(fs, journal):
        store = CollectionStore.open(DIR, fs=fs)
        journal.append(("opened",))
        store.close()

    base_state = outcome.durable

    def reopen_from_base(fs, journal):
        # seed the faulty fs with the crashed durable state
        fs.inner._files.update(base_state.durable_state()._files)
        fs.inner._dirs.update(base_state._dirs)
        reopen(fs, journal)

    inner_enum = enumerate_fault_points(reopen_from_base, seed=SEED,
                                        modes=(CRASH,))
    assert inner_enum.ops, "recovery performed no mutating I/O to sweep"
    for case in inner_enum.cases:
        inner = run_with_fault(reopen_from_base, case)
        assert inner.crashed
        store = CollectionStore.open(DIR, fs=inner.durable)
        assert not store.recovery.quarantined
        for doc_id, doc in expected.items():
            assert doc_id in store and store.get(doc_id) == doc, (
                f"crash-during-recovery {case.describe()}: "
                f"doc {doc_id} lost")
        store.close()
