"""Targeted recovery scenarios: degraded modes the sweep reaches only
probabilistically — missing/corrupt manifest, surgical corruption of a
sealed segment, the checkpoint-in-flight window."""

import posixpath

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.errors import StorageError
from repro.storage import CollectionStore, MemoryFileSystem, recover
from repro.storage.framing import HEADER_SIZE, scan_frames
from repro.storage.manifest import MANIFEST_NAME, structural_signature

DOCS = [
    {"po": {"id": 1, "items": [{"sku": "A", "qty": 2}]}},
    {"po": {"id": 2, "note": "n" * 50}},
    {"event": {"kind": "audit"}},
]


def seeded_store():
    fs = MemoryFileSystem()
    store = CollectionStore.create("db", fs=fs)
    ids = store.insert_many(DOCS)
    store.checkpoint()
    store.update(ids[0], {"po": {"id": 1, "status": "closed"}})
    store.close()
    return fs, ids


def reopen(fs):
    return CollectionStore.open("db", fs=fs)


class TestDegradedManifest:
    def test_missing_manifest_recovers_from_logs_alone(self):
        fs, ids = seeded_store()
        fs.remove(posixpath.join("db", MANIFEST_NAME))
        store = reopen(fs)
        assert store.recovery.manifest_status == "missing"
        assert store.get(ids[0]) == {"po": {"id": 1, "status": "closed"}}
        assert len(store) == 3
        # degraded mode may not be "clean" but loses nothing
        assert not store.recovery.quarantined
        store.close()

    def test_corrupt_manifest_recovers_from_logs_alone(self):
        fs, ids = seeded_store()
        fs.mutate_durable(posixpath.join("db", MANIFEST_NAME),
                          lambda d: d[:len(d) // 2] + b"\x00" * 8)
        store = reopen(fs)
        assert store.recovery.manifest_status == "corrupt"
        assert len(store) == 3
        assert store.get(ids[0]) == {"po": {"id": 1, "status": "closed"}}
        store.close()

    def test_no_manifest_no_logs_is_not_a_store(self):
        fs = MemoryFileSystem()
        fs.ensure_dir("db")
        with pytest.raises(StorageError):
            recover(fs, "db")


class TestTornTail:
    def test_torn_wal_tail_is_truncated_not_fatal(self):
        fs, ids = seeded_store()
        wal = posixpath.join("db", "log-00000002.log")
        fs.mutate_durable(wal, lambda d: d[:-7])  # tear mid-frame
        store = reopen(fs)
        assert store.recovery.torn_tail_bytes > 0
        assert not store.recovery.quarantined
        # the torn record was the (acknowledged, then torn by us) update;
        # its pre-image from the sealed segment survives
        assert store.get(ids[0])["po"]["id"] == 1
        # and the store keeps accepting writes after the tear
        store.insert({"fresh": True})
        store.close()


class TestQuarantine:
    def test_bitflipped_sealed_record_is_quarantined(self):
        fs, ids = seeded_store()
        segment = posixpath.join("db", "log-00000001.log")

        def flip(data):
            mutated = bytearray(data)
            mutated[len(mutated) // 2] ^= 0x40
            return bytes(mutated)

        fs.mutate_durable(segment, flip)
        store = reopen(fs)
        report = store.recovery
        # one record took the hit; everything else survives
        assert report.quarantined
        quarantined = report.quarantined[0]
        assert quarantined.source == "log-00000001.log"
        assert quarantined.reason
        assert "quarantined" in quarantined.render()
        survivors = set(store.doc_ids())
        damaged = {q.doc_id for q in report.quarantined}
        assert survivors | damaged >= set(ids) - {None}
        store.close()

    def test_quarantine_never_raises_whole_file_of_garbage(self):
        fs, _ = seeded_store()
        segment = posixpath.join("db", "log-00000001.log")
        fs.mutate_durable(segment, lambda d: b"\xde\xad" * (len(d) // 2))
        store = reopen(fs)  # must not raise
        # WAL update record still applies
        assert 0 in store
        store.close()

    def test_superseded_quarantine_is_flagged(self):
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        store.insert(DOCS[0])
        store.checkpoint()
        store.update(0, {"po": {"id": 1, "v": 2}})
        store.checkpoint()
        store.update(0, {"po": {"id": 1, "v": 3}})
        store.close()
        # destroy the middle version (segment 2); versions 1 and 3 live
        segment = posixpath.join("db", "log-00000002.log")
        fs.mutate_durable(
            segment, lambda d: d[:-5] + bytes(5))
        again = reopen(fs)
        assert again.get(0) == {"po": {"id": 1, "v": 3}}
        assert any(q.superseded is False or q.superseded is True
                   for q in again.recovery.quarantined)
        again.close()


class TestSealAfterCorruption:
    def test_records_after_corrupt_frame_survive_double_restart(self):
        """Insert A, B, C (all fsynced), flip one bit in B's frame: the
        first open serves {A, C} with B quarantined, and — because the
        recovered WAL is sealed past the resynced records, not at the
        clean-prefix end — so does every open after it."""
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        ids = store.insert_many(DOCS)
        store.close()

        wal = posixpath.join("db", "log-00000001.log")
        frames = scan_frames(fs.durable_bytes(wal)).frames
        # frames: [header, batch marker, A, B, C] — insert_many is one
        # group commit now; flip a bit inside B's image bytes (past the
        # 9-byte op + doc-id prefix, so attribution survives)
        target = frames[3].offset + HEADER_SIZE + 9 + 2

        def flip(data):
            mutated = bytearray(data)
            mutated[target] ^= 0x20
            return bytes(mutated)

        fs.mutate_durable(wal, flip)

        first = reopen(fs)
        assert first.doc_ids() == [ids[0], ids[2]]
        assert {q.doc_id for q in first.recovery.quarantined} == {ids[1]}
        survivors = {d: first.get(d) for d in first.doc_ids()}
        first.close()

        second = reopen(fs)
        assert {d: second.get(d) for d in second.doc_ids()} == survivors
        # the corrupt frame stayed inside the seal: the damage is
        # re-reported, never silently forgotten
        assert {q.doc_id for q in second.recovery.quarantined} == {ids[1]}
        second.close()

        third = reopen(fs)
        assert {d: third.get(d) for d in third.doc_ids()} == survivors
        third.close()


class TestCheckpointWindow:
    def test_log_above_manifest_horizon_is_applied(self):
        """A checkpoint that crashed after creating the new WAL but
        before swapping the manifest leaves an unreferenced log above
        the horizon; recovery must apply it."""
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        store.insert(DOCS[0])
        store.close()
        manifest_bytes = fs.durable_bytes(posixpath.join(
            "db", MANIFEST_NAME))
        # now continue: checkpoint + one more committed insert...
        store = CollectionStore.open("db", fs=fs)
        store.checkpoint()
        store.insert(DOCS[1])
        store.close()
        # ...then roll the manifest back, simulating the crash window
        fs.mutate_durable(posixpath.join("db", MANIFEST_NAME),
                          lambda _: manifest_bytes)
        again = reopen(fs)
        assert len(again) == 2
        assert any(d.rule == "storage.recover.post-checkpoint-log"
                   for d in again.recovery.diagnostics)
        again.close()


class TestDataGuideRecovery:
    def test_recovered_guide_equals_from_scratch_rebuild(self):
        fs, _ = seeded_store()
        store = reopen(fs)
        rebuilt = DataGuideBuilder()
        for _, document in store.documents():
            rebuilt.add(document)
        assert (structural_signature(store._builder)
                == structural_signature(rebuilt))
        store.close()

    def test_wal_ahead_of_checkpoint_reports_rebuilt(self):
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        store.insert(DOCS[0])
        store.checkpoint()
        store.insert({"brand_new_shape": {"deep": [1]}})  # not checkpointed
        store.close()
        # discard the clean-reopen fast path by recovering durable state
        again = CollectionStore.open("db", fs=fs.durable_state())
        assert again.recovery.dataguide_status in ("rebuilt",
                                                   "revalidated")
        paths = {e.path for e in again._builder.entries()}
        assert any("brand_new_shape" in p for p in paths)
        again.close()
