"""Crash-point sweep over the IMC segment lift (the tentpole's
durability acceptance criterion).

The workload registers a columnar provider, then checkpoints (cutting
column segments + the pinning manifest swap), runs DML, checkpoints
again, and compacts (the lift with ``drop_stale=True``).  The sweep
crashes it at every write/flush/sync/create/replace/remove boundary ×
failure mode and recovers from the surviving durable bytes.  The
oracle, per the never-fatal cache contract:

* the store **opens** (segments are pure cache: no IMC state may ever
  make recovery fail);
* under clean-crash and torn-write faults — which only damage
  never-synced bytes — every **pinned** segment decodes cleanly and
  claims the table/column the manifest says (the atomic swap pins a
  segment only after its bytes are synced);
* under bit-flip and truncation faults a pinned segment may be
  damaged, but then ``fsck`` reports it (``storage.fsck.imc-*``) as a
  WARNING — degraded, diagnosed, never an error;
* a **second reopen** pins exactly the same segments with the same
  verification outcome (the degraded state is stable, not flapping).
"""

import os

import pytest

from repro.errors import StorageError
from repro.imc.segments import decode_column_segment
from repro.storage import CollectionStore, fsck
from repro.storage.faults import (BITFLIP, CRASH, TORN, TRUNCATE,
                                  FaultyFileSystem, enumerate_fault_points,
                                  run_with_fault)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260806"))

DIR = "db"

DOCS = [{"v": i, "name": f"n{i}"} for i in range(5)]


def provider_for(store):
    def provider(snapshot):
        pairs = list(snapshot.documents())
        doc_ids = [doc_id for doc_id, _ in pairs]
        return [
            ("t", "v", doc_ids, [doc.get("v") for _, doc in pairs]),
            ("t", "name", doc_ids, [doc.get("name") for _, doc in pairs]),
        ]
    return provider


def workload(fs, journal):
    store = CollectionStore.create(DIR, fs=fs)
    journal.append(("created",))
    store.set_imc_provider(provider_for(store))
    for doc in DOCS[:3]:
        doc_id = store.insert(doc)
        journal.append(("insert", doc_id))
    store.checkpoint()  # cuts segments + atomic manifest swap
    journal.append(("checkpoint",))
    doc_id = store.insert(DOCS[3])
    journal.append(("insert", doc_id))
    store.update(0, {"v": 100, "name": "updated"})
    journal.append(("update", 0))
    store.delete(1)
    journal.append(("delete", 1))
    store.checkpoint()  # re-cut over the mutated collection
    journal.append(("checkpoint",))
    doc_id = store.insert(DOCS[4])
    journal.append(("insert", doc_id))
    store.compact()  # the lift with drop_stale=True + segment GC
    journal.append(("compact",))
    store.close()
    journal.append(("closed",))


def segment_outcomes(store, fs):
    """(entry, decoded-ok) per pinned segment, via the reader path."""
    outcomes = []
    for entry in store.imc_segments():
        try:
            data = store.read_imc_segment(entry["name"])
            if len(data) < entry["length"]:
                raise StorageError("shorter than pinned length")
            segment = decode_column_segment(data[:entry["length"]])
            ok = (segment.table == entry["table"]
                  and segment.column == entry["column"])
        except (StorageError, OSError):
            ok = False
        outcomes.append((dict(entry), ok))
    return outcomes


def check_recovered(case, outcome):
    durable = outcome.durable
    context = case.describe()
    try:
        store = CollectionStore.open(DIR, fs=durable)
    except StorageError:
        assert not outcome.journal, (
            f"{context}: store refused to open after acknowledged ops")
        return

    outcomes = segment_outcomes(store, durable)
    diagnostics = fsck(durable, DIR)
    imc_findings = [d for d in diagnostics if d.rule.startswith(
        "storage.fsck.imc-")]

    if case.plan.mode in (CRASH, TORN):
        # pinned-after-sync invariant: the manifest swap happens after
        # segment bytes are durable, so pure crash faults can never
        # leave a damaged *pinned* segment
        for entry, ok in outcomes:
            assert ok, (f"{context}: pinned segment {entry['name']} "
                        f"damaged by a pure crash fault")
    else:
        # durable bytes were destroyed: damage is allowed, silent
        # damage is not
        for entry, ok in outcomes:
            if not ok:
                assert any(d.path and entry["name"] in d.path
                           or entry["name"] in d.message
                           for d in imc_findings), (
                    f"{context}: damaged segment {entry['name']} "
                    f"not reported by fsck")
    for finding in imc_findings:
        assert finding.severity.name == "WARNING", (
            f"{context}: IMC finding escalated beyond WARNING: "
            f"{finding.render()}")

    store.close()

    # double restart: same pins, same verification outcome
    second = CollectionStore.open(DIR, fs=durable)
    assert segment_outcomes(second, durable) == outcomes, (
        f"{context}: segment state changed between reopens")
    second.close()


@pytest.fixture(scope="module")
def enumeration():
    print(f"\n[imc fault sweep] REPRO_FAULT_SEED={SEED}")
    return enumerate_fault_points(workload, seed=SEED)


class TestSweepShape:
    def test_workload_completes_without_faults(self):
        fs = FaultyFileSystem()
        journal = []
        workload(fs, journal)
        assert journal[-1] == ("closed",)
        store = CollectionStore.open(DIR, fs=fs)
        pinned = {(e["table"], e["column"]) for e in store.imc_segments()}
        assert pinned == {("t", "v"), ("t", "name")}
        assert all(ok for _, ok in segment_outcomes(store, fs))
        store.close()

    def test_segment_boundaries_are_swept(self, enumeration):
        # the enumeration must actually cross the segment write path
        touched = [op for op in enumeration.ops
                   if op.path and "imc-" in op.path]
        assert touched, "no segment I/O boundaries enumerated"


@pytest.mark.parametrize("mode", [CRASH, TORN, BITFLIP, TRUNCATE])
def test_imc_crash_point_sweep(enumeration, mode):
    cases = [c for c in enumeration.cases if c.plan.mode == mode]
    assert cases
    for case in cases:
        outcome = run_with_fault(workload, case)
        assert outcome.crashed, f"{case.describe()}: fault never fired"
        check_recovered(case, outcome)
