"""ShardedStore: routing, global ids, snapshots, recovery, fsck.

The contract under test (ISSUE 8): a sharded collection behaves exactly
like a single store behind the router — same DML surface, same
recovery-report shape (``cut_batches``, quarantine), same fsck
discipline — while placement stays deterministic (stable routing hash,
update refuses to move a document's routing hash) so partition pruning
against it is sound.
"""

import os
import posixpath

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.errors import StorageError
from repro.storage import (
    CollectionStore,
    MemoryFileSystem,
    ShardedStore,
    fsck_sharded,
    is_sharded_store,
)
from repro.storage.faults import (CRASH, TORN, FaultyFileSystem,
                                  enumerate_fault_points, run_with_fault)
from repro.storage.manifest import structural_signature
from repro.storage.shard import (read_shard_marker, routing_hash,
                                 shard_dir_name, shards_path)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260806"))

DIR = "db"

DOCS = [
    {"region": "eu", "v": 1},
    {"region": "us", "v": 2},
    {"region": "ap", "v": 3},
    {"region": "eu", "v": 4},
    {"region": "us", "v": 5},
    {"region": "ap", "v": 6},
]


@pytest.fixture
def fs():
    return MemoryFileSystem()


class TestRoutingHash:
    def test_stable_across_calls(self):
        assert routing_hash("eu") == routing_hash("eu")
        assert routing_hash(42) == routing_hash(42)

    def test_integral_float_equals_int(self):
        """SQL equality says 5 == 5.0, so both must place identically."""
        assert routing_hash(5.0) == routing_hash(5)
        assert routing_hash(5.5) != routing_hash(5)

    def test_unroutable_values(self):
        for value in (None, True, False, [1], {"a": 1}):
            assert routing_hash(value) is None

    def test_strings_and_numbers_do_not_collide_by_rendering(self):
        assert routing_hash("5") != routing_hash(5)


class TestRouterLifecycle:
    def test_create_open_roundtrip(self, fs):
        store = ShardedStore.create(DIR, shards=3, fs=fs,
                                    routing_field="region")
        ids = store.insert_many(DOCS)
        assert len(ids) == len(DOCS)
        assert len(store) == len(DOCS)
        store.close()
        again = ShardedStore.open(DIR, fs=fs)
        assert again.shard_count == 3
        assert again.routing_field == "region"
        for doc_id, doc in zip(ids, DOCS):
            assert again.get(doc_id) == doc
        again.close()

    def test_marker_written_and_sniffable(self, fs):
        ShardedStore.create(DIR, shards=2, fs=fs).close()
        assert is_sharded_store(fs, DIR)
        marker = read_shard_marker(fs, DIR)
        assert marker["shards"] == 2
        assert marker["routing_field"] is None

    def test_global_ids_encode_placement(self, fs):
        store = ShardedStore.create(DIR, shards=4, fs=fs,
                                    routing_field="region")
        for doc in DOCS:
            doc_id = store.insert(doc)
            shard_index = doc_id % 4
            expected = routing_hash(doc["region"]) % 4
            assert shard_index == expected
        store.close()

    def test_round_robin_without_routing_field(self, fs):
        store = ShardedStore.create(DIR, shards=3, fs=fs)
        ids = store.insert_many([{"v": i} for i in range(9)])
        per_shard = [sum(1 for i in ids if i % 3 == s) for s in range(3)]
        assert per_shard == [3, 3, 3]
        store.close()

    def test_unroutable_value_falls_back_to_round_robin(self, fs):
        store = ShardedStore.create(DIR, shards=2, fs=fs,
                                    routing_field="region")
        ids = store.insert_many([{"region": None, "v": i}
                                 for i in range(4)])
        assert {i % 2 for i in ids} == {0, 1}
        store.close()

    def test_open_or_create_mismatches(self, fs):
        ShardedStore.create(DIR, shards=2, fs=fs,
                            routing_field="region").close()
        with pytest.raises(StorageError):
            ShardedStore.open_or_create(DIR, shards=4, fs=fs,
                                        routing_field="region")
        with pytest.raises(StorageError):
            ShardedStore.open_or_create(DIR, shards=2, fs=fs,
                                        routing_field="other")
        again = ShardedStore.open_or_create(DIR, shards=2, fs=fs,
                                            routing_field="region")
        again.close()

    def test_create_refuses_existing_stores(self, fs):
        ShardedStore.create(DIR, shards=2, fs=fs).close()
        with pytest.raises(StorageError):
            ShardedStore.create(DIR, shards=2, fs=fs)
        CollectionStore.create("plain", fs=fs).close()
        with pytest.raises(StorageError):
            ShardedStore.create("plain", shards=2, fs=fs)

    def test_open_non_sharded_directory_raises(self, fs):
        CollectionStore.create("plain", fs=fs).close()
        with pytest.raises(StorageError):
            ShardedStore.open("plain", fs=fs)

    def test_closed_store_refuses_dml(self, fs):
        store = ShardedStore.create(DIR, shards=2, fs=fs)
        store.close()
        with pytest.raises(StorageError):
            store.insert({"v": 1})


class TestDml:
    def test_insert_many_preserves_input_order(self, fs):
        with ShardedStore.create(DIR, shards=3, fs=fs,
                                 routing_field="region") as store:
            ids = store.insert_many(DOCS)
            for doc_id, doc in zip(ids, DOCS):
                assert store.get(doc_id) == doc

    def test_update_same_shard_allowed(self, fs):
        with ShardedStore.create(DIR, shards=4, fs=fs,
                                 routing_field="region") as store:
            doc_id = store.insert({"region": "eu", "v": 1})
            store.update(doc_id, {"region": "eu", "v": 99})
            assert store.get(doc_id)["v"] == 99

    def test_update_refuses_routing_migration(self, fs):
        """The placement invariant behind routing-equality pruning: a
        document may never move to a value that hashes elsewhere."""
        with ShardedStore.create(DIR, shards=4, fs=fs,
                                 routing_field="region") as store:
            doc_id = store.insert({"region": "eu", "v": 1})
            home = doc_id % 4
            other = next(r for r in ("us", "ap", "sa", "af", "oc")
                         if routing_hash(r) % 4 != home)
            with pytest.raises(StorageError, match="delete and re-insert"):
                store.update(doc_id, {"region": other, "v": 1})
            # dropping the routing field entirely is fine: no hash claim
            store.update(doc_id, {"v": 2})
            assert store.get(doc_id) == {"v": 2}

    def test_delete_and_missing_id_errors(self, fs):
        with ShardedStore.create(DIR, shards=2, fs=fs) as store:
            doc_id = store.insert({"v": 1})
            store.delete(doc_id)
            assert doc_id not in store
            with pytest.raises(StorageError, match=f"no document {doc_id}"):
                store.get(doc_id)
            with pytest.raises(StorageError):
                store.image(doc_id)


class TestSnapshot:
    def test_composition_and_isolation(self, fs):
        with ShardedStore.create(DIR, shards=3, fs=fs,
                                 routing_field="region") as store:
            ids = store.insert_many(DOCS)
            snap = store.snapshot()
            assert len(snap) == len(DOCS)
            assert sorted(snap.doc_ids()) == sorted(ids)
            # writes after the pin are invisible to it
            store.insert({"region": "eu", "v": 100})
            assert len(snap) == len(DOCS)
            assert len(store.snapshot()) == len(DOCS) + 1

    def test_version_monotonic(self, fs):
        with ShardedStore.create(DIR, shards=2, fs=fs) as store:
            v0 = store.snapshot().version
            store.insert({"v": 1})
            v1 = store.snapshot().version
            store.insert({"v": 2})
            v2 = store.snapshot().version
            assert v0 < v1 < v2

    def test_shard_documents_cover_the_whole_set(self, fs):
        with ShardedStore.create(DIR, shards=3, fs=fs,
                                 routing_field="region") as store:
            store.insert_many(DOCS)
            snap = store.snapshot()
            union = {}
            for index in range(snap.shard_count):
                for doc_id, doc in snap.shard_documents(index):
                    assert doc_id % 3 == index
                    union[doc_id] = doc
            assert union == dict(snap.documents())

    def test_snapshot_guides_cover_their_shards(self, fs):
        with ShardedStore.create(DIR, shards=2, fs=fs,
                                 routing_field="region") as store:
            store.insert_many(DOCS)
            snap = store.snapshot()
            for index in range(snap.shard_count):
                guide = snap.guides[index]
                paths = guide.paths()
                for _doc_id, doc in snap.shard_documents(index):
                    for key in doc:
                        assert f"$.{key}" in paths


class TestDataGuideAndZones:
    def test_merged_guide_equals_unsharded_rebuild(self, fs):
        with ShardedStore.create(DIR, shards=3, fs=fs,
                                 routing_field="region") as store:
            store.insert_many(DOCS)
            merged = store.dataguide()
        rebuilt = DataGuideBuilder()
        rebuilt.add_many(DOCS)
        assert ({(e.path, e.kind, e.scalar_type) for e in merged.entries()}
                == {(e.path, e.kind, e.scalar_type)
                    for e in rebuilt.entries()})

    def test_zone_stats_are_per_shard(self, fs):
        with ShardedStore.create(DIR, shards=2, fs=fs,
                                 routing_field="region") as store:
            store.insert_many(DOCS)
            per_shard = store.zone_stats()
            assert len(per_shard) == 2
            for index, zones in enumerate(per_shard):
                values = [doc["v"] for _id, doc
                          in store.snapshot().shard_documents(index)]
                row = next(z for z in zones if z["path"] == "$.v")
                assert row["min"] == min(values)
                assert row["max"] == max(values)


class TestFsck:
    def test_clean_store(self, fs):
        store = ShardedStore.create(DIR, shards=2, fs=fs,
                                    routing_field="region")
        store.insert_many(DOCS)
        store.checkpoint()
        store.close()
        assert fsck_sharded(fs, DIR) == []

    def test_missing_marker(self, fs):
        fs.ensure_dir(DIR)
        findings = fsck_sharded(fs, DIR)
        assert [d.rule for d in findings] == ["storage.fsck.shards-marker"]

    def test_corrupt_marker(self, fs):
        ShardedStore.create(DIR, shards=2, fs=fs).close()
        handle = fs.create(shards_path(DIR))
        handle.write(b"\xff" * 16)
        handle.close()
        findings = fsck_sharded(fs, DIR)
        assert [d.rule for d in findings] == ["storage.fsck.shards-marker"]

    def test_missing_shard_directory(self, fs):
        store = ShardedStore.create(DIR, shards=3, fs=fs)
        store.insert({"v": 1})
        store.close()
        gone = posixpath.join(DIR, shard_dir_name(2))
        for name in list(fs.listdir(gone)):
            fs.remove(posixpath.join(gone, name))
        fs._dirs.discard(gone)
        findings = fsck_sharded(fs, DIR)
        assert any(d.rule == "storage.fsck.shard-missing"
                   for d in findings)

    def test_shard_findings_are_shard_prefixed(self, fs):
        store = ShardedStore.create(DIR, shards=2, fs=fs)
        store.insert_many([{"v": i} for i in range(4)])
        store.checkpoint()
        store.close()
        # corrupt one shard's sealed segment: the finding must name the
        # shard directory so an operator knows where to look
        shard_dir = posixpath.join(DIR, shard_dir_name(0))
        segment = min(n for n in fs.listdir(shard_dir)
                      if n.startswith("log-"))  # sealed segment
        path = posixpath.join(shard_dir, segment)
        data = bytearray(fs.read_bytes(path))
        data[len(data) // 2] ^= 0xFF
        handle = fs.create(path)
        handle.write(bytes(data))
        handle.close()
        findings = fsck_sharded(fs, DIR)
        assert findings
        assert any(f.path and f.path.startswith(shard_dir_name(0))
                   for f in findings)

    def test_root_log_flagged(self, fs):
        ShardedStore.create(DIR, shards=2, fs=fs).close()
        handle = fs.create(posixpath.join(DIR, "log-00000009.log"))
        handle.write(b"")
        handle.close()
        findings = fsck_sharded(fs, DIR)
        assert any(d.rule == "storage.fsck.root-log" for d in findings)


class TestRecoveryContract:
    def test_fresh_store_reports_none(self, fs):
        with ShardedStore.create(DIR, shards=2, fs=fs) as store:
            assert store.recovery is None

    def test_reopen_reports_per_shard(self, fs):
        store = ShardedStore.create(DIR, shards=2, fs=fs,
                                    routing_field="region")
        store.insert_many(DOCS)
        store.close()
        again = ShardedStore.open(DIR, fs=fs)
        report = again.recovery
        assert report is not None
        assert report.clean
        assert len(report.per_shard) == 2
        assert "shards: 2" in report.summary()
        again.close()

    def test_torn_shard_wal_cut_batches_annotated(self, fs):
        """Tearing one shard's WAL mid-record must surface exactly the
        standalone store's ``cut_batches`` contract, with the shard
        index attached — and leave every other shard untouched."""
        store = ShardedStore.create(DIR, shards=2, fs=fs,
                                    routing_field="region")
        store.insert_many(DOCS)
        store.close()
        shard_dir = posixpath.join(DIR, shard_dir_name(1))
        wal = max(n for n in fs.listdir(shard_dir)
                  if n.startswith("log-"))  # the active WAL
        path = posixpath.join(shard_dir, wal)
        data = fs.read_bytes(path)
        handle = fs.create(path)
        handle.write(data[:len(data) - 7])
        handle.close()

        again = ShardedStore.open(DIR, fs=fs)
        report = again.recovery
        assert not report.clean or report.cut_batches
        # parity with the standalone report: same dict shape + shard key
        assert report.cut_batches
        for cut in report.cut_batches:
            assert cut["shard"] == 1
            assert {"source", "offset", "expected", "seen",
                    "shard"} <= set(cut)
        # shard 0's documents all survive the other shard's torn tail
        survivors = [doc for _id, doc in again.documents()]
        for doc in DOCS:
            if routing_hash(doc["region"]) % 2 == 0:
                assert doc in survivors
        # the recovered router stays writable
        new_id = again.insert({"region": "eu", "v": 7})
        assert again.get(new_id) == {"region": "eu", "v": 7}
        again.close()


# -- per-shard crash sweep ---------------------------------------------------


def workload(fs, journal):
    """A representative sharded protocol exercise for the fault sweep."""
    store = ShardedStore.create(DIR, shards=2, fs=fs,
                                routing_field="region")
    journal.append(("created",))
    for doc in DOCS[:4]:
        doc_id = store.insert(doc)
        journal.append(("insert", doc_id, doc))
    store.checkpoint()
    journal.append(("checkpoint",))
    update_id = journal[1][1]
    store.update(update_id, {"region": DOCS[0]["region"], "v": 40})
    journal.append(("update", update_id,
                    {"region": DOCS[0]["region"], "v": 40}))
    delete_id = journal[2][1]
    store.delete(delete_id)
    journal.append(("delete", delete_id))
    doc_id = store.insert(DOCS[4])
    journal.append(("insert", doc_id, DOCS[4]))
    store.close()
    journal.append(("closed",))


def expected_documents(journal):
    docs = {}
    for entry in journal:
        if entry[0] in ("insert", "update"):
            docs[entry[1]] = entry[2]
        elif entry[0] == "delete":
            docs.pop(entry[1], None)
    return docs


@pytest.fixture(scope="module")
def enumeration():
    print(f"\n[shard fault sweep] REPRO_FAULT_SEED={SEED}")
    return enumerate_fault_points(workload, seed=SEED,
                                  modes=(CRASH, TORN))


def test_workload_completes_without_faults():
    fs = FaultyFileSystem()
    journal = []
    workload(fs, journal)
    assert journal[-1] == ("closed",)


def test_enumeration_sweeps_every_shard(enumeration):
    """The boundary set must include I/O inside both shard directories
    (otherwise the sweep is not actually per-shard)."""
    paths = {op.path for op in enumeration.ops if op.path}
    for index in range(2):
        assert any(shard_dir_name(index) in path for path in paths)


@pytest.mark.parametrize("mode", [CRASH, TORN])
def test_shard_crash_point_sweep(enumeration, mode):
    """Crashing any single boundary — in either shard's WAL, manifest,
    segment or the SHARDS marker — loses no acknowledged commit, and
    every shard's recovered DataGuide equals a from-scratch rebuild."""
    cases = [c for c in enumeration.cases if c.plan.mode == mode]
    assert cases
    for case in cases:
        outcome = run_with_fault(workload, case)
        assert outcome.crashed, f"{case.describe()}: fault never fired"
        durable = outcome.durable
        expected = expected_documents(outcome.journal)
        context = case.describe()
        try:
            store = ShardedStore.open(DIR, fs=durable)
        except StorageError:
            assert not outcome.journal, (
                f"{context}: refused to open but "
                f"{len(outcome.journal)} ops were acknowledged")
            continue
        report = store.recovery
        if report is not None:
            assert not report.quarantined, (
                f"{context}: quarantine after a pure crash fault:\n"
                + report.summary())
        for doc_id, doc in expected.items():
            assert doc_id in store, (
                f"{context}: acknowledged doc {doc_id} lost")
            assert store.get(doc_id) == doc, (
                f"{context}: acknowledged doc {doc_id} diverged")
        for index, shard in enumerate(store.shards):
            rebuilt = DataGuideBuilder()
            for _, document in shard.documents():
                rebuilt.add(document)
            assert (structural_signature(shard._builder)
                    == structural_signature(rebuilt)), (
                f"{context}: shard {index} DataGuide diverges from rebuild")
        new_id = store.insert({"region": "eu", "v": 999})
        assert store.get(new_id) == {"region": "eu", "v": 999}
        store.close()
