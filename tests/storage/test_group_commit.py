"""Group-commit pipeline semantics: batching, batch limits, pause/
resume, poisoning, and the WAL batch-marker byte layout."""

import threading
import time

import posixpath

import pytest

from repro.errors import StorageError
from repro.storage import CollectionStore, MemoryFileSystem
from repro.storage.faults import CRASH, FaultPlan, FaultyFileSystem, \
    SimulatedCrash
from repro.storage.framing import scan_frames
from repro.storage.log import OP_BATCH, decode_record

DIR = "db"


def wal_records(fs, name="log-00000001.log"):
    """Decoded records of one log file's durable bytes."""
    data = fs.durable_bytes(posixpath.join(DIR, name))
    out = []
    for frame in scan_frames(data).frames:
        record = decode_record(frame.payload)
        if record is not None:
            out.append(record)
    return out


def batch_markers(fs, name="log-00000001.log"):
    return [r for r in wal_records(fs, name) if r.op == OP_BATCH]


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.001)


class TestByteLayout:
    def test_single_op_commits_write_no_batch_marker(self):
        """One-op commits keep the exact pre-group-commit frame layout,
        so old stores read new WALs and the fault sweep's coordinates
        stay stable."""
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        store.insert({"a": 1})
        store.insert({"a": 2})
        store.close()
        assert batch_markers(fs) == []

    def test_insert_many_writes_one_marker_with_op_count(self):
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        store.insert_many([{"i": i} for i in range(4)])
        store.close()
        markers = batch_markers(fs)
        assert len(markers) == 1
        assert markers[0].count == 4


class TestThreadedBatching:
    def test_staged_commits_share_one_batch(self):
        """Commits staged while the pipeline is paused land as ONE
        group-commit batch (one marker, one fsync) when it resumes."""
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        pipeline = store.pipeline
        pipeline.start_thread()
        pipeline.pause()
        threads = [threading.Thread(target=store.insert, args=({"t": i},))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        wait_until(lambda: len(pipeline._pending) == 3)
        pipeline.resume()
        for thread in threads:
            thread.join()
        store.close()
        markers = batch_markers(fs)
        assert len(markers) == 1
        assert markers[0].count == 3
        # and all three documents are durable
        again = CollectionStore.open(DIR, fs=fs)
        assert len(again) == 3
        again.close()

    def test_batch_limit_one_restores_per_commit_fsync(self):
        """``set_batch_limit(1)`` is the per-commit-fsync baseline the
        concurrency benchmark compares against: staged commits drain
        one at a time, no markers appear."""
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        pipeline = store.pipeline
        pipeline.set_batch_limit(1)
        pipeline.start_thread()
        pipeline.pause()
        threads = [threading.Thread(target=store.insert, args=({"t": i},))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        wait_until(lambda: len(pipeline._pending) == 3)
        pipeline.resume()
        for thread in threads:
            thread.join()
        store.close()
        assert batch_markers(fs) == []
        again = CollectionStore.open(DIR, fs=fs)
        assert len(again) == 3
        again.close()

    def test_ack_implies_published_snapshot(self):
        """A returned insert is visible to a snapshot taken immediately
        after — publish happens before the acknowledgement."""
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        store.pipeline.start_thread()
        doc_id = store.insert({"k": "v"})
        snapshot = store.snapshot()
        assert snapshot.get(doc_id) == {"k": "v"}
        store.close()


class TestAsyncSplit:
    def test_insert_async_defers_visibility_to_wait(self):
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        pipeline = store.pipeline
        pipeline.start_thread()
        pipeline.pause()
        doc_id, handle = store.insert_async({"pending": True})
        # staged but unacknowledged: published snapshot can't see it
        assert doc_id not in store.snapshot()
        pipeline.resume()
        pipeline.wait(handle)
        assert store.snapshot().get(doc_id) == {"pending": True}
        store.close()


class TestPauseResume:
    def test_replace_wal_requires_pause(self):
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        with pytest.raises(StorageError):
            store.pipeline.replace_wal(object())
        store.close()

    def test_checkpoint_during_threaded_commits(self):
        """Checkpoints interleave safely with a committer thread and
        concurrent writers; nothing acknowledged is lost."""
        fs = MemoryFileSystem()
        store = CollectionStore.create(DIR, fs=fs)
        store.pipeline.start_thread()
        inserted = []

        def writer(base):
            for i in range(10):
                inserted.append(store.insert({"w": base + i}))

        threads = [threading.Thread(target=writer, args=(base,))
                   for base in (0, 100)]
        for thread in threads:
            thread.start()
        store.checkpoint()
        for thread in threads:
            thread.join()
        store.checkpoint()
        store.close()
        again = CollectionStore.open(DIR, fs=fs)
        assert set(again.doc_ids()) == set(inserted)
        again.close()


class TestPoisoning:
    def crash_store(self):
        """A store whose next WAL write simulates power loss."""
        recorder = FaultyFileSystem()
        CollectionStore.create(DIR, fs=recorder).insert({"seed": 1})
        # find the op index of the insert's WAL write: last write boundary
        writes = [op for op in recorder.op_log if op.op == "write"]
        plan = FaultPlan(crash_at=writes[-1].index, mode=CRASH)
        fs = FaultyFileSystem(plan=plan)
        store = CollectionStore.create(DIR, fs=fs)
        return store

    def test_crash_poisons_pipeline_and_fails_later_commits(self):
        store = self.crash_store()
        with pytest.raises(SimulatedCrash):
            store.insert({"doomed": True})
        assert store.pipeline.failed is not None
        with pytest.raises(StorageError):
            store.insert({"after": True})
        # reads at the last published snapshot still work
        assert len(store) == 0
        store.close()  # must not raise

    def test_poisoned_thread_mode_fails_waiters(self):
        store = self.crash_store()
        store.pipeline.start_thread()
        with pytest.raises((StorageError, SimulatedCrash)):
            store.insert({"doomed": True})
        with pytest.raises(StorageError):
            store.insert({"after": True})
        store.close()
