"""Shard health state machine and the fail-fast/retry write path.

The board's contract (DESIGN §11): one failure is suspicion, not
sentence; ``fail_threshold`` consecutive failures take a shard out of
rotation; a failed shard is rediscovered by traffic-driven probes; and
the write path burns its bounded retry budget only on shards worth
retrying.
"""

import pytest

from repro.errors import ShardUnavailable, TransientFault
from repro.obs import clock as clockmod
from repro.obs import metrics
from repro.storage import MemoryFileSystem, ShardedStore, chaos
from repro.storage.health import (FAILED, HEALTHY, RECOVERED, SUSPECT,
                                  ShardHealthBoard)


@pytest.fixture
def virtual_clock():
    clock = clockmod.VirtualClock()
    previous = clockmod.install_clock(clock)
    yield clock
    clockmod.install_clock(previous)


@pytest.fixture
def board():
    return ShardHealthBoard(4, fail_threshold=3, probe_interval=4)


def fail_until_failed(board, index):
    for _ in range(board.fail_threshold):
        board.record_failure(index)
    assert board.state(index) == FAILED


class TestStateMachine:
    def test_starts_healthy(self, board):
        assert board.states() == [HEALTHY] * 4

    def test_single_failure_is_suspicion_not_sentence(self, board):
        assert board.record_failure(0) == SUSPECT
        assert board.admit(0)  # suspect shards still serve

    def test_success_clears_suspicion(self, board):
        board.record_failure(0)
        assert board.record_success(0) == HEALTHY

    def test_consecutive_failures_escalate(self, board):
        assert board.record_failure(0) == SUSPECT
        assert board.record_failure(0) == SUSPECT
        assert board.record_failure(0) == FAILED

    def test_interleaved_success_resets_the_count(self, board):
        board.record_failure(0)
        board.record_failure(0)
        board.record_success(0)
        # the streak restarts: three more needed, not one
        assert board.record_failure(0) == SUSPECT
        assert board.record_failure(0) == SUSPECT
        assert board.record_failure(0) == FAILED

    def test_probe_success_is_probation_not_pardon(self, board):
        fail_until_failed(board, 0)
        assert board.record_success(0) == RECOVERED
        assert board.record_success(0) == HEALTHY

    def test_flapping_shard_demotes_from_recovered(self, board):
        fail_until_failed(board, 0)
        board.record_success(0)
        assert board.record_failure(0) == SUSPECT

    def test_shards_are_independent(self, board):
        fail_until_failed(board, 2)
        assert board.states() == [HEALTHY, HEALTHY, FAILED, HEALTHY]
        assert board.failed_shards() == (2,)

    def test_summary_histogram(self, board):
        fail_until_failed(board, 0)
        board.record_failure(1)
        assert board.summary() == {FAILED: 1, SUSPECT: 1, HEALTHY: 2}

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardHealthBoard(0)
        with pytest.raises(ValueError):
            ShardHealthBoard(2, fail_threshold=0)
        with pytest.raises(ValueError):
            ShardHealthBoard(2, probe_interval=0)


class TestAdmission:
    def test_failed_shard_refused_fail_fast(self, board):
        fail_until_failed(board, 0)
        assert not board.admit(0)

    def test_every_nth_refusal_admitted_as_probe(self, board):
        fail_until_failed(board, 0)
        probes = metrics.counter("storage.shard.health.probes").value
        admitted = [board.admit(0) for _ in range(8)]
        # probe_interval=4: attempts 4 and 8 pass as probes
        assert admitted == [False, False, False, True,
                            False, False, False, True]
        assert metrics.counter(
            "storage.shard.health.probes").value == probes + 2

    def test_admitted_probe_can_heal(self, board):
        fail_until_failed(board, 0)
        while not board.admit(0):
            pass
        board.record_success(0)
        assert board.state(0) == RECOVERED
        assert board.admit(0)


class TestGauges:
    def test_failed_and_suspect_published(self):
        board = ShardHealthBoard(3, fail_threshold=2)
        board.record_failure(0)
        assert metrics.gauge("storage.shard.health.suspect").value == 1
        board.record_failure(0)
        assert metrics.gauge("storage.shard.health.failed").value == 1
        assert metrics.gauge("storage.shard.health.suspect").value == 0
        board.record_success(0)
        board.record_success(0)
        assert metrics.gauge("storage.shard.health.failed").value == 0

    def test_transition_counters(self):
        board = ShardHealthBoard(2, fail_threshold=2)
        failures = metrics.counter("storage.shard.health.failures").value
        recoveries = metrics.counter(
            "storage.shard.health.recoveries").value
        board.record_failure(1)
        board.record_failure(1)
        assert board.state(1) == FAILED
        board.record_success(1)  # FAILED -> RECOVERED counts
        assert metrics.counter(
            "storage.shard.health.failures").value == failures + 2
        assert metrics.counter(
            "storage.shard.health.recoveries").value == recoveries + 1


# -- the sharded write path under injected faults --------------------------


@pytest.fixture
def store():
    fs = MemoryFileSystem()
    sharded = ShardedStore.create("db", shards=2, fs=fs,
                                  routing_field="region")
    yield sharded
    sharded.close()


def commit_outage(shard, limit, start=0):
    """A chaos plan that fails `limit` consecutive commits on one shard."""
    return chaos.ChaosPlan(seed=11, rules=(
        chaos.ChaosRule(point="shard.commit", shard=shard, rate=1.0,
                        start=start, limit=limit),))


def target_of(store):
    """Where ``region="eu"`` documents land (routing is hash-driven)."""
    return store.shard_of_value("eu")


def fail_shard(store, target):
    """Drive the eu-shard to ``failed`` with a long commit outage."""
    with chaos.active(commit_outage(shard=target, limit=50)):
        for _ in range(3):
            try:
                store.insert({"region": "eu", "v": 1})
            except ShardUnavailable:
                pass
    assert store.health.state(target) == FAILED


class TestWriteRetry:
    def test_transient_commit_fault_retried_to_success(
            self, store, virtual_clock):
        target = target_of(store)
        retried = metrics.counter("storage.shard.write_retries").value
        with chaos.active(commit_outage(shard=target, limit=1)):
            doc_id = store.insert({"region": "eu", "v": 1})
        assert store.get(doc_id) == {"region": "eu", "v": 1}
        assert metrics.counter(
            "storage.shard.write_retries").value == retried + 1
        # the wait came from the seeded schedule, through the clock
        assert virtual_clock.sleeps == [
            store.backoff.delay_ms(f"insert:{target}", 0) / 1000.0]

    def test_exhausted_retries_surface_typed(self, store, virtual_clock):
        target = target_of(store)
        attempts = store.backoff.max_attempts
        with chaos.active(commit_outage(shard=target, limit=attempts + 2)):
            with pytest.raises(ShardUnavailable) as exc_info:
                store.insert({"region": "eu", "v": 1})
        assert exc_info.value.shard_index == target
        assert isinstance(exc_info.value.__cause__, TransientFault)

    def test_failed_shard_refuses_writes_fail_fast(
            self, store, virtual_clock):
        target = target_of(store)
        fail_shard(store, target)
        slept = len(virtual_clock.sleeps)
        with pytest.raises(ShardUnavailable) as exc_info:
            store.insert({"region": "eu", "v": 2})
        assert exc_info.value.state == FAILED
        # fail-fast: no retry budget burned against a failed shard
        assert len(virtual_clock.sleeps) == slept

    def test_other_shard_keeps_serving(self, store, virtual_clock):
        target = target_of(store)
        other_value = next(f"r{i}" for i in range(100)
                           if store.shard_of_value(f"r{i}") != target)
        with chaos.active(commit_outage(shard=target, limit=50)):
            for _ in range(3):
                try:
                    store.insert({"region": "eu", "v": 1})
                except ShardUnavailable:
                    pass
            doc_id = store.insert({"region": other_value, "v": 2})
            assert store.get(doc_id) == {"region": other_value, "v": 2}

    def test_probe_heals_after_window(self, store, virtual_clock):
        target = target_of(store)
        fail_shard(store, target)
        assert store.health.failed_shards() == (target,)
        # the fault window is over: explicit probing finds it alive
        assert store.probe_failed() == [target]
        assert store.health.state(target) == RECOVERED
        doc_id = store.insert({"region": "eu", "v": 9})
        assert store.get(doc_id) == {"region": "eu", "v": 9}
        assert store.health.state(target) == HEALTHY

    def test_probe_failure_keeps_shard_failed(self, store, virtual_clock):
        target = target_of(store)
        fail_shard(store, target)
        probe_outage = chaos.ChaosPlan(seed=1, rules=(
            chaos.ChaosRule(point="shard.probe", shard=target, rate=1.0),))
        with chaos.active(probe_outage):
            assert store.probe_failed() == []
        assert store.health.state(target) == FAILED

    def test_semantic_errors_never_retried(self, store, virtual_clock):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            store.update(10_000, {"region": "eu"})  # unknown id
        assert virtual_clock.sleeps == []
        assert store.health.states() == [HEALTHY, HEALTHY]
