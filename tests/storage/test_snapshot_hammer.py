"""Multi-threaded snapshot-isolation hammer (ISSUE 7 satellite).

Eight threads — four writer sessions, four reader sessions — hammer one
durable table through the serving layer while the committer thread
groups their fsyncs.  Invariants checked on every read:

* **atomic batches** — each writer commits its rows in tagged batches;
  no reader snapshot ever sees a partial batch (a tag's row count is
  always 0 or the full batch size);
* **stable pins** — two scans on the same session without ``refresh``
  return identical rows, no matter how many commits land in between;
* **monotonic reads** — a session's pinned snapshot version never goes
  backward across refreshes;
* **read-your-own-writes** — after a writer's insert is acknowledged,
  that writer's very next scan sees all of its own rows.
"""

import threading

from repro.engine.catalog import Database
from repro.engine.table import Column
from repro.serve import Server
from repro.storage import MemoryFileSystem

WRITERS = 4
READERS = 4
BATCH = 5
ROUNDS = 15


def build():
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "events",
        [Column.of("writer", "number"), Column.of("seq", "number"),
         Column.of("slot", "number")],
        durable="db/events", fs=fs)
    return db, table


def rows_by_tag(rows):
    counts = {}
    for row in rows:
        tag = (row["writer"], row["seq"])
        counts[tag] = counts.get(tag, 0) + 1
    return counts


def test_snapshot_isolation_hammer():
    db, table = build()
    failures = []
    stop = threading.Event()

    with Server(db, read_workers=4, write_workers=4,
                queue_limit=512) as server:

        def writer(writer_id):
            try:
                session = server.session()
                for seq in range(ROUNDS):
                    session.insert_many("events", [
                        {"writer": writer_id, "seq": seq, "slot": slot}
                        for slot in range(BATCH)])
                    # read-your-own-writes: the acknowledged batch is
                    # visible to this session immediately
                    mine = [r for r in session.execute(
                        "SELECT writer, seq FROM events").fetchall()
                        if r["writer"] == writer_id]
                    expected = (seq + 1) * BATCH
                    if len(mine) != expected:
                        failures.append(
                            f"writer {writer_id}: sees {len(mine)} of "
                            f"its own rows after ack, expected "
                            f"{expected}")
                        return
                session.close()
            except Exception as error:  # noqa: BLE001 - surfaced via failures
                failures.append(f"writer {writer_id}: {error!r}")

        def reader(reader_id):
            try:
                session = server.session()
                last_version = -1
                while not stop.is_set():
                    session.refresh()
                    first = session.execute(
                        "SELECT writer, seq, slot FROM events").fetchall()
                    counts = rows_by_tag(first)
                    for tag, count in counts.items():
                        if count != BATCH:
                            failures.append(
                                f"reader {reader_id}: partial batch "
                                f"{tag}: {count}/{BATCH} rows visible")
                            return
                    # a second scan on the same pin is identical even
                    # though writers keep committing
                    second = session.execute(
                        "SELECT writer, seq, slot FROM events").fetchall()
                    if first != second:
                        failures.append(
                            f"reader {reader_id}: pinned snapshot moved "
                            f"between two scans")
                        return
                    version = session.snapshot_version("events")
                    if version is not None:
                        if version < last_version:
                            failures.append(
                                f"reader {reader_id}: snapshot version "
                                f"went backward {last_version} -> "
                                f"{version}")
                            return
                        last_version = version
                session.close()
            except Exception as error:  # noqa: BLE001
                failures.append(f"reader {reader_id}: {error!r}")

        writer_threads = [threading.Thread(target=writer, args=(w,))
                          for w in range(WRITERS)]
        reader_threads = [threading.Thread(target=reader, args=(r,))
                          for r in range(READERS)]
        for thread in reader_threads + writer_threads:
            thread.start()
        for thread in writer_threads:
            thread.join()
        stop.set()
        for thread in reader_threads:
            thread.join()

    assert not failures, "\n".join(failures)

    # final state: every batch fully durable
    final = rows_by_tag(table.snapshot_scan())
    assert len(final) == WRITERS * ROUNDS
    assert all(count == BATCH for count in final.values())
    table.close()
