"""Shared pytest hooks.

When the runtime lock sanitizer is enabled (``REPRO_SANITIZE=1``),
every lock the product creates during the test session is instrumented;
this hook writes the accumulated findings to ``SANITIZER_report.json``
at session end so CI can upload the report as an artifact.  Without the
env flag the hook is a no-op and no file is written.
"""

import json
import pathlib


def pytest_sessionfinish(session, exitstatus):
    from repro.obs import locks

    if not locks.sanitizer_enabled():
        return
    report = locks.report()
    out = pathlib.Path("SANITIZER_report.json")
    out.write_text(json.dumps(report, indent=2, sort_keys=True))
    line = (f"lock sanitizer: {len(report['locks'])} locks, "
            f"{sum(report['counts'].values())} findings "
            f"-> {out}")
    print(f"\n{line}")
