"""End-to-end tests for ``python -m repro.analysis``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.bson import encode as bson_encode
from repro.core.oson import encode as oson_encode


@pytest.fixture()
def images(tmp_path):
    good_oson = tmp_path / "good.oson"
    good_oson.write_bytes(oson_encode({"a": 1, "b": [True, "x"]}))
    good_bson = tmp_path / "good.bson"
    good_bson.write_bytes(bson_encode({"a": 1}))
    bad = tmp_path / "bad.oson"
    bad.write_bytes(oson_encode({"a": 1})[:-3])
    return tmp_path, good_oson, good_bson, bad


class TestVerify:
    def test_good_images_exit_zero(self, images, capsys):
        _dir, good_oson, good_bson, _bad = images
        assert main(["verify", str(good_oson), str(good_bson)]) == 0
        out = capsys.readouterr().out
        assert "oson image ok" in out
        assert "bson image ok" in out

    def test_bad_image_exits_one(self, images, capsys):
        _dir, _go, _gb, bad = images
        assert main(["verify", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "oson." in out
        assert "1 of 1 images failed" in out

    def test_directory_walk(self, images, capsys):
        directory, *_rest = images
        assert main(["verify", str(directory)]) == 1
        assert "1 of 3 images failed" in capsys.readouterr().out

    def test_json_report(self, images, capsys):
        directory, *_rest = images
        assert main(["--json", "verify", str(directory)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["checked"] == 3
        assert report["failed"] == 1
        assert all(d["severity"] == "error" for d in report["diagnostics"])
        assert all("bad.oson" in d["file"] for d in report["diagnostics"])

    def test_forced_format(self, images, capsys):
        _dir, good_oson, _gb, _bad = images
        # an OSON image is not valid BSON; forcing the format must fail
        assert main(["verify", "--format", "bson", str(good_oson)]) == 1


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(x):\n    return x\n")
        assert main(["lint", str(target)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "mutable-default" in out
        assert "dirty.py" in out

    def test_json_report(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert main(["--json", "lint", str(target)]) == 1
        report = json.loads(capsys.readouterr().out)
        (diag,) = report["diagnostics"]
        assert diag["rule"] == "mutable-default"
        assert diag["line"] == 1

    def test_warning_only_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "stale.py"
        target.write_text("x = 1  # lint: ignore[no-assert] stale note\n")
        assert main(["lint", str(target)]) == 0
        assert "warning" in capsys.readouterr().out
