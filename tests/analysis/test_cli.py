"""End-to-end tests for ``python -m repro.analysis``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.bson import encode as bson_encode
from repro.core.oson import encode as oson_encode


@pytest.fixture()
def images(tmp_path):
    good_oson = tmp_path / "good.oson"
    good_oson.write_bytes(oson_encode({"a": 1, "b": [True, "x"]}))
    good_bson = tmp_path / "good.bson"
    good_bson.write_bytes(bson_encode({"a": 1}))
    bad = tmp_path / "bad.oson"
    bad.write_bytes(oson_encode({"a": 1})[:-3])
    return tmp_path, good_oson, good_bson, bad


class TestVerify:
    def test_good_images_exit_zero(self, images, capsys):
        _dir, good_oson, good_bson, _bad = images
        assert main(["verify", str(good_oson), str(good_bson)]) == 0
        out = capsys.readouterr().out
        assert "oson image ok" in out
        assert "bson image ok" in out

    def test_bad_image_exits_one(self, images, capsys):
        _dir, _go, _gb, bad = images
        assert main(["verify", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "oson." in out
        assert "1 of 1 images failed" in out

    def test_directory_walk(self, images, capsys):
        directory, *_rest = images
        assert main(["verify", str(directory)]) == 1
        assert "1 of 3 images failed" in capsys.readouterr().out

    def test_json_report(self, images, capsys):
        directory, *_rest = images
        assert main(["--json", "verify", str(directory)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["checked"] == 3
        assert report["failed"] == 1
        assert all(d["severity"] == "error" for d in report["diagnostics"])
        assert all("bad.oson" in d["file"] for d in report["diagnostics"])

    def test_forced_format(self, images, capsys):
        _dir, good_oson, _gb, _bad = images
        # an OSON image is not valid BSON; forcing the format must fail
        assert main(["verify", "--format", "bson", str(good_oson)]) == 1


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(x):\n    return x\n")
        assert main(["lint", str(target)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "mutable-default" in out
        assert "dirty.py" in out

    def test_json_report(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(a=[]):\n    return a\n")
        assert main(["--json", "lint", str(target)]) == 1
        report = json.loads(capsys.readouterr().out)
        (diag,) = report["diagnostics"]
        assert diag["rule"] == "mutable-default"
        assert diag["line"] == 1

    def test_warning_only_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "stale.py"
        target.write_text("x = 1  # lint: ignore[no-assert] stale note\n")
        assert main(["lint", str(target)]) == 0
        assert "warning" in capsys.readouterr().out

    def test_json_summary_counts_severities_and_suppressions(
            self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import os  # lint: ignore[unused-import] fixture pin\n"
            "def f(a=[]):\n"
            "    return a\n")
        stale = tmp_path / "stale.py"
        stale.write_text("x = 1  # lint: ignore[no-assert] stale note\n")
        assert main(["--json", "lint", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        summary = report["summary"]
        assert summary["error"] == 1       # the mutable default
        assert summary["warning"] == 1     # the stale pragma
        assert summary["files"] == 2
        assert summary["suppressed"] == 1
        assert summary["suppressed_rules"] == {"unused-import": 1}

    def test_json_reports_per_rule_timings(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(x):\n    return x\n")
        assert main(["--json", "lint", str(target)]) == 0
        report = json.loads(capsys.readouterr().out)
        timings = report["timings_ms"]
        assert "unused-import" in timings
        assert "guarded-mutation" in timings
        assert all(isinstance(ms, float) and ms >= 0
                   for ms in timings.values())


class TestConcurrency:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def good(key):\n"
            "    with LOCK:\n"
            "        STATE[key] = 1\n")
        assert main(["concurrency", str(target)]) == 0
        assert "concurrency clean" in capsys.readouterr().out

    def test_unguarded_mutation_exits_one(self, tmp_path, capsys):
        target = tmp_path / "unguarded.py"
        target.write_text(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def bad(key):\n"
            "    STATE[key] = 1\n")
        assert main(["concurrency", str(target)]) == 1
        assert "guarded-mutation" in capsys.readouterr().out

    def test_json_includes_summary_and_lock_graph(self, tmp_path, capsys):
        target = tmp_path / "order.py"
        target.write_text(
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def ab():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def ba():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n")
        assert main(["--json", "concurrency", str(target)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["error"] == 1
        (diag,) = report["diagnostics"]
        assert diag["rule"] == "lock-order"
        pairs = {(e["first"].rsplit(".", 1)[-1],
                  e["second"].rsplit(".", 1)[-1])
                 for e in report["lock_graph"]}
        assert pairs == {("A", "B"), ("B", "A")}

    def test_does_not_report_stale_pragmas_of_other_rules(
            self, tmp_path, capsys):
        # `lint` owns pragma hygiene; a concurrency run must not call a
        # broad-except suppression stale just because that rule did not
        # run here
        target = tmp_path / "pragma.py"
        target.write_text(
            "try:\n"
            "    x = 1\n"
            "except Exception:  # lint: ignore[broad-except] cli guard\n"
            "    x = 2\n")
        assert main(["concurrency", str(target)]) == 0
        out = capsys.readouterr().out
        assert "stale" not in out
        assert "lint.pragma" not in out
