"""Known-bad fixture: blocking I/O and slow work under a lock.

Runtime counterpart of the static fixtures: these functions only
misbehave when executed, so they are caught by the lock sanitizer
(``repro.analysis.concurrency.sanitizer``) rather than the static pass.
Each function creates its locks through the sanitized factory; the
tests enable the sanitizer, call them, and assert on the report.
Deliberately buggy — never import this from product code.
"""

import time

from repro.analysis.concurrency import sanitizer


def fsync_under_lock():
    """Holds a plain (non-exempt) lock across a blocking-I/O note."""
    lock = sanitizer.make_lock("fixture.io_hold")
    with lock:
        sanitizer.note_blocking_io("fsync")


def fsync_under_exempt_lock():
    """allow_io locks are the documented exception — not reported."""
    lock = sanitizer.make_lock("fixture.io_hold_exempt", allow_io=True)
    with lock:
        sanitizer.note_blocking_io("fsync")


def inverted_runtime_order():
    """Acquires a/b then b/a: a lock-order inversion at runtime."""
    first = sanitizer.make_lock("fixture.order.first")
    second = sanitizer.make_lock("fixture.order.second")
    with first:
        with second:
            pass
    with second:
        with first:  # BAD: reverse of the edge recorded above
            pass


def slow_hold(hold_seconds):
    """Holds a lock long enough to trip the long-hold threshold."""
    lock = sanitizer.make_lock("fixture.slow_hold")
    with lock:
        time.sleep(hold_seconds)
