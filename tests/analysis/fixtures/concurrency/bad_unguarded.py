"""Known-bad fixture: shared state mutated without its lock.

Exercised by tests/analysis/test_concurrency_static.py, which asserts
the exact diagnostics the static pass produces for each marked line.
Deliberately buggy — never import this from product code.
"""

import threading

REGISTRY = {}  # guarded-by: REGISTRY_LOCK
REGISTRY_LOCK = threading.Lock()


def register(name, value):
    with REGISTRY_LOCK:
        REGISTRY[name] = value


def forget(name):
    return REGISTRY.pop(name, None)  # BAD: annotated global, no lock


class Tracker:
    """Lock-paired container with one guarded and one unguarded path."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self._total = 0  # guarded-by: _lock

    def record(self, event):
        with self._lock:
            self._events.append(event)
            self._total += 1

    def bump(self):
        self._total += 1  # BAD: annotated attribute, lock not held

    def drop(self, event):
        self._events.remove(event)  # BAD: inconsistent locking (inferred)
