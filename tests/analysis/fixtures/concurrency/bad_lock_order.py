"""Known-bad fixture: AB/BA lock acquisition order (deadlock-prone).

``transfer`` acquires ``LOCK_A`` before ``LOCK_B``; ``refund`` does the
opposite, so two threads can deadlock holding one lock each.  The
static lock-order graph must report the cycle; the runtime sanitizer
reports the same inversion when both paths execute (even on a single
thread).  Deliberately buggy — never import this from product code.
"""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
BALANCES = {}


def transfer(key):
    with LOCK_A:
        with LOCK_B:
            BALANCES[key] = BALANCES.get(key, 0) + 1


def refund(key):
    with LOCK_B:
        with LOCK_A:  # BAD: reverses transfer()'s A-then-B order
            BALANCES[key] = BALANCES.get(key, 0) - 1
