"""Runtime lock sanitizer: factory, findings, report schema, metrics.

Exercises the known-bad runtime fixture
(``tests/analysis/fixtures/concurrency/bad_io_hold.py``) and asserts
the sanitizer reports each class of finding.  The sanitizer is global
state, so every test runs inside the enable/reset fixture below and
restores the previous switch on the way out.
"""

import threading

import pytest

from repro.analysis.concurrency import sanitizer
from repro.obs import locks as obs_locks
from repro.obs.metrics import snapshot_metrics
from tests.analysis.fixtures.concurrency import bad_io_hold


@pytest.fixture
def sanitized():
    previous = sanitizer.set_sanitizer_enabled(True)
    previous_hold = sanitizer.set_hold_threshold_ms(50.0)
    sanitizer.reset()
    yield
    sanitizer.reset()
    sanitizer.set_hold_threshold_ms(previous_hold)
    sanitizer.set_sanitizer_enabled(previous)


def _kinds():
    return [entry["kind"] for entry in sanitizer.report()["reports"]]


class TestFactory:
    def test_disabled_factory_returns_plain_primitives(self):
        previous = sanitizer.set_sanitizer_enabled(False)
        try:
            lock = sanitizer.make_lock("test.plain")
            assert not isinstance(lock, sanitizer.SanitizedLock)
            assert isinstance(lock, type(threading.Lock()))
        finally:
            sanitizer.set_sanitizer_enabled(previous)

    def test_enabled_factory_wraps_and_names(self, sanitized):
        lock = sanitizer.make_lock("test.wrapped")
        assert isinstance(lock, sanitizer.SanitizedLock)
        assert lock.name == "test.wrapped"
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.acquisitions == 1

    def test_facade_is_the_obs_locks_module(self):
        assert sanitizer.make_lock is obs_locks.make_lock
        assert sanitizer.report is obs_locks.report

    def test_rlock_reentry_counts_once(self, sanitized):
        lock = sanitizer.make_rlock("test.rlock")
        with lock:
            with lock:
                pass
        assert lock.acquisitions == 1
        assert _kinds() == []


class TestKnownBadFixtures:
    def test_fsync_under_lock_is_reported(self, sanitized):
        bad_io_hold.fsync_under_lock()
        report = sanitizer.report()
        assert report["counts"] == {"io-under-lock": 1}
        (finding,) = report["reports"]
        assert finding["kind"] == "io-under-lock"
        assert finding["lock"] == "fixture.io_hold"
        assert finding["io"] == "fsync"
        assert "bad_io_hold.py" in finding["held_at"]

    def test_fsync_under_exempt_lock_is_not_reported(self, sanitized):
        bad_io_hold.fsync_under_exempt_lock()
        assert _kinds() == []
        report = sanitizer.report()
        assert report["locks"]["fixture.io_hold_exempt"]["allow_io"]

    def test_lock_order_inversion_is_reported(self, sanitized):
        bad_io_hold.inverted_runtime_order()
        report = sanitizer.report()
        assert report["counts"] == {"lock-order-inversion": 1}
        (finding,) = report["reports"]
        assert finding["first"] == "fixture.order.second"
        assert finding["second"] == "fixture.order.first"
        assert "bad_io_hold.py" in finding["reverse_witness"]

    def test_long_hold_is_reported(self, sanitized):
        sanitizer.set_hold_threshold_ms(1.0)
        bad_io_hold.slow_hold(0.02)
        report = sanitizer.report()
        assert [e["kind"] for e in report["reports"]] == ["long-hold"]
        (finding,) = report["reports"]
        assert finding["lock"] == "fixture.slow_hold"
        assert finding["held_ms"] >= 1.0
        assert report["locks"]["fixture.slow_hold"]["max_hold_ms"] >= 1.0


class TestReport:
    def test_schema_and_shape(self, sanitized):
        lock = sanitizer.make_lock("test.shape")
        with lock:
            pass
        report = sanitizer.report()
        assert report["schema"] == "repro.obs.locksan/v1"
        assert report["enabled"] is True
        assert report["hold_threshold_ms"] == 50.0
        assert report["locks"]["test.shape"]["acquisitions"] == 1
        assert report["order_edges"] == []
        assert report["reports"] == []

    def test_cross_thread_inversion_detected(self, sanitized):
        # thread 1 takes a->b, thread 2 takes b->a: the edge store is
        # global, so the second thread sees the reverse edge
        a = sanitizer.make_lock("test.cross.a")
        b = sanitizer.make_lock("test.cross.b")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        with b:
            with a:
                pass
        assert _kinds() == ["lock-order-inversion"]

    def test_report_cap_counts_overflow(self, sanitized):
        lock = sanitizer.make_lock("test.cap")
        sanitizer.set_hold_threshold_ms(0.0)
        for _ in range(sanitizer.MAX_REPORTS + 5):
            with lock:
                pass
        report = sanitizer.report()
        assert len(report["reports"]) == sanitizer.MAX_REPORTS
        assert report["counts"]["dropped-reports"] == 5
        assert report["counts"]["long-hold"] == sanitizer.MAX_REPORTS + 5

    def test_sanitizer_provider_in_metrics_export(self, sanitized):
        lock = sanitizer.make_lock("test.provider")
        with lock:
            pass
        section = snapshot_metrics()["providers"]["lock_sanitizer"]
        assert section["enabled"] is True
        assert section["locks_tracked"] >= 1
        assert "counts" in section

    def test_provider_disabled_shape(self):
        previous = sanitizer.set_sanitizer_enabled(False)
        try:
            section = snapshot_metrics()["providers"]["lock_sanitizer"]
            assert section == {"enabled": False}
        finally:
            sanitizer.set_sanitizer_enabled(previous)


class TestStoreIoDiscipline:
    """Regression for the deleted ``allow_io=True`` exemption: since
    group commit moved the WAL fsync onto the pipeline leader, the
    store must hold NO lock across I/O — the sanitizer watches a full
    write/checkpoint/compact/serve workload and must stay silent."""

    def test_store_workload_performs_no_io_under_any_lock(self, sanitized):
        from repro.storage import CollectionStore, MemoryFileSystem
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        store.insert({"a": 1})
        store.insert_many([{"b": i} for i in range(3)])
        store.checkpoint()
        store.update(0, {"a": 2})
        store.compact()
        store.delete(0)
        store.close()
        report = sanitizer.report()
        held_io = [entry for entry in report["reports"]
                   if entry["kind"] == "io-under-lock"]
        assert held_io == [], held_io
        # the store lock is tracked and is NOT exempt anymore
        assert "storage.store" in report["locks"]
        assert not report["locks"]["storage.store"]["allow_io"]

    def test_threaded_commit_pipeline_stays_clean(self, sanitized):
        import threading as _threading
        from repro.storage import CollectionStore, MemoryFileSystem
        fs = MemoryFileSystem()
        store = CollectionStore.create("db", fs=fs)
        store.pipeline.start_thread()
        workers = [_threading.Thread(
            target=lambda base=base: [store.insert({"w": base + i})
                                      for i in range(5)])
            for base in (0, 100)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        store.checkpoint()
        store.close()
        report = sanitizer.report()
        assert [entry for entry in report["reports"]
                if entry["kind"] == "io-under-lock"] == []
        assert not report["locks"]["storage.commit"]["allow_io"]
