"""Differential tests: static verifier vs. the live decoders.

Three contracts, per format:

1. every encoder output verifies clean and decodes back to its source;
2. a deterministic mutated corpus (every truncation plus single-bit
   flips that break a checked invariant) of well over 200 cases is
   flagged — 100%, no exceptions;
3. on arbitrary single-bit flips the verifier may accept (some flips
   are harmless to structure it checks), but **accept implies decode**:
   no verifier-accepted image may crash the decoder.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.analysis import has_errors, verify_bson, verify_oson
from repro.bson import decode as bson_decode
from repro.bson import encode as bson_encode
from repro.core.oson import constants as oc
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import ReproError

DOCS = [
    {"a": 1, "b": "two", "c": [True, None, 2.5]},
    {"order": {"id": 7, "items": [{"sku": "x", "qty": 2},
                                  {"sku": "y", "qty": 1}]}},
    {"unicode": "héllo wörld ✓", "big": 2**60, "neg": -(2**40)},
    {"deep": {"a": {"b": {"c": {"d": [1, 2, 3]}}}}},
    ["top", "level", "array", 1, 2, 3],
]


def _flip(img: bytes, byte: int, bit: int) -> bytes:
    return img[:byte] + bytes([img[byte] ^ (1 << bit)]) + img[byte + 1:]


def _decode_or_repro_error(decoder, img):
    """Decode, asserting no exception class outside the repro hierarchy
    ever escapes; returns True when the image decoded."""
    try:
        decoder(img)
    except ReproError:
        return False
    return True


class TestEncoderOutputs:
    @pytest.mark.parametrize("doc", DOCS, ids=lambda d: repr(d)[:40])
    def test_oson_round_trip_verifies_clean(self, doc):
        img = oson_encode(doc)
        assert verify_oson(img) == []
        assert oson_decode(img) == doc

    @pytest.mark.parametrize("doc", DOCS, ids=lambda d: repr(d)[:40])
    def test_bson_round_trip_verifies_clean(self, doc):
        img = bson_encode(doc)
        assert verify_bson(img) == []
        assert bson_decode(img) == doc


class TestMutatedCorpus:
    """Every member of the deterministic corpus must be flagged."""

    @staticmethod
    def _oson_corpus(img: bytes):
        """Truncations, plus bit flips guaranteed to break a checked
        invariant: magic/version/reserved bytes, the (zero, for these
        small docs) high bytes of the segment/root offsets, and stored
        dictionary hashes."""
        for cut in range(len(img)):
            yield img[:cut]
        for byte in range(8):  # magic, version, reserved
            for bit in range(8):
                yield _flip(img, byte, bit)
        for word in (8, 12, 16):  # tree_start / value_start / root
            for byte in range(word + 1, word + 4):
                assert img[byte] == 0, "corpus assumes small images"
                for bit in range(8):
                    yield _flip(img, byte, bit)
        (count,) = struct.unpack_from("<H", img, oc.HEADER_SIZE)
        for entry in range(count):  # stored hash != hash(name)
            off = oc.HEADER_SIZE + 2 + entry * 5
            for bit in range(8):
                yield _flip(img, off, bit)

    @staticmethod
    def _bson_corpus(img: bytes):
        """Truncations, plus bit flips in the high bytes of the
        top-level length word (zero for these small docs, so any flip
        pushes the length past the buffer)."""
        for cut in range(len(img)):
            yield img[:cut]
        for byte in (1, 2, 3):
            assert img[byte] == 0, "corpus assumes small images"
            for bit in range(8):
                yield _flip(img, byte, bit)

    def test_oson_corpus_fully_flagged(self):
        cases = 0
        for doc in DOCS:
            img = oson_encode(doc)
            for mutant in self._oson_corpus(img):
                cases += 1
                assert has_errors(verify_oson(mutant)), \
                    f"accepted mutant of {doc!r}"
                # the decoder may still cope, but it must not crash
                _decode_or_repro_error(oson_decode, mutant)
        assert cases >= 200

    def test_bson_corpus_fully_flagged(self):
        cases = 0
        for doc in DOCS:
            img = bson_encode(doc)
            for mutant in self._bson_corpus(img):
                cases += 1
                assert has_errors(verify_bson(mutant)), \
                    f"accepted mutant of {doc!r}"
        assert cases >= 200


class TestAcceptImpliesDecode:
    """Random single-bit flips, fixed seed: whenever the verifier
    accepts the mutant, the decoder must succeed on it."""

    FLIPS_PER_DOC = 400

    def _run(self, encoder, decoder, verifier):
        rng = random.Random(1337)
        accepted = flagged = 0
        for doc in DOCS:
            img = encoder(doc)
            for _ in range(self.FLIPS_PER_DOC):
                byte = rng.randrange(len(img))
                mutant = _flip(img, byte, rng.randrange(8))
                diagnostics = verifier(mutant)
                if has_errors(diagnostics):
                    flagged += 1
                    # flagged images may or may not decode; the decoder
                    # just must fail inside the repro hierarchy
                    _decode_or_repro_error(decoder, mutant)
                else:
                    accepted += 1
                    assert _decode_or_repro_error(decoder, mutant), \
                        f"verifier accepted an undecodable {doc!r} mutant"
        # the corpus must actually exercise both branches
        assert flagged > 0
        return accepted, flagged

    def test_oson(self):
        self._run(oson_encode, oson_decode, verify_oson)

    def test_bson(self):
        self._run(bson_encode, bson_decode, verify_bson)
