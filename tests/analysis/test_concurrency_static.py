"""Static concurrency pass: guard discipline + lock-order graph.

The known-bad fixtures under ``tests/analysis/fixtures/concurrency``
are the acceptance contract: each must be reported with the exact
rule, file and line asserted here.  The annotated product tree must
stay clean — ``test_product_tree_is_clean`` is the regression gate for
``python -m repro.analysis concurrency src/repro``.
"""

import ast
from pathlib import Path

from repro.analysis.concurrency import check_paths
from repro.analysis.concurrency.guards import GuardedMutationRule
from repro.analysis.concurrency.order import (LockOrderAnalyzer,
                                              module_name_for)
from repro.analysis.diagnostics import Severity
from repro.analysis.lint.engine import LintEngine, ModuleContext

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"
SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _lint(source: str, path: str = "mod.py"):
    engine = LintEngine(rules=[GuardedMutationRule()])
    ctx = ModuleContext(path, source, ast.parse(source))
    found, _ = engine.apply_rules(ctx, engine.rules)
    return found


def _order(source: str, path: str = "mod.py"):
    analyzer = LockOrderAnalyzer()
    analyzer.add_module(ModuleContext(path, source, ast.parse(source)))
    return analyzer


class TestBadFixtures:
    """Each known-bad fixture is caught with its exact diagnostics."""

    def test_bad_unguarded_exact_diagnostics(self):
        diagnostics, _ = check_paths([str(FIXTURES / "bad_unguarded.py")])
        findings = [(d.rule, d.line) for d in diagnostics]
        assert findings == [("guarded-mutation", 20),
                            ("guarded-mutation", 37),
                            ("guarded-mutation", 40)]
        assert all(d.severity is Severity.ERROR for d in diagnostics)
        by_line = {d.line: d.message for d in diagnostics}
        assert "'REGISTRY' is guarded-by 'REGISTRY_LOCK'" in by_line[20]
        assert "forget()" in by_line[20]
        assert "Tracker._total is guarded-by '_lock'" in by_line[37]
        assert "inconsistent locking in Tracker" in by_line[40]
        assert "'self._events'" in by_line[40]

    def test_bad_lock_order_cycle_reported(self):
        diagnostics, analyzer = check_paths(
            [str(FIXTURES / "bad_lock_order.py")])
        orders = [d for d in diagnostics if d.rule == "lock-order"]
        assert len(orders) == 1
        diag = orders[0]
        assert diag.severity is Severity.ERROR
        assert "potential deadlock" in diag.message
        assert "LOCK_A" in diag.message and "LOCK_B" in diag.message
        # both AB and BA edges are in the graph with witnesses
        edges = {(e["first"].rsplit(".", 1)[-1],
                  e["second"].rsplit(".", 1)[-1])
                 for e in analyzer.graph()}
        assert ("LOCK_A", "LOCK_B") in edges
        assert ("LOCK_B", "LOCK_A") in edges
        # no guard findings: every BALANCES mutation holds some lock
        assert not [d for d in diagnostics
                    if d.rule == "guarded-mutation"]

    def test_bad_io_hold_static_inversion(self):
        # the io/hold fixture is primarily a sanitizer fixture, but its
        # inverted_runtime_order() is also visible statically
        diagnostics, _ = check_paths([str(FIXTURES / "bad_io_hold.py")])
        assert [d.rule for d in diagnostics] == ["lock-order"]


class TestProductTree:
    def test_product_tree_is_clean(self):
        diagnostics, _ = check_paths([str(SRC)])
        assert diagnostics == [], [d.render() for d in diagnostics]

    def test_product_tree_locks_have_known_kinds(self):
        _, analyzer = check_paths([str(SRC)])
        kinds = analyzer.lock_kinds
        assert kinds.get("repro.obs.locks._STATE_LOCK") == "Lock"
        assert kinds.get("repro.storage.store.CollectionStore._lock") \
            == "Lock"


class TestGuardAnnotations:
    def test_annotated_global_mutation_without_lock(self):
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def bad(k):\n"
            "    STATE[k] = 1\n")
        assert len(found) == 1
        assert found[0].rule == "guarded-mutation"
        assert found[0].line == 5

    def test_annotation_on_own_line_above(self):
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "# guarded-by: LOCK\n"
            "STATE = {}\n"
            "def bad(k):\n"
            "    STATE.update({k: 1})\n")
        assert [d.line for d in found] == [6]

    def test_trailing_comment_does_not_leak_to_next_line(self):
        # the guard on UNDER's line must not annotate FREE below it
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "UNDER = {}  # guarded-by: LOCK\n"
            "FREE = {}\n"
            "def ok(k):\n"
            "    FREE[k] = 1\n")
        assert found == []

    def test_with_lock_region_is_clean(self):
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def good(k):\n"
            "    with LOCK:\n"
            "        STATE[k] = 1\n")
        assert found == []

    def test_guarded_by_decorator_counts_as_held(self):
        found = _lint(
            "import threading\n"
            "from repro.analysis.concurrency import guarded_by\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "@guarded_by('LOCK')\n"
            "def callee(k):\n"
            "    STATE[k] = 1\n")
        assert found == []

    def test_local_shadow_is_not_a_global_mutation(self):
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def local_only():\n"
            "    STATE = {}\n"
            "    STATE['k'] = 1\n"
            "    return STATE\n")
        assert found == []

    def test_init_construction_is_exempt(self):
        found = _lint(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []  # guarded-by: _lock\n"
            "        self._items.append(1)\n")
        assert found == []

    def test_pragma_suppression_applies(self):
        found = _lint(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}  # guarded-by: LOCK\n"
            "def bench_reset(k):\n"
            "    STATE[k] = 1  # lint: ignore[guarded-mutation] bench-only\n")
        assert found == []

    def test_all_unguarded_inference_is_silent(self):
        # a lock-paired container with NO guarded mutation site is not
        # flagged: inference needs inconsistency, not absence
        found = _lint(
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = []\n"
            "    def a(self, x):\n"
            "        self._items.append(x)\n"
            "    def b(self):\n"
            "        self._items.clear()\n")
        assert found == []


class TestLockOrder:
    def test_no_cycle_for_consistent_order(self):
        analyzer = _order(
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def g():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n")
        assert analyzer.finish() == []
        assert len(analyzer.graph()) == 1

    def test_reacquire_of_plain_lock_is_reported(self):
        analyzer = _order(
            "import threading\n"
            "A = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with A:\n"
            "            pass\n")
        diags = analyzer.finish()
        assert [d.rule for d in diags] == ["lock-reacquire"]
        assert diags[0].line == 5
        assert "self-deadlock" in diags[0].message

    def test_reacquire_of_rlock_is_allowed(self):
        analyzer = _order(
            "import threading\n"
            "A = threading.RLock()\n"
            "def f():\n"
            "    with A:\n"
            "        with A:\n"
            "            pass\n")
        assert analyzer.finish() == []

    def test_cross_module_edges_unify_via_imports(self):
        analyzer = LockOrderAnalyzer()
        home = (
            "import threading\n"
            "SHARED = threading.Lock()\n")
        user = (
            "import threading\n"
            "from pkg import home\n"
            "LOCAL = threading.Lock()\n"
            "def f():\n"
            "    with LOCAL:\n"
            "        with home.SHARED:\n"
            "            pass\n")
        analyzer.add_module(ModuleContext(
            "src/pkg/home.py", home, ast.parse(home)))
        analyzer.add_module(ModuleContext(
            "src/pkg/user.py", user, ast.parse(user)))
        edges = analyzer.graph()
        assert edges == [{"first": "pkg.user.LOCAL",
                          "second": "pkg.home.SHARED",
                          "witness": "src/pkg/user.py:6"}]

    def test_module_name_for_strips_src_prefix(self):
        assert module_name_for("src/repro/obs/locks.py") \
            == "repro.obs.locks"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
