"""Targeted corruption tests for the static OSON verifier.

Each test takes a genuine encoder image, surgically breaks exactly one
invariant, and asserts the verifier reports the matching rule id —
without raising, whatever the damage.
"""

from __future__ import annotations

import struct

import pytest

from repro.analysis import has_errors, verify_oson
from repro.core.oson import constants as c
from repro.core.oson import decode, encode

DOCS = [
    {"a": 1},
    {"name": "héllo", "n": 256, "flags": [True, False, None]},
    {"outer": {"inner": {"deep": [1, 2.5, "three"]}}},
    {},
    [1, 2, 3],
    "top-level string",
    {"big": 2**60, "neg": -(2**40), "text": "x" * 300},
]


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


def _header(img: bytes):
    tree_start, value_start, root = struct.unpack_from("<III", img, 8)
    return tree_start, value_start, root


def _patch(img: bytes, offset: int, payload: bytes) -> bytes:
    return img[:offset] + payload + img[offset + len(payload):]


class TestAcceptsEncoderOutput:
    @pytest.mark.parametrize("doc", DOCS, ids=repr)
    def test_clean_and_decodable(self, doc):
        img = encode(doc)
        diagnostics = verify_oson(img)
        assert diagnostics == []
        assert decode(img) == doc


class TestHeader:
    def test_truncated(self):
        assert _rules(verify_oson(b"OSON")) == {"oson.header.truncated"}
        assert _rules(verify_oson(b"")) == {"oson.header.truncated"}

    def test_magic(self):
        img = encode({"a": 1})
        assert _rules(verify_oson(b"NOSO" + img[4:])) == {"oson.header.magic"}

    def test_version(self):
        img = _patch(encode({"a": 1}), 4, bytes([c.VERSION + 1]))
        assert _rules(verify_oson(img)) == {"oson.header.version"}

    def test_reserved(self):
        img = _patch(encode({"a": 1}), 5, b"\x01")
        assert "oson.header.reserved" in _rules(verify_oson(img))

    def test_segment_order(self):
        img = _patch(encode({"a": 1}), 8, struct.pack("<I", 2**24))
        assert _rules(verify_oson(img)) == {"oson.header.segments"}

    def test_root_out_of_range(self):
        img = _patch(encode({"a": 1}), 16, struct.pack("<I", 2**24))
        assert _rules(verify_oson(img)) == {"oson.root.range"}


class TestDictionary:
    def test_hash_mismatch(self):
        img = encode({"a": 1})
        # entry 0's stored hash lives at header + count word
        off = c.HEADER_SIZE + 2
        img = _patch(img, off, bytes([img[off] ^ 0x01]))
        assert "oson.dict.hash" in _rules(verify_oson(img))

    def test_entry_order(self):
        img = encode({"a": 1, "b": 2})
        start = c.HEADER_SIZE
        (count,) = struct.unpack_from("<H", img, start)
        assert count == 2
        entries = img[start + 2:start + 2 + 10]
        blob_start = start + 2 + 10
        len0, len1 = entries[4], entries[9]
        name0 = img[blob_start:blob_start + len0]
        name1 = img[blob_start + len0:blob_start + len0 + len1]
        # swap the entries *and* their names: hashes still match their
        # own name, only the (hash, name) sort order is violated
        swapped = entries[5:] + entries[:5] + name1 + name0
        img = _patch(img, start + 2, swapped)
        diagnostics = verify_oson(img)
        assert "oson.dict.order" in _rules(diagnostics)
        assert "oson.dict.hash" not in _rules(diagnostics)

    def test_name_not_utf8(self):
        img = encode({"a": 1})
        # single 1-byte name sits at the very end of the dictionary
        tree_start, _vs, _root = _header(img)
        img = _patch(img, tree_start - 1, b"\xff")
        assert "oson.dict.utf8" in _rules(verify_oson(img))

    def test_count_overruns_segment(self):
        img = _patch(encode({"a": 1}), c.HEADER_SIZE,
                     struct.pack("<H", 0xFFFF))
        assert _rules(verify_oson(img)) == {"oson.dict.extent"}


class TestTree:
    def test_zero_node_type(self):
        img = encode({"a": 1})
        tree_start, _vs, root = _header(img)
        img = _patch(img, tree_start + root, b"\x00")
        assert "oson.node.type" in _rules(verify_oson(img))

    def test_zero_delta_topology(self):
        img = encode({"a": 1})
        tree_start, _vs, root = _header(img)
        # object root: hdr | u16 count | u16 field id | 1-byte delta
        delta_off = tree_start + root + 3 + 2
        assert img[delta_off] != 0
        img = _patch(img, delta_off, b"\x00")
        assert "oson.tree.topology" in _rules(verify_oson(img))

    def test_field_id_out_of_dictionary(self):
        img = encode({"a": 1})
        tree_start, _vs, root = _header(img)
        img = _patch(img, tree_start + root + 3, struct.pack("<H", 999))
        assert "oson.tree.fieldid" in _rules(verify_oson(img))

    def test_field_ids_not_ascending(self):
        img = encode({"a": 1, "b": 2})
        tree_start, _vs, root = _header(img)
        ids_off = tree_start + root + 3
        id0 = struct.unpack_from("<H", img, ids_off)[0]
        id1 = struct.unpack_from("<H", img, ids_off + 2)[0]
        img = _patch(img, ids_off, struct.pack("<HH", id1, id0))
        assert "oson.tree.fieldid-order" in _rules(verify_oson(img))

    def test_container_count_overruns_segment(self):
        img = encode({"a": 1})
        tree_start, _vs, root = _header(img)
        img = _patch(img, tree_start + root + 1, struct.pack("<H", 0xFFFF))
        assert "oson.tree.bounds" in _rules(verify_oson(img))


class TestScalars:
    def test_string_not_utf8(self):
        img = encode({"s": "hello"})
        # string payload is the last 5 bytes of the value segment
        img = _patch(img, len(img) - 5, b"\xff")
        assert "oson.scalar.utf8" in _rules(verify_oson(img))

    def test_int_not_canonical(self):
        img = encode({"n": 256})
        # payload is little-endian 0x00 0x01 after a 1-byte LEB length;
        # rewrite it to the value 1 stored in two bytes (non-minimal)
        assert img[-2:] == b"\x00\x01"
        img = _patch(img, len(img) - 2, b"\x01\x00")
        assert "oson.scalar.int" in _rules(verify_oson(img))

    def test_packed_decimal_bad_nibble(self):
        from decimal import Decimal
        img = encode({"d": Decimal("1.5")})
        # NUMBER payload: LEB len | flags | BCD digits; 0xAA is no digit
        img = _patch(img, len(img) - 1, b"\xaa")
        assert "oson.scalar.number" in _rules(verify_oson(img))

    def test_leb128_truncated(self):
        img = encode({"s": ""})
        # empty string: value segment is the single LEB byte 0x00;
        # setting its continuation bit runs off the end of the image
        assert img[-1] == 0
        img = _patch(img, len(img) - 1, b"\x80")
        assert "oson.value.leb" in _rules(verify_oson(img))

    def test_float_payload_truncation_is_flagged(self):
        img = encode({"f": 1e300})  # too wide for packed decimal: raw FLOAT
        _ts, value_start, _root = _header(img)
        assert len(img) - value_start == 8
        # shrink the image under the float's 8 raw bytes but keep the
        # header consistent enough to reach the scalar check
        cut = img[:value_start + 4]
        diagnostics = verify_oson(cut)
        assert has_errors(diagnostics)


class TestSlackWarnings:
    """Hand-assembled images with unreferenced bytes: decodable, but
    the verifier must not silently ignore the slack."""

    @staticmethod
    def _image(dictionary: bytes, tree: bytes, values: bytes,
               root: int) -> bytes:
        tree_start = c.HEADER_SIZE + len(dictionary)
        value_start = tree_start + len(tree)
        return (c.MAGIC + bytes([c.VERSION]) + b"\x00\x00\x00"
                + struct.pack("<III", tree_start, value_start, root)
                + dictionary + tree + values)

    def test_tree_slack_warning(self):
        null_hdr = c.NODE_SCALAR | (c.SCALAR_NULL << c.SCALAR_TYPE_SHIFT)
        img = self._image(b"\x00\x00", bytes([0xEE, null_hdr]), b"", root=1)
        diagnostics = verify_oson(img)
        assert not has_errors(diagnostics)
        assert _rules(diagnostics) == {"oson.tree.slack"}
        assert decode(img) is None

    def test_value_slack_warning(self):
        string_hdr = c.NODE_SCALAR | (c.SCALAR_STRING << c.SCALAR_TYPE_SHIFT)
        # offset byte 1 skips the first value byte; payload is LEB(0)
        img = self._image(b"\x00\x00", bytes([string_hdr, 1]),
                          b"\xee\x00", root=0)
        diagnostics = verify_oson(img)
        assert not has_errors(diagnostics)
        assert _rules(diagnostics) == {"oson.value.slack"}
        assert decode(img) == ""

    def test_slack_suppressed_when_errors_present(self):
        null_hdr = c.NODE_SCALAR | (c.SCALAR_NULL << c.SCALAR_TYPE_SHIFT)
        img = self._image(b"\x00\x00", bytes([0xEE, null_hdr]), b"", root=1)
        img = _patch(img, 5, b"\x01")  # reserved-byte error
        diagnostics = verify_oson(img)
        assert has_errors(diagnostics)
        assert "oson.tree.slack" not in _rules(diagnostics)


class TestNeverRaises:
    @pytest.mark.parametrize("doc", DOCS, ids=repr)
    def test_all_truncations_flagged(self, doc):
        img = encode(doc)
        for cut in range(len(img)):
            diagnostics = verify_oson(img[:cut])
            assert has_errors(diagnostics), f"truncation at {cut} accepted"

    def test_garbage(self):
        for blob in (b"\x00" * 64, b"OSON" + b"\xff" * 60, bytes(range(256))):
            verify_oson(blob)  # must not raise


class TestPartialUpdateImages:
    """The verifier must accept partially-updated images: grow-path
    updates legitimately strand dead bytes in the value segment, which
    is a WARNING diagnostic (with a ``wasted_bytes`` stat), never an
    error — and one slack warning must not suppress another."""

    BASE = {"name": "phone", "price": 100, "note": "short",
            "nested": {"qty": 3}, "tags": ["a", "b"]}

    def _grown(self, updates):
        from repro.core.oson import OsonUpdater
        updater = OsonUpdater(encode(self.BASE))
        for path, value in updates:
            updater.set_scalar_by_path(path, value)
        return updater

    def test_grow_path_image_accepted(self):
        updater = self._grown([(["name"], "a much longer product name")])
        img = updater.to_bytes()
        diagnostics = verify_oson(img)
        assert not has_errors(diagnostics), [d.render() for d in diagnostics]
        assert decode(img)["name"] == "a much longer product name"

    def test_dead_space_reported_with_wasted_bytes(self):
        updater = self._grown([(["name"], "a much longer product name")])
        diagnostics = verify_oson(updater.to_bytes())
        slack = [d for d in diagnostics if d.rule == "oson.value.slack"]
        assert len(slack) == 1
        assert slack[0].severity.name == "WARNING"
        assert slack[0].context["wasted_bytes"] > 0

    def test_wasted_bytes_accumulates_across_updates(self):
        one = self._grown([(["name"], "x" * 30)])
        two = self._grown([(["name"], "x" * 30), (["note"], "y" * 40)])

        def wasted(updater):
            for d in verify_oson(updater.to_bytes()):
                if d.rule == "oson.value.slack":
                    return d.context["wasted_bytes"]
            return 0

        assert 0 < wasted(one) < wasted(two)

    def test_warning_does_not_suppress_later_slack(self):
        # regression: the old gate (`if slack and not self.diagnostics`)
        # dropped the value-slack report as soon as ANY earlier
        # diagnostic existed, even a mere warning.  Appending
        # unreferenced bytes after a grow-path update keeps the image
        # decodable while guaranteeing slack is present alongside other
        # diagnostics.
        updater = self._grown([(["name"], "z" * 25)])
        img = updater.to_bytes()
        diagnostics = verify_oson(img)
        assert any(d.rule == "oson.value.slack" for d in diagnostics), \
            "value slack must be reported on a grow-path image"
        assert not has_errors(diagnostics)

    def test_number_class_transitions_accepted(self):
        from decimal import Decimal
        for value in (99.5, Decimal("123456789.125"), 7, -1):
            updater = self._grown([(["price"], value)])
            diagnostics = verify_oson(updater.to_bytes())
            assert not has_errors(diagnostics), \
                (value, [d.render() for d in diagnostics])

    def test_context_serialized_in_to_dict(self):
        updater = self._grown([(["name"], "w" * 30)])
        for d in verify_oson(updater.to_bytes()):
            if d.rule == "oson.value.slack":
                assert d.to_dict()["context"]["wasted_bytes"] == \
                    d.context["wasted_bytes"]
                break
        else:
            raise AssertionError("no slack diagnostic produced")
