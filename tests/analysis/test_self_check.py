"""The analysis subsystem checked against its own codebase.

Linting ``src/repro`` must stay clean: a new violation anywhere in the
tree fails this test, which is exactly how CI enforces the project
invariants.  The lint rules themselves are part of ``src/repro`` — the
framework lints its own implementation.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, Severity, has_errors

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert SRC.is_dir()


def test_lint_src_repro_is_clean():
    diagnostics = LintEngine().lint_paths([str(SRC)])
    errors = [d.render() for d in diagnostics if d.severity is Severity.ERROR]
    assert not has_errors(diagnostics), "\n".join(errors)


def test_analysis_package_lints_itself_clean():
    diagnostics = LintEngine().lint_paths([str(SRC / "analysis")])
    assert not has_errors(diagnostics), \
        "\n".join(d.render() for d in diagnostics)
