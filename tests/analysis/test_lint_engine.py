"""Fixture tests for the AST lint engine and every shipped rule.

Each rule is exercised positively (a violation fixture it must flag)
and negatively (a conforming fixture it must leave alone), plus the
engine mechanics: pragma suppression, stale/unjustified pragmas, path
scoping, and robustness on unparsable input.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import LintEngine, Severity
from repro.analysis.lint.rules import ALL_RULES

#: a path inside every scoped rule's scope; scope-free rules run anywhere
BINARY_PATH = "src/repro/core/oson/fixture.py"


def lint(source: str, path: str = BINARY_PATH):
    return LintEngine().lint_source(textwrap.dedent(source), path)


def rules_of(diagnostics):
    return {d.rule for d in diagnostics}


class TestRuleRegistry:
    def test_at_least_eight_distinct_rules(self):
        ids = {rule.rule_id for rule in ALL_RULES}
        assert len(ids) >= 8
        assert len(ids) == len(ALL_RULES)

    def test_every_rule_documents_itself(self):
        for rule in ALL_RULES:
            assert rule.rule_id
            assert rule.description


class TestBroadExcept:
    def test_flags_bare_except(self):
        src = """
        try:
            x = 1
        except:
            x = 2
        """
        assert "broad-except" in rules_of(lint(src))

    def test_flags_exception_and_tuple(self):
        src = """
        try:
            x = 1
        except (ValueError, Exception):
            x = 2
        """
        assert "broad-except" in rules_of(lint(src))

    def test_allows_narrow_handler(self):
        src = """
        try:
            x = 1
        except ValueError:
            x = 2
        """
        assert "broad-except" not in rules_of(lint(src))


class TestSilentExcept:
    def test_flags_pass_body(self):
        src = """
        try:
            x = 1
        except ValueError:
            pass
        """
        assert "silent-except" in rules_of(lint(src))

    def test_allows_handled_exception(self):
        src = """
        try:
            x = 1
        except ValueError:
            x = None
        """
        assert "silent-except" not in rules_of(lint(src))


class TestRaiseBuiltin:
    def test_flags_builtin_raise_in_binary_scope(self):
        src = """
        def f():
            raise ValueError("boom")
        """
        assert "raise-builtin" in rules_of(lint(src))

    def test_allows_repro_error(self):
        src = """
        from repro.errors import OsonError
        def f():
            raise OsonError("boom")
        """
        assert "raise-builtin" not in rules_of(lint(src))

    def test_allows_not_implemented(self):
        src = """
        def f():
            raise NotImplementedError
        """
        assert "raise-builtin" not in rules_of(lint(src))

    def test_scoped_out_of_engine_code(self):
        src = """
        def f():
            raise ValueError("fine outside binary-format code")
        """
        assert "raise-builtin" not in rules_of(
            lint(src, "src/repro/engine/fixture.py"))


class TestMutableDefault:
    def test_flags_literal_and_call_defaults(self):
        src = """
        def f(a=[], b=dict()):
            return a, b
        """
        found = [d for d in lint(src) if d.rule == "mutable-default"]
        assert len(found) == 2

    def test_flags_keyword_only_default(self):
        src = """
        def f(*, cache={}):
            return cache
        """
        assert "mutable-default" in rules_of(lint(src))

    def test_allows_none_and_tuple(self):
        src = """
        def f(a=None, b=(), *, c="x"):
            return a, b, c
        """
        assert "mutable-default" not in rules_of(lint(src))


class TestUnguardedRead:
    def test_flags_unpack_without_guard(self):
        src = """
        import struct
        def f(buffer, pos):
            return struct.unpack_from("<I", buffer, pos)[0]
        """
        assert "unguarded-read" in rules_of(lint(src))

    def test_flags_buffer_subscript_without_guard(self):
        src = """
        def f(data, pos):
            return data[pos]
        """
        assert "unguarded-read" in rules_of(lint(src))

    def test_len_check_counts_as_guard(self):
        src = """
        import struct
        from repro.errors import OsonError
        def f(buffer, pos):
            if pos + 4 > len(buffer):
                raise OsonError("truncated")
            return struct.unpack_from("<I", buffer, pos)[0]
        """
        assert "unguarded-read" not in rules_of(lint(src))

    def test_checking_helper_counts_as_guard(self):
        src = """
        def f(self, data, pos):
            self.check_bounds(pos, 4)
            return data[pos]
        """
        assert "unguarded-read" not in rules_of(lint(src))

    def test_scoped_out_of_non_binary_code(self):
        src = """
        def f(data, pos):
            return data[pos]
        """
        assert "unguarded-read" not in rules_of(
            lint(src, "src/repro/engine/fixture.py"))


class TestDispatch:
    def test_flags_partial_chain_without_catch_all(self):
        src = """
        from repro.core.oson import constants as c
        def dispatch(node_type):
            if node_type == c.NODE_OBJECT:
                return "object"
            elif node_type == c.NODE_ARRAY:
                return "array"
        """
        found = [d for d in lint(src) if d.rule == "dispatch"]
        assert len(found) == 1
        assert "NODE_SCALAR" in found[0].message

    def test_full_coverage_is_clean(self):
        src = """
        from repro.core.oson import constants as c
        def dispatch(node_type):
            if node_type == c.NODE_OBJECT:
                return "object"
            elif node_type == c.NODE_ARRAY:
                return "array"
            elif node_type == c.NODE_SCALAR:
                return "scalar"
        """
        assert "dispatch" not in rules_of(lint(src))

    def test_catch_all_else_is_clean(self):
        src = """
        from repro.core.oson import constants as c
        def dispatch(node_type):
            if node_type == c.NODE_OBJECT:
                return "object"
            elif node_type == c.NODE_ARRAY:
                return "array"
            else:
                return "unknown"
        """
        assert "dispatch" not in rules_of(lint(src))

    def test_trailing_raise_is_a_catch_all(self):
        src = """
        from repro.core.oson import constants as c
        from repro.errors import OsonError
        def dispatch(node_type):
            if node_type == c.NODE_OBJECT:
                return "object"
            if node_type == c.NODE_ARRAY:
                return "array"
            raise OsonError("bad node type")
        """
        assert "dispatch" not in rules_of(lint(src))

    def test_frozenset_membership_expands(self):
        src = """
        from repro.core.oson import constants as c
        def dispatch(scalar_type):
            if scalar_type in c.INLINE_SCALARS:
                return "inline"
            elif scalar_type == c.SCALAR_FLOAT:
                return "float"
        """
        found = [d for d in lint(src) if d.rule == "dispatch"]
        assert len(found) == 1
        # INLINE_SCALARS + FLOAT covers 4 of 8 scalar opcodes
        assert "SCALAR_STRING" in found[0].message

    def test_bson_type_table(self):
        src = """
        from repro.bson import constants as c
        def dispatch(tag):
            if tag == c.TYPE_INT32:
                return 4
            elif tag == c.TYPE_INT64:
                return 8
        """
        found = [d for d in lint(src) if d.rule == "dispatch"]
        assert len(found) == 1
        assert "TYPE_STRING" in found[0].message


class TestUnusedImport:
    def test_flags_unused(self):
        src = """
        import os
        import sys
        print(sys.argv)
        """
        found = [d for d in lint(src) if d.rule == "unused-import"]
        assert len(found) == 1
        assert "'os'" in found[0].message

    def test_all_reexport_counts_as_use(self):
        src = """
        from repro.errors import OsonError
        __all__ = ["OsonError"]
        """
        assert "unused-import" not in rules_of(lint(src))

    def test_init_py_is_exempt(self):
        src = "from repro.errors import OsonError\n"
        assert "unused-import" not in rules_of(
            lint(src, "src/repro/core/oson/__init__.py"))

    def test_all_augmented_assign_counts_as_use(self):
        src = """
        from repro.errors import OsonError
        __all__ = []
        __all__ += ["OsonError"]
        """
        assert "unused-import" not in rules_of(lint(src))

    def test_all_extend_and_append_count_as_use(self):
        src = """
        from repro.errors import OsonError, StorageError
        __all__ = []
        __all__.extend(["OsonError"])
        __all__.append("StorageError")
        """
        assert "unused-import" not in rules_of(lint(src))

    def test_type_checking_import_used_in_string_annotation(self):
        src = """
        from typing import TYPE_CHECKING
        if TYPE_CHECKING:
            from repro.core.dataguide.guide import DataGuide

        def f(guide: "DataGuide") -> "DataGuide":
            return guide
        """
        assert "unused-import" not in rules_of(lint(src))

    def test_quoted_annotation_inside_generic_counts_as_use(self):
        src = """
        from typing import TYPE_CHECKING, Optional
        if TYPE_CHECKING:
            from repro.core.dataguide.guide import DataGuide

        def f(guide: Optional["DataGuide"]) -> None:
            return None
        """
        assert "unused-import" not in rules_of(lint(src))

    def test_type_checking_import_never_referenced_still_flagged(self):
        src = """
        from typing import TYPE_CHECKING
        if TYPE_CHECKING:
            from repro.core.dataguide.guide import DataGuide

        def f(x):
            return x
        """
        found = [d for d in lint(src) if d.rule == "unused-import"]
        assert len(found) == 1
        assert "'DataGuide'" in found[0].message


class TestGuardedMutation:
    """Smoke coverage for the concurrency guard rule through the full
    engine; the deep fixtures live in test_concurrency_static.py."""

    def test_flags_unguarded_mutation_of_annotated_global(self):
        src = """
        import threading
        LOCK = threading.Lock()
        STATE = {}  # guarded-by: LOCK

        def bad(key):
            STATE[key] = 1
        """
        found = [d for d in lint(src) if d.rule == "guarded-mutation"]
        assert len(found) == 1
        assert "guarded-by 'LOCK'" in found[0].message

    def test_guarded_mutation_is_clean(self):
        src = """
        import threading
        LOCK = threading.Lock()
        STATE = {}  # guarded-by: LOCK

        def good(key):
            with LOCK:
                STATE[key] = 1
        """
        assert "guarded-mutation" not in rules_of(lint(src))


class TestEngineSinglePass:
    def test_rule_timings_cover_every_applicable_rule(self):
        engine = LintEngine()
        engine.lint_paths([])  # reset, no files
        assert engine.rule_timings_ms == {}
        engine.lint_source("import os\n", BINARY_PATH)
        assert set(engine.rule_timings_ms) == {
            rule.rule_id for rule in ALL_RULES
            if rule.applies_to(BINARY_PATH)}
        assert all(ms >= 0 for ms in engine.rule_timings_ms.values())

    def test_stats_count_files_and_suppressions(self):
        engine = LintEngine()
        engine.lint_source(
            "import os  # lint: ignore[unused-import] fixture\n",
            BINARY_PATH)
        engine.lint_source("x = 1\n", BINARY_PATH)
        assert engine.stats["files"] == 2
        assert engine.stats["suppressed"] == 1
        assert engine.stats["suppressed_rules"] == {"unused-import": 1}

    def test_nodes_index_matches_fresh_walk(self):
        import ast as ast_mod
        from repro.analysis.lint.engine import ModuleContext
        source = ("def f():\n"
                  "    try:\n"
                  "        return g()\n"
                  "    except ValueError:\n"
                  "        raise\n")
        ctx = ModuleContext("m.py", source, ast_mod.parse(source))
        walked = [n for n in ast_mod.walk(ctx.tree)
                  if isinstance(n, ast_mod.Call)]
        assert ctx.nodes(ast_mod.Call) == walked
        assert ctx.nodes(ast_mod.Call, ast_mod.Raise) == \
            walked + ctx.nodes(ast_mod.Raise)
        assert ctx.nodes(ast_mod.AsyncFunctionDef) == []


class TestNoAssert:
    def test_flags_assert_in_library_code(self):
        src = """
        def f(x):
            assert x > 0
            return x
        """
        assert "no-assert" in rules_of(lint(src, "src/repro/fixture.py"))

    def test_tests_are_out_of_scope(self):
        src = """
        def test_f():
            assert 1 + 1 == 2
        """
        assert "no-assert" not in rules_of(lint(src, "tests/fixture.py"))


class TestPragmas:
    def test_same_line_suppression(self):
        src = """
        try:
            x = 1
        except Exception:  # lint: ignore[broad-except] fixture justification
            x = 2
        """
        assert "broad-except" not in rules_of(lint(src))

    def test_next_line_suppression(self):
        src = """
        def f():
            # lint: ignore[raise-builtin] fixture justification
            raise ValueError("boom")
        """
        assert "raise-builtin" not in rules_of(lint(src))

    def test_unjustified_pragma_is_an_error(self):
        src = """
        try:
            x = 1
        except Exception:  # lint: ignore[broad-except]
            x = 2
        """
        diagnostics = lint(src)
        pragma = [d for d in diagnostics if d.rule == "lint.pragma"]
        assert len(pragma) == 1
        assert pragma[0].severity is Severity.ERROR

    def test_stale_pragma_is_a_warning(self):
        src = """
        x = 1  # lint: ignore[broad-except] nothing here to suppress
        """
        diagnostics = lint(src)
        pragma = [d for d in diagnostics if d.rule == "lint.pragma"]
        assert len(pragma) == 1
        assert pragma[0].severity is Severity.WARNING

    def test_pragma_in_string_literal_is_not_a_pragma(self):
        src = '''
        DOC = """example: # lint: ignore[broad-except] not a real pragma"""
        '''
        assert rules_of(lint(src)) == set()

    def test_pragma_only_suppresses_named_rule(self):
        src = """
        try:
            x = 1
        except Exception:  # lint: ignore[silent-except] wrong rule named
            pass
        """
        assert "broad-except" in rules_of(lint(src))


class TestDomMaterialize:
    HOT_PATH = "src/repro/sqljson/operators.py"

    def test_flags_materialize_in_hot_path(self):
        src = """
        def json_value_slow(adapter, node):
            return adapter.materialize(node)
        """
        assert "dom-materialize" in rules_of(lint(src, self.HOT_PATH))

    def test_flags_bare_decode_call(self):
        src = """
        def json_value_slow(doc):
            return decode(doc)
        """
        assert "dom-materialize" in rules_of(lint(src, self.HOT_PATH))

    def test_justified_pragma_suppresses(self):
        src = """
        def values(adapter, node):
            # lint: ignore[dom-materialize] output values must decode
            return adapter.materialize(node)
        """
        assert "dom-materialize" not in rules_of(lint(src, self.HOT_PATH))

    def test_navigation_is_clean(self):
        src = """
        def json_value_fast(doc, program, resolver):
            nodes = navigate(doc, program, resolver=resolver)
            return [doc.scalar_value(n) for n in nodes]
        """
        assert "dom-materialize" not in rules_of(lint(src, self.HOT_PATH))

    def test_adapter_and_decoder_modules_are_out_of_scope(self):
        src = """
        def materialize_all(adapter, node):
            return adapter.materialize(node)
        """
        for path in ("src/repro/sqljson/adapters.py",
                     "src/repro/core/oson/decoder.py"):
            assert "dom-materialize" not in rules_of(lint(src, path))

    def test_shipped_hot_paths_are_clean_or_justified(self):
        diagnostics = LintEngine().lint_paths(["src/repro/sqljson"])
        assert "dom-materialize" not in rules_of(diagnostics)


class TestEngineMechanics:
    def test_syntax_error_is_reported_not_raised(self):
        diagnostics = lint("def f(:\n")
        assert rules_of(diagnostics) == {"lint.syntax"}
        assert diagnostics[0].severity is Severity.ERROR

    def test_unreadable_file_is_reported(self):
        engine = LintEngine()
        diagnostics = engine.lint_file("/nonexistent/fixture.py")
        assert rules_of(diagnostics) == {"lint.io"}

    def test_directory_walk_and_sorted_output(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "b.py").write_text("def f(a=[]):\n    return a\n")
        (pkg / "a.py").write_text("import os\n")
        hidden = pkg / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("import os\n")
        diagnostics = LintEngine().lint_paths([str(tmp_path)])
        assert [d.rule for d in diagnostics] == ["unused-import",
                                                 "mutable-default"]
        assert all(".hidden" not in (d.path or "") for d in diagnostics)

    def test_diagnostics_carry_location(self):
        src = """
        def f(a=[]):
            return a
        """
        (diag,) = [d for d in lint(src) if d.rule == "mutable-default"]
        assert diag.path == BINARY_PATH
        assert diag.line == 2
        rendered = diag.render()
        assert BINARY_PATH in rendered
        assert "mutable-default" in rendered


@pytest.mark.parametrize("rule_id", sorted({r.rule_id for r in ALL_RULES}))
def test_every_registered_rule_has_a_fixture_test(rule_id):
    """Meta-test: the classes above must exercise each registered rule."""
    import pathlib
    source = pathlib.Path(__file__).read_text(encoding="utf-8")
    assert f'"{rule_id}"' in source


class TestDirectTime:
    INSTRUMENTED = "src/repro/engine/executor.py"

    def test_flags_perf_counter_call(self):
        src = """
        def run(batch):
            start = time.perf_counter()
            return start
        """
        assert "direct-time" in rules_of(lint(src, self.INSTRUMENTED))

    def test_flags_time_import(self):
        src = """
        import time
        """
        assert "direct-time" in rules_of(lint(src, self.INSTRUMENTED))

    def test_flags_from_time_import(self):
        src = """
        from time import perf_counter
        """
        assert "direct-time" in rules_of(lint(src, self.INSTRUMENTED))

    def test_project_clock_is_clean(self):
        src = """
        from repro.obs import trace as _trace

        def run(batch):
            start = _trace.monotonic()
            return start
        """
        assert "direct-time" not in rules_of(lint(src, self.INSTRUMENTED))

    def test_obs_and_benchmarks_are_out_of_scope(self):
        src = """
        import time

        def now():
            return time.perf_counter()
        """
        for path in ("src/repro/obs/trace.py",
                     "benchmarks/test_obs_overhead.py",
                     "src/repro/jsontext/parser.py"):
            assert "direct-time" not in rules_of(lint(src, path))

    # -- sleep-only tier: all product code outside repro/obs ----------------

    def test_flags_bare_sleep_in_retry_path(self):
        # known-bad fixture: a hand-rolled backoff loop sleeping on the
        # wall clock instead of repro.obs.clock (seeded, virtualizable)
        src = """
        import time

        def write_with_retry(call, attempts=3):
            for attempt in range(attempts):
                try:
                    return call()
                except OSError:
                    time.sleep(0.004 * (2 ** attempt))
        """
        assert "direct-time" in rules_of(
            lint(src, "src/repro/storage/retry_helper.py"))

    def test_flags_from_time_import_sleep_everywhere(self):
        src = """
        from time import sleep

        def wait(seconds):
            sleep(seconds)
        """
        assert "direct-time" in rules_of(
            lint(src, "src/repro/engine/scatter.py"))

    def test_clock_reads_stay_legal_outside_strict_scopes(self):
        src = """
        import time

        def now():
            return time.perf_counter()
        """
        assert "direct-time" not in rules_of(
            lint(src, "src/repro/storage/shard.py"))

    def test_project_clock_home_may_sleep(self):
        src = """
        import time

        def sleep(seconds):
            time.sleep(seconds)
        """
        assert "direct-time" not in rules_of(
            lint(src, "src/repro/obs/clock.py"))

    def test_shipped_instrumented_modules_are_clean(self):
        diagnostics = LintEngine().lint_paths(
            ["src/repro/engine", "src/repro/sqljson", "src/repro/storage",
             "src/repro/imc", "src/repro/core/oson"])
        assert "direct-time" not in rules_of(diagnostics)
