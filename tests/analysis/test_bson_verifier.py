"""Targeted corruption tests for the static BSON verifier."""

from __future__ import annotations

import struct

import pytest

from repro.analysis import has_errors, verify_bson
from repro.bson import constants as c
from repro.bson import decode, encode

DOCS = [
    {"a": 1},
    {"name": "héllo", "n": 2**40, "f": 2.5, "t": True, "z": None},
    {"outer": {"inner": [1, "two", {"three": 3}]}},
    {},
    [1, 2, 3],
    "top-level string",
    42,
]


def _rules(diagnostics):
    return {d.rule for d in diagnostics}


def _patch(img: bytes, offset: int, payload: bytes) -> bytes:
    return img[:offset] + payload + img[offset + len(payload):]


class TestAcceptsEncoderOutput:
    @pytest.mark.parametrize("doc", DOCS, ids=repr)
    def test_clean_and_decodable(self, doc):
        img = encode(doc)
        assert verify_bson(img) == []
        assert decode(img) == doc


class TestFraming:
    def test_too_short(self):
        assert _rules(verify_bson(b"\x05\x00")) == {"bson.length"}
        assert _rules(verify_bson(b"")) == {"bson.length"}

    def test_length_word_overruns_buffer(self):
        img = encode({"a": 1})
        img = _patch(img, 0, struct.pack("<i", len(img) + 7))
        assert _rules(verify_bson(img)) == {"bson.length"}

    def test_negative_length_word(self):
        img = _patch(encode({"a": 1}), 0, struct.pack("<i", -1))
        assert _rules(verify_bson(img)) == {"bson.length"}

    def test_missing_trailing_nul(self):
        img = encode({"a": 1})
        img = _patch(img, len(img) - 1, b"\x07")
        assert "bson.trailer" in _rules(verify_bson(img))

    def test_trailing_slack_is_error(self):
        img = encode({"a": 1}) + b"\x00\x00"
        assert "bson.slack" in _rules(verify_bson(img))

    def test_truncations_always_flagged(self):
        for doc in DOCS:
            img = encode(doc)
            for cut in range(len(img)):
                assert has_errors(verify_bson(img[:cut]))


class TestElements:
    def test_unknown_type_tag(self):
        img = encode({"a": 1})
        assert img[4] == c.TYPE_INT32
        img = _patch(img, 4, b"\x7e")
        assert "bson.type" in _rules(verify_bson(img))

    def test_field_name_not_utf8(self):
        img = encode({"a": 1})
        assert img[5:7] == b"a\x00"
        img = _patch(img, 5, b"\xff")
        assert "bson.name" in _rules(verify_bson(img))

    def test_array_keys_not_canonical(self):
        img = encode({"a": [7, 8]})
        marker = bytes([c.TYPE_INT32]) + b"1\x00"
        pos = img.index(marker)
        img = _patch(img, pos + 1, b"9")
        assert "bson.array.keys" in _rules(verify_bson(img))

    def test_boolean_byte_out_of_domain(self):
        img = encode({"b": True})
        # layout: i32 len | 0x08 'b' 0x00 | value | 0x00
        assert img[-2] == 1
        img = _patch(img, len(img) - 2, b"\x02")
        assert "bson.boolean" in _rules(verify_bson(img))


class TestStrings:
    def test_zero_length(self):
        img = encode({"s": "hi"})
        pos = img.index(bytes([c.TYPE_STRING]) + b"s\x00") + 3
        img = _patch(img, pos, struct.pack("<i", 0))
        assert "bson.string" in _rules(verify_bson(img))

    def test_length_overruns_document(self):
        img = encode({"s": "hi"})
        pos = img.index(bytes([c.TYPE_STRING]) + b"s\x00") + 3
        img = _patch(img, pos, struct.pack("<i", 1000))
        assert "bson.string" in _rules(verify_bson(img))

    def test_missing_payload_nul(self):
        img = encode({"s": "hi"})
        pos = img.index(bytes([c.TYPE_STRING]) + b"s\x00") + 3
        # payload "hi\x00" follows the length word
        img = _patch(img, pos + 4 + 2, b"\x21")
        assert "bson.string" in _rules(verify_bson(img))

    def test_payload_not_utf8(self):
        img = encode({"s": "hi"})
        pos = img.index(bytes([c.TYPE_STRING]) + b"s\x00") + 3
        img = _patch(img, pos + 4, b"\xff")
        assert "bson.string" in _rules(verify_bson(img))


class TestNesting:
    @staticmethod
    def _nested(depth: int) -> bytes:
        doc = b"\x05\x00\x00\x00\x00"
        for _ in range(depth):
            body = bytes([c.TYPE_DOCUMENT]) + b"a\x00" + doc
            doc = struct.pack("<i", 4 + len(body) + 1) + body + b"\x00"
        return doc

    def test_depth_within_limit_is_clean(self):
        assert verify_bson(self._nested(50)) == []

    def test_depth_limit_reported_not_followed(self):
        assert "bson.depth" in _rules(verify_bson(self._nested(260)))

    def test_nested_length_word_corruption(self):
        img = encode({"a": {"b": 1}})
        inner = img.index(bytes([c.TYPE_DOCUMENT]) + b"a\x00") + 3
        img = _patch(img, inner, struct.pack("<i", 1000))
        assert "bson.length" in _rules(verify_bson(img))


class TestNeverRaises:
    def test_garbage(self):
        for blob in (b"\x00" * 64, bytes(range(256)),
                     b"\x10\x00\x00\x00" + b"\xff" * 12):
            verify_bson(blob)  # must not raise
