"""Hypothesis fuzzing of the verifiers against the decoders.

Properties, for arbitrary generated documents and mutations:

* the verifier never raises — diagnostics are its only failure channel;
* every truncation of a valid image is flagged AND the decoder rejects
  it with a repro error (never ``IndexError`` / ``struct.error`` /
  ``UnicodeDecodeError`` / silent wrong data);
* under arbitrary byte stomps the decoder either succeeds or raises a
  repro error, and whenever the verifier accepts, the decoder succeeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import has_errors, verify_bson, verify_oson
from repro.bson import decode as bson_decode
from repro.bson import encode as bson_encode
from repro.core.oson import decode as oson_decode
from repro.core.oson import encode as oson_encode
from repro.errors import BinaryFormatError, BsonError, OsonError, ReproError

from tests.strategies import json_documents


def _truncate(img: bytes, fraction: float) -> bytes:
    return img[:int(len(img) * fraction)]


def _stomp(img: bytes, position: float, value: int) -> bytes:
    at = int((len(img) - 1) * position)
    return img[:at] + bytes([value]) + img[at + 1:]


class TestOson:
    @given(json_documents(max_leaves=12))
    @settings(max_examples=60, deadline=None)
    def test_encoder_output_verifies_clean(self, doc):
        img = oson_encode(doc)
        assert verify_oson(img) == []
        assert oson_decode(img) == doc

    @given(json_documents(max_leaves=10), st.floats(0, 0.999))
    @settings(max_examples=120, deadline=None)
    def test_truncation_flagged_and_rejected(self, doc, fraction):
        img = _truncate(oson_encode(doc), fraction)
        assert has_errors(verify_oson(img))
        try:
            oson_decode(img)
        except OsonError as exc:
            assert isinstance(exc, BinaryFormatError)
        else:  # pragma: no cover - a failure branch
            raise AssertionError("decoder accepted a truncated image")

    @given(json_documents(max_leaves=10), st.floats(0, 1),
           st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_stomp_never_crashes_and_accept_implies_decode(
            self, doc, position, value):
        img = _stomp(oson_encode(doc), position, value)
        diagnostics = verify_oson(img)  # must not raise
        try:
            oson_decode(img)
        except ReproError:
            assert has_errors(diagnostics), \
                "verifier accepted an image the decoder rejects"


def _bson_normalize(value):
    """BSON stores ints beyond the int64 range as doubles."""
    if isinstance(value, dict):
        return {k: _bson_normalize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_bson_normalize(v) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and not -(2**63) <= value < 2**63:
        return float(value)
    return value


class TestBson:
    @given(json_documents(max_leaves=12))
    @settings(max_examples=60, deadline=None)
    def test_encoder_output_verifies_clean(self, doc):
        img = bson_encode(doc)
        assert verify_bson(img) == []
        assert bson_decode(img) == _bson_normalize(doc)

    @given(json_documents(max_leaves=10), st.floats(0, 0.999))
    @settings(max_examples=120, deadline=None)
    def test_truncation_flagged_and_rejected(self, doc, fraction):
        img = _truncate(bson_encode(doc), fraction)
        assert has_errors(verify_bson(img))
        try:
            bson_decode(img)
        except BsonError as exc:
            assert isinstance(exc, BinaryFormatError)
        else:  # pragma: no cover - a failure branch
            raise AssertionError("decoder accepted a truncated image")

    @given(json_documents(max_leaves=10), st.floats(0, 1),
           st.integers(0, 255))
    @settings(max_examples=200, deadline=None)
    def test_stomp_never_crashes_and_accept_implies_decode(
            self, doc, position, value):
        img = _stomp(bson_encode(doc), position, value)
        diagnostics = verify_bson(img)  # must not raise
        try:
            bson_decode(img)
        except ReproError:
            assert has_errors(diagnostics), \
                "verifier accepted an image the decoder rejects"
