"""Tests for the BSON encoder/decoder baseline."""

import struct

import pytest
from hypothesis import given

from repro import bson
from repro.bson.decoder import BsonDocument
from repro.errors import BsonError
from tests.strategies import json_documents, json_values


class TestRoundTrip:
    def test_flat_document(self):
        doc = {"a": 1, "b": "two", "c": 2.5, "d": True, "e": None}
        assert bson.decode(bson.encode(doc)) == doc

    def test_nested(self):
        doc = {"a": {"b": [1, {"c": "deep"}]}}
        assert bson.decode(bson.encode(doc)) == doc

    def test_top_level_scalars_wrapped(self):
        for value in [1, "x", None, True, 2.5, [1, 2]]:
            assert bson.decode(bson.encode(value)) == value

    def test_int32_int64_double_boundaries(self):
        for value in [0, 2**31 - 1, -(2**31), 2**31, 2**63 - 1, -(2**63)]:
            assert bson.decode(bson.encode({"v": value})) == {"v": value}

    def test_oversized_int_degrades_to_double(self):
        out = bson.decode(bson.encode({"v": 2**80}))
        assert out["v"] == float(2**80)

    def test_unicode(self):
        doc = {"näme": "välüe ☃"}
        assert bson.decode(bson.encode(doc)) == doc

    def test_empty_containers(self):
        assert bson.decode(bson.encode({})) == {}
        assert bson.decode(bson.encode({"a": [], "b": {}})) == {"a": [], "b": {}}

    @given(json_documents())
    def test_roundtrip_property(self, doc):
        decoded = bson.decode(bson.encode(doc))
        assert _normalize(decoded) == _normalize(doc)

    @given(json_values())
    def test_any_value_roundtrip(self, value):
        assert _normalize(bson.decode(bson.encode(value))) == _normalize(value)


def _normalize(value):
    """BSON stores big ints as doubles; normalize for comparison."""
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and not -(2**63) <= value < 2**63:
        return float(value)
    return value


class TestEncodeErrors:
    def test_non_string_key(self):
        with pytest.raises(BsonError):
            bson.encode({1: "x"})

    def test_nul_in_key(self):
        with pytest.raises(BsonError):
            bson.encode({"a\x00b": 1})

    def test_unsupported_type(self):
        with pytest.raises(BsonError):
            bson.encode({"a": object()})


class TestNavigation:
    DOC = {"name": "phone", "price": 100, "tags": ["a", "b", "c"],
           "vendor": {"id": 7, "city": "SF"}}

    def _doc(self):
        return BsonDocument(bson.encode(self.DOC))

    def test_find_field_scalar(self):
        node = self._doc().find_field("price")
        assert node.scalar_value() == 100

    def test_find_field_missing(self):
        assert self._doc().find_field("nope") is None

    def test_find_field_container(self):
        node = self._doc().find_field("vendor")
        child = node.as_document()
        assert child.find_field("city").scalar_value() == "SF"

    def test_array_element_at(self):
        tags = self._doc().find_field("tags").as_document()
        assert tags.is_array
        assert tags.element_at(1).scalar_value() == "b"
        assert tags.element_at(5) is None
        assert tags.element_count() == 3

    def test_iter_elements_order(self):
        names = [name for name, _ in self._doc().iter_elements()]
        assert names == ["name", "price", "tags", "vendor"]

    def test_skip_navigation_reaches_late_fields(self):
        # a find for the last field must skip the containers before it
        doc = {"big": {"x": list(range(100))}, "last": 42}
        node = BsonDocument(bson.encode(doc)).find_field("last")
        assert node.scalar_value() == 42

    def test_scalar_value_on_container_raises(self):
        node = self._doc().find_field("vendor")
        with pytest.raises(BsonError):
            node.scalar_value()

    def test_as_document_on_scalar_raises(self):
        node = self._doc().find_field("price")
        with pytest.raises(BsonError):
            node.as_document()


class TestMalformed:
    def test_too_short(self):
        with pytest.raises(BsonError):
            BsonDocument(b"\x01\x02")

    def test_bad_length_word(self):
        data = struct.pack("<i", 100) + b"\x00" * 4
        with pytest.raises(BsonError):
            BsonDocument(data)

    def test_unknown_type_tag(self):
        good = bytearray(bson.encode({"a": 1}))
        good[4] = 0x7F  # corrupt the element type tag
        with pytest.raises(BsonError):
            BsonDocument(bytes(good)).materialize()
