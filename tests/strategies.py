"""Shared hypothesis strategies for JSON-shaped values."""

from hypothesis import strategies as st

#: text without lone surrogates (not encodable to UTF-8)
json_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30)

#: object keys: additionally NUL-free (BSON cannot store NUL in field
#: names — its names are NUL-terminated cstrings)
json_keys = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\x00"),
    max_size=30)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    json_text,
)


def json_values(max_leaves: int = 25):
    """Arbitrary JSON values: scalars, arrays, objects, nested."""
    return st.recursive(
        json_scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=6),
            st.dictionaries(json_keys, children, max_size=6),
        ),
        max_leaves=max_leaves,
    )


def json_documents(max_leaves: int = 25):
    """JSON values that are objects at the top level (documents)."""
    return st.dictionaries(json_keys, json_values(max_leaves), max_size=8)
