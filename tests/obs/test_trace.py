"""Unit tests for the contextvar tracer: nesting, ring buffer, kill
switch, child capping, and schema-valid exports."""

import threading

import pytest

from repro.obs import trace
from repro.obs.schema import validate_trace_export
from repro.obs.trace import (
    MAX_CHILDREN,
    NOOP_SPAN,
    Span,
    current_span,
    export_traces,
    peek_spans,
    set_tracing_enabled,
    span,
    take_spans,
    tracing_enabled,
)


@pytest.fixture
def tracing():
    previous = set_tracing_enabled(True)
    take_spans()  # start from an empty ring
    yield
    set_tracing_enabled(previous)
    take_spans()


class TestKillSwitch:
    def test_disabled_span_is_shared_noop(self):
        previous = set_tracing_enabled(False)
        try:
            assert span("a") is span("b") is NOOP_SPAN
            with span("a") as s:
                s.record("rows", 1)
                s.annotate(op="FILTER")
            assert take_spans() == []
        finally:
            set_tracing_enabled(previous)

    def test_set_returns_previous_state(self):
        previous = set_tracing_enabled(True)
        try:
            assert set_tracing_enabled(False) is True
            assert set_tracing_enabled(previous) is False
        finally:
            set_tracing_enabled(previous)
            take_spans()

    def test_tracing_enabled_reports_flag(self):
        previous = set_tracing_enabled(True)
        try:
            assert tracing_enabled() is True
            set_tracing_enabled(False)
            assert tracing_enabled() is False
        finally:
            set_tracing_enabled(previous)
            take_spans()


class TestNesting:
    def test_children_attach_to_parent(self, tracing):
        with span("query") as q:
            with span("operator") as op:
                with span("navigate"):
                    pass
            assert op in q.children
        roots = take_spans()
        assert [s.name for s in roots] == ["query"]
        assert [c.name for c in roots[0].children] == ["operator"]
        assert [g.name for g in roots[0].children[0].children] == ["navigate"]

    def test_current_span_is_innermost(self, tracing):
        assert current_span() is NOOP_SPAN
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is NOOP_SPAN

    def test_sibling_roots_both_recorded(self, tracing):
        with span("first"):
            pass
        with span("second"):
            pass
        assert [s.name for s in take_spans()] == ["first", "second"]

    def test_thread_spans_do_not_nest_into_main(self, tracing):
        # contextvars are per-thread: a span opened on a worker thread
        # has no parent from the main thread and lands in the ring
        with span("main"):
            worker = threading.Thread(target=lambda: span("worker").
                                      __enter__().__exit__(None, None, None))
            worker.start()
            worker.join()
        names = sorted(s.name for s in take_spans())
        assert names == ["main", "worker"]


class TestSpanData:
    def test_elapsed_and_counters(self, tracing):
        with span("work", source="oson") as s:
            s.record("rows", 2)
            s.record("rows", 3)
            s.record("bytes", 10)
        assert s.elapsed_ms is not None and s.elapsed_ms >= 0
        assert s.counters == {"rows": 5, "bytes": 10}
        assert s.attrs["source"] == "oson"

    def test_exception_annotates_error(self, tracing):
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("nope")
        (root,) = take_spans()
        assert root.attrs["error"] == "RuntimeError"
        assert root.elapsed_ms is not None

    def test_child_cap_counts_overflow(self, tracing):
        with span("parent") as parent:
            for _ in range(MAX_CHILDREN + 7):
                with span("child"):
                    pass
        assert len(parent.children) == MAX_CHILDREN
        assert parent.dropped == 7
        payload = export_traces()
        assert payload["spans"][0]["dropped_children"] == 7
        assert not validate_trace_export(payload)


class TestExport:
    def test_export_validates_and_drains(self, tracing):
        with span("query", qid="q1") as q:
            q.record("rows_out", 4)
            with span("operator"):
                pass
        payload = export_traces()
        assert payload["schema"] == "repro.obs.trace/v1"
        assert not validate_trace_export(payload)
        assert take_spans() == []  # drained

    def test_peek_does_not_drain(self, tracing):
        with span("kept"):
            pass
        assert [s.name for s in peek_spans()] == ["kept"]
        assert [s.name for s in take_spans()] == ["kept"]

    def test_ring_is_bounded(self, tracing):
        for i in range(trace.RING_SIZE + 5):
            with span(f"s{i}"):
                pass
        spans = take_spans()
        assert len(spans) == trace.RING_SIZE
        assert spans[0].name == "s5"  # oldest were displaced

    def test_span_ids_unique(self, tracing):
        with span("a") as a, span("b") as b:
            pass
        assert a.span_id != b.span_id

    def test_invalid_payload_is_reported(self):
        bad = {"schema": "repro.obs.trace/v1",
               "spans": [{"name": "x"}]}  # missing span_id/elapsed_ms
        problems = validate_trace_export(bad)
        assert any("span_id" in p for p in problems)
        assert any("elapsed_ms" in p for p in problems)

    def test_unexpected_keys_rejected(self):
        bad = {"schema": "repro.obs.trace/v1", "spans": [], "extra": 1}
        assert any("extra" in p for p in validate_trace_export(bad))
