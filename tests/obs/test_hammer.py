"""8-thread hammer tests for the obs metrics registry and trace ring.

Counterpart of the counters hammer suite (tests/core/test_counters.py
``TestThreadSafety``): these assert *exact* tallies, so a lost update,
duplicate registration, or unsynchronized check-then-append fails the
run rather than flaking silently.

The span-attach hammer is the regression test for a real race: worker
threads running under copied contexts share one parent ``Span`` object,
and the pre-fix child-cap check-then-append could push past
``MAX_CHILDREN`` and lose ``dropped`` increments.  With the attach lock
``len(children) + dropped`` must equal the number of closed child spans
exactly.
"""

import contextvars
import threading

from repro.obs import trace
from repro.obs.metrics import counter, find_metric, gauge, histogram
from repro.obs.trace import MAX_CHILDREN, RING_SIZE, Span, take_spans

THREADS = 8
ROUNDS = 2000


def _hammer(work, threads=THREADS):
    errors = []

    def run():
        try:
            work()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=run) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestMetricsRegistryHammer:
    def test_registration_yields_one_instrument_per_name(self):
        seen = []
        lock = threading.Lock()

        def work():
            for i in range(ROUNDS):
                instrument = counter(f"test.hammer.registry.{i % 16}")
                with lock:
                    seen.append(instrument)

        _hammer(work)
        by_name = {}
        for instrument in seen:
            by_name.setdefault(instrument.name, set()).add(id(instrument))
        assert len(by_name) == 16
        assert all(len(ids) == 1 for ids in by_name.values()), \
            "registry handed out distinct instruments for one name"

    def test_counter_increments_are_exact(self):
        instrument = counter("test.hammer.counter")
        instrument.reset()

        def work():
            for _ in range(ROUNDS):
                instrument.inc()

        _hammer(work)
        assert instrument.value == THREADS * ROUNDS

    def test_gauge_deltas_are_exact(self):
        instrument = gauge("test.hammer.gauge")
        instrument.reset()

        def work():
            for _ in range(ROUNDS):
                instrument.add(1)

        _hammer(work)
        assert instrument.value == THREADS * ROUNDS

    def test_histogram_observations_are_exact(self):
        instrument = histogram("test.hammer.histogram", (1.0, 2.0))
        instrument.reset()

        def work():
            for _ in range(ROUNDS):
                instrument.observe(1.0)

        _hammer(work)
        total = THREADS * ROUNDS
        assert instrument.count == total
        assert instrument.sum == float(total)
        assert sum(instrument.snapshot()["counts"]) == total

    def test_mixed_kind_collision_raises_not_corrupts(self):
        counter("test.hammer.kind")
        failures = []
        lock = threading.Lock()

        def work():
            for _ in range(200):
                try:
                    gauge("test.hammer.kind")
                except ValueError:
                    with lock:
                        failures.append(1)

        _hammer(work)
        assert len(failures) == THREADS * 200
        assert type(find_metric("test.hammer.kind")).__name__ == "Counter"


class TestTraceHammer:
    def setup_method(self):
        self._previous = trace.set_tracing_enabled(True)
        take_spans()

    def teardown_method(self):
        take_spans()
        trace.set_tracing_enabled(self._previous)

    def test_ring_bounded_under_concurrent_root_spans(self):
        per_thread = 400

        def work():
            for i in range(per_thread):
                with trace.span("hammer.root", index=i):
                    pass

        _hammer(work)
        spans = take_spans()
        assert 0 < len(spans) <= RING_SIZE
        assert all(s.elapsed_ms is not None for s in spans)

    def test_shared_parent_attach_is_exact(self):
        # every worker runs under a context copied while the parent was
        # current, so all of them attach children to the SAME Span
        per_thread = 100
        with Span("hammer.parent") as parent:
            copies = [contextvars.copy_context()
                      for _ in range(THREADS)]

            def child_batch():
                for i in range(per_thread):
                    with trace.span("hammer.child", index=i):
                        pass

            errors = []

            def run(ctx):
                try:
                    ctx.run(child_batch)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            pool = [threading.Thread(target=run, args=(ctx,))
                    for ctx in copies]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert not errors, errors
        total = THREADS * per_thread
        assert len(parent.children) == MAX_CHILDREN
        assert len(parent.children) + parent.dropped == total
        assert parent.dropped == total - MAX_CHILDREN
