"""``python -m repro.tools.obs`` — render and validate obs exports."""

import json

import pytest

from repro.obs import (
    counter,
    export_traces,
    set_tracing_enabled,
    span,
)
from repro.obs.metrics import snapshot_metrics
from repro.tools import obs as obs_cli


@pytest.fixture
def exports(tmp_path):
    set_tracing_enabled(True)
    try:
        with span("query", mode="row"):
            with span("operator", op="SCAN demo") as s:
                counter("cli.demo.calls").inc(3)
                s.record("rows", 7)
    finally:
        set_tracing_enabled(False)
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    trace_path.write_text(json.dumps(export_traces()))
    metrics_path.write_text(json.dumps(snapshot_metrics()))
    return str(trace_path), str(metrics_path)


class TestTrace:
    def test_renders_span_tree(self, exports, capsys):
        trace_path, _ = exports
        assert obs_cli.main(["trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert "query" in out and "operator" in out
        assert "rows: 7" in out
        assert "mode=row" in out

    def test_invalid_payload_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro.obs.trace/v1",
                                   "spans": [{"name": 1}]}))
        assert obs_cli.main(["trace", str(bad)]) == 1


class TestMetrics:
    def test_renders_instruments(self, exports, capsys):
        _, metrics_path = exports
        assert obs_cli.main(["metrics", metrics_path]) == 0
        out = capsys.readouterr().out
        assert "cli.demo.calls" in out
        assert "counter" in out

    def test_provider_sections_rendered(self, exports, capsys):
        _, metrics_path = exports
        payload = json.loads(open(metrics_path).read())
        if "providers" not in payload:
            pytest.skip("no provider registered in this process")
        assert obs_cli.main(["metrics", metrics_path]) == 0
        assert "provider" in capsys.readouterr().out


class TestValidate:
    def test_sniffs_both_kinds(self, exports, capsys):
        trace_path, metrics_path = exports
        assert obs_cli.main(["validate", trace_path, metrics_path]) == 0
        out = capsys.readouterr().out
        assert "trace export ok" in out
        assert "metrics export ok" in out

    def test_unknown_schema_fails(self, tmp_path):
        stray = tmp_path / "stray.json"
        stray.write_text(json.dumps({"schema": "something/else"}))
        assert obs_cli.main(["validate", str(stray)]) == 1

    def test_unreadable_file_fails(self, tmp_path):
        assert obs_cli.main(["validate",
                             str(tmp_path / "missing.json")]) == 1

    def test_directory_walk(self, exports, tmp_path):
        # both exports live in tmp_path; a directory argument finds them
        assert obs_cli.main(["validate", str(tmp_path)]) == 0
