"""Unit tests for the metrics registry: instruments, snapshots, deltas,
providers, and thread safety under contention."""

import threading

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    DURATION_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    counter,
    find_metric,
    gauge,
    histogram,
    metric_deltas,
    metric_names,
    register_provider,
    snapshot_metrics,
)
from repro.obs.schema import validate_metrics_export


class TestInstruments:
    def test_counter_accumulates(self):
        c = counter("t.counter")
        c.reset()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_sets_and_adds(self):
        g = gauge("t.gauge")
        g.set(10)
        g.add(-3)
        assert g.value == 7
        assert g.snapshot()["type"] == "gauge"

    def test_histogram_buckets(self):
        h = histogram("t.hist", boundaries=(1.0, 10.0))
        h.reset()
        for value in (0.5, 0.9, 5, 100):
            h.observe(value)
        snap = h.snapshot()
        assert snap["counts"] == [2, 1, 1]  # <=1, <=10, overflow
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.4)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("t.bad", boundaries=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t.empty", boundaries=())

    def test_default_boundaries_are_fixed_constants(self):
        assert list(DURATION_MS_BUCKETS) == sorted(DURATION_MS_BUCKETS)
        assert list(BYTES_BUCKETS) == sorted(BYTES_BUCKETS)


class TestRegistry:
    def test_same_name_same_instrument(self):
        assert counter("t.same") is counter("t.same")
        assert histogram("t.same_h") is histogram("t.same_h")

    def test_kind_mismatch_raises(self):
        counter("t.kind")
        with pytest.raises(ValueError):
            gauge("t.kind")

    def test_find_and_names(self):
        c = counter("t.findable")
        assert find_metric("t.findable") is c
        assert "t.findable" in metric_names()
        assert find_metric("t.missing") is None

    def test_registration_race_yields_one_instrument(self):
        seen = []
        lock = threading.Lock()

        def work():
            for i in range(500):
                c = counter(f"t.race.{i % 8}")
                with lock:
                    seen.append(c)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {}
        for c in seen:
            by_name.setdefault(c.name, set()).add(id(c))
        assert all(len(ids) == 1 for ids in by_name.values())

    def test_concurrent_increments_not_lost(self):
        c = counter("t.contended")
        c.reset()
        h = histogram("t.contended_h", boundaries=(10.0,))
        h.reset()

        def work():
            for _ in range(2000):
                c.inc()
                h.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 16000
        assert h.count == 16000


class TestSnapshotAndDeltas:
    def test_snapshot_validates_against_schema(self):
        counter("t.snap").inc()
        gauge("t.snap_g").set(1.5)
        histogram("t.snap_h").observe(0.3)
        payload = snapshot_metrics()
        assert payload["schema"] == "repro.obs.metrics/v1"
        assert not validate_metrics_export(payload)

    def test_deltas_diff_counters_and_histograms(self):
        c = counter("t.delta_c")
        h = histogram("t.delta_h", boundaries=(1.0,))
        g = gauge("t.delta_g")
        before = snapshot_metrics()
        c.inc(3)
        h.observe(0.5)
        g.set(g.value)  # unchanged gauge
        after = snapshot_metrics()
        deltas = metric_deltas(before, after)
        assert deltas["t.delta_c"] == 3
        assert deltas["t.delta_h"]["count"] == 1
        assert "t.delta_g" not in deltas

    def test_deltas_omit_unchanged(self):
        counter("t.delta_idle")
        snap = snapshot_metrics()
        assert metric_deltas(snap, snap) == {}

    def test_new_metric_appears_in_delta(self):
        before = snapshot_metrics()
        counter("t.delta_new").inc(2)
        deltas = metric_deltas(before, snapshot_metrics())
        assert deltas["t.delta_new"] == 2


class TestProviders:
    def test_provider_section_included_and_valid(self):
        register_provider("test_section", lambda: {"k": {"v": 1}})
        payload = snapshot_metrics()
        assert payload["providers"]["test_section"] == {"k": {"v": 1}}
        assert not validate_metrics_export(payload)

    def test_cache_counters_provider_registered(self):
        # importing repro.core.counters wires the legacy cache registry
        # into the unified export
        from repro.core.counters import BoundedCache

        cache = BoundedCache("t.provider_cache", maxsize=2)
        cache.counters.reset()
        cache.put("a", 1)
        cache.get("a")
        section = snapshot_metrics()["providers"]["cache_counters"]
        assert section["t.provider_cache"]["hits"] == 1
