"""Tests for AddVC: JSON_VALUE virtual columns (section 3.3.1)."""

import pytest

from repro.core.dataguide import add_vc, json_dataguide_agg
from repro.engine import Column, Database, NUMBER, CLOB, expr
from repro.errors import DataGuideError
from repro.jsontext import dumps

DOCS = [
    {"purchaseOrder": {"id": 1, "podate": "2014-09-08",
                       "items": [{"name": "phone", "price": 100}]}},
    {"purchaseOrder": {"id": 2, "podate": "2015-03-04", "foreign_id": "F1",
                       "items": [{"name": "ipad", "price": 350.86}]}},
]


def setup():
    db = Database()
    po = db.create_table("PO", [Column("DID", NUMBER), Column("JCOL", CLOB)])
    for i, doc in enumerate(DOCS):
        po.insert({"DID": i + 1, "JCOL": dumps(doc)})
    guide = json_dataguide_agg(DOCS)
    return db, po, guide


class TestAddVc:
    def test_paper_table_7_columns(self):
        _db, po, guide = setup()
        added = add_vc(po, "JCOL", guide)
        names = {c.name for c in added}
        assert names == {"JCOL$id", "JCOL$podate", "JCOL$foreign_id"}
        assert all(c.is_virtual for c in added)

    def test_array_fields_excluded(self):
        """Only singleton scalars (one-to-one with documents) qualify."""
        _db, po, guide = setup()
        added = add_vc(po, "JCOL", guide)
        assert not any("name" in c.name or "price" in c.name for c in added)

    def test_vc_values_computed_on_scan(self):
        db, po, guide = setup()
        add_vc(po, "JCOL", guide)
        rows = db.query("PO").select("DID", "JCOL$id", "JCOL$foreign_id").rows()
        assert rows == [
            {"DID": 1, "JCOL$id": 1, "JCOL$foreign_id": None},
            {"DID": 2, "JCOL$id": 2, "JCOL$foreign_id": "F1"},
        ]

    def test_vc_usable_in_predicates(self):
        db, po, guide = setup()
        add_vc(po, "JCOL", guide)
        rows = (db.query("PO")
                .where(expr.Col("JCOL$id") == 2)
                .select("DID").rows())
        assert rows == [{"DID": 2}]

    def test_returning_types_match_guide(self):
        _db, po, guide = setup()
        added = {c.name: c for c in add_vc(po, "JCOL", guide)}
        assert added["JCOL$id"].sql_type.name == "NUMBER"
        assert added["JCOL$podate"].sql_type.name.startswith("VARCHAR2")

    def test_frequency_threshold(self):
        _db, po, guide = setup()
        added = add_vc(po, "JCOL", guide, frequency_threshold=75)
        names = {c.name for c in added}
        assert "JCOL$foreign_id" not in names  # present in 50% of docs
        assert "JCOL$id" in names

    def test_renames_and_exclusions(self):
        _db, po, guide = setup()
        annotated = guide.annotate(
            renames={"$.purchaseOrder.id": "ORDER_ID"},
            exclude=["$.purchaseOrder.podate"])
        added = add_vc(po, "JCOL", annotated)
        names = {c.name for c in added}
        assert "ORDER_ID" in names
        assert not any("podate" in n for n in names)

    def test_collision_resolution(self):
        db = Database()
        t = db.create_table("T", [Column("J", CLOB)])
        t.insert({"J": dumps({"a": {"v": 1}, "b": {"v": 2}})})
        guide = json_dataguide_agg([{"a": {"v": 1}, "b": {"v": 2}}])
        added = add_vc(t, "J", guide)
        names = [c.name for c in added]
        assert len(names) == len(set(names)) == 2

    def test_custom_prefix(self):
        _db, po, guide = setup()
        added = add_vc(po, "JCOL", guide, column_prefix="D")
        assert any(c.name == "D$id" for c in added)

    def test_unknown_column_rejected(self):
        _db, po, guide = setup()
        with pytest.raises(DataGuideError):
            add_vc(po, "NOPE", guide)
