"""``DataGuide.merge`` as an associative aggregate combine (ISSUE 8).

Per-shard guides must merge into exactly the guide a single stream
would have built, or sharded planning (pruning, view generation) would
see a different schema than unsharded planning.  The algebra is
property-tested; the one documented caveat is that *extreme values* of
mixed-type paths coerce through ``str()`` at merge time, which is
commutative but not associative across groupings — so associativity is
asserted in full for type-homogeneous documents and structurally
(paths, kinds, types, lengths, counts) for arbitrary ones.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.guide import DataGuide


def guide_of(documents):
    builder = DataGuideBuilder()
    builder.add_many(list(documents))
    return builder.guide()


def flat(guide):
    """Canonical full comparison form: every $DG row plus the count."""
    return (guide.document_count, guide.as_flat())


def structure(guide):
    """The structural projection: everything except coerced extremes."""
    return (guide.document_count,
            sorted((e.path, e.kind, e.scalar_type, e.in_array,
                    e.max_length, e.frequency, e.null_count)
                   for e in guide.entries()))


# Arbitrary JSON documents: any field may hold any type.
scalars = st.one_of(st.none(), st.booleans(),
                    st.integers(min_value=-1000, max_value=1000),
                    st.text(max_size=8))
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.sampled_from("pqr"), children, max_size=3)),
    max_leaves=6)
documents = st.lists(
    st.dictionaries(st.sampled_from("abcde"), values, max_size=4),
    max_size=6)

# Type-homogeneous documents: each field name always carries one type,
# so no extreme ever degrades through str() coercion.
TYPED_FIELDS = {
    "num": st.integers(min_value=-1000, max_value=1000),
    "txt": st.text(max_size=8),
    "flag": st.booleans(),
    "tags": st.lists(st.text(max_size=4), max_size=3),
    "sub": st.fixed_dictionaries(
        {}, optional={"inner": st.integers(min_value=0, max_value=99)}),
}
typed_documents = st.lists(
    st.fixed_dictionaries({}, optional=TYPED_FIELDS), max_size=6)


class TestAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(documents, documents)
    def test_commutative(self, left, right):
        a, b = guide_of(left), guide_of(right)
        assert flat(a.merge(b)) == flat(b.merge(a))

    @settings(max_examples=60, deadline=None)
    @given(typed_documents, typed_documents, typed_documents)
    def test_associative_on_homogeneous_types(self, one, two, three):
        a, b, c = guide_of(one), guide_of(two), guide_of(three)
        assert flat(a.merge(b).merge(c)) == flat(a.merge(b.merge(c)))

    @settings(max_examples=60, deadline=None)
    @given(documents, documents, documents)
    def test_associative_structurally(self, one, two, three):
        """Mixed-type extremes may coerce differently per grouping;
        everything else must not."""
        a, b, c = guide_of(one), guide_of(two), guide_of(three)
        assert structure(a.merge(b).merge(c)) == structure(
            a.merge(b.merge(c)))

    @settings(max_examples=60, deadline=None)
    @given(typed_documents, typed_documents)
    def test_exact_on_disjoint_inserts(self, left, right):
        """Guides over disjoint document sets merge into exactly the
        guide of the concatenated stream."""
        assert flat(guide_of(left).merge(guide_of(right))) == flat(
            guide_of(left + right))

    @settings(max_examples=60, deadline=None)
    @given(documents)
    def test_empty_guide_is_identity(self, docs):
        guide = guide_of(docs)
        empty = DataGuide(())
        assert flat(guide.merge(empty)) == flat(guide)
        assert flat(empty.merge(guide)) == flat(guide)

    @settings(max_examples=60, deadline=None)
    @given(documents)
    def test_self_merge_is_structurally_idempotent(self, docs):
        """Statistics are additive (frequencies double), the structure
        projection modulo counts is unchanged."""
        guide = guide_of(docs)
        doubled = guide.merge(guide)
        assert doubled.document_count == 2 * guide.document_count
        assert (sorted((e.path, e.kind, e.scalar_type, e.in_array,
                        e.max_length) for e in doubled.entries())
                == sorted((e.path, e.kind, e.scalar_type, e.in_array,
                           e.max_length) for e in guide.entries()))
        assert {e.key: (e.frequency, e.null_count)
                for e in doubled.entries()} == {
                    e.key: (2 * e.frequency, 2 * e.null_count)
                    for e in guide.entries()}


class TestMergeAll:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(typed_documents, max_size=4),
           st.randoms(use_true_random=False))
    def test_order_independent(self, shards, rng):
        guides = [guide_of(docs) for docs in shards]
        baseline = flat(DataGuide.merge_all(guides))
        shuffled = list(guides)
        rng.shuffle(shuffled)
        assert flat(DataGuide.merge_all(shuffled)) == baseline

    def test_empty_iterable_yields_empty_guide(self):
        merged = DataGuide.merge_all([])
        assert len(merged) == 0 and merged.document_count == 0

    def test_matches_union_rebuild(self):
        shards = [[{"k": "a", "v": 1}], [{"k": "b", "v": 9}],
                  [{"k": "c", "v": 5, "extra": [1, 2]}]]
        merged = DataGuide.merge_all(guide_of(docs) for docs in shards)
        union = guide_of([doc for docs in shards for doc in docs])
        assert flat(merged) == flat(union)


class TestAnnotationsMerge:
    def test_left_bias_and_union(self):
        a = guide_of([{"v": 1}]).annotate(
            renames={"$.v": "left"}, exclude=["$.x"])
        b = guide_of([{"v": 2}]).annotate(
            renames={"$.v": "right"}, length_overrides={"$.v": 7})
        merged = a.merge(b)
        assert merged.annotations.renames["$.v"] == "left"
        assert "$.x" in merged.annotations.excluded
        assert merged.annotations.length_overrides["$.v"] == 7
