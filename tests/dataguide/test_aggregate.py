"""Tests for JSON_DATAGUIDEAGG (transient DataGuide, section 3.4)."""

from repro import bson
from repro.core.dataguide import JsonDataGuideAgg, json_dataguide_agg
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB, VARCHAR2, expr
from repro.jsontext import dumps

DOCS = [
    {"po": {"id": 1, "items": [{"sku": "A"}]}},
    {"po": {"id": 2, "note": "rush"}},
    {"po": {"id": 3}},
]


class TestFunctionalForm:
    def test_full_aggregation(self):
        guide = json_dataguide_agg(DOCS)
        assert "$.po.note" in guide.paths()
        assert guide.document_count == 3

    def test_accepts_all_physical_forms(self):
        mixed = [dumps(DOCS[0]), oson_encode(DOCS[1]), bson.encode(DOCS[2])]
        guide = json_dataguide_agg(mixed)
        assert "$.po.note" in guide.paths()
        assert "$.po.items.sku" in guide.paths()

    def test_sampling_subset(self):
        docs = [{"common": 1, f"only_{i}": i} for i in range(200)]
        full = json_dataguide_agg(docs)
        sampled = json_dataguide_agg(docs, sample_percent=20, seed=7)
        assert len(sampled) < len(full)
        assert "$.common" in sampled.paths()

    def test_sampling_is_deterministic_with_seed(self):
        docs = [{f"f{i}": i} for i in range(100)]
        a = json_dataguide_agg(docs, sample_percent=50, seed=3)
        b = json_dataguide_agg(docs, sample_percent=50, seed=3)
        assert a.paths() == b.paths()

    def test_sampling_bounds_validated(self):
        import pytest
        with pytest.raises(ValueError):
            json_dataguide_agg(DOCS, sample_percent=0)
        with pytest.raises(ValueError):
            json_dataguide_agg(DOCS, sample_percent=150)

    def test_none_documents_skipped(self):
        guide = json_dataguide_agg([None, DOCS[0], None][1:2])
        assert guide.document_count == 1


def po_table_with_dates():
    db = Database()
    t = db.create_table("po", [
        Column("id", NUMBER),
        Column("insertion_date", VARCHAR2(10)),
        Column("jcol", CLOB),
    ])
    t.insert({"id": 1, "insertion_date": "2015-01-01", "jcol": dumps(DOCS[0])})
    t.insert({"id": 2, "insertion_date": "2015-01-01", "jcol": dumps(DOCS[1])})
    t.insert({"id": 3, "insertion_date": "2015-01-02", "jcol": dumps(DOCS[2])})
    return db, t


class TestSqlAggregate:
    def test_paper_q2_group_by_insertion_date(self):
        """select json_dataguideagg(jcol) from po group by insertion_date"""
        db, _t = po_table_with_dates()
        rows = (db.query("po")
                .group_by(["insertion_date"], dg=JsonDataGuideAgg("jcol"))
                .order_by("insertion_date")
                .rows())
        assert len(rows) == 2
        day1, day2 = rows[0]["dg"], rows[1]["dg"]
        assert "$.po.note" in day1.paths()
        assert "$.po.note" not in day2.paths()

    def test_paper_q3_filtered_subset(self):
        """dataguide over a filtered subset (where json_exists...)"""
        db, _t = po_table_with_dates()
        rows = (db.query("po")
                .where(expr.JsonExistsExpr("jcol", "$.po.note"))
                .group_by([], dg=JsonDataGuideAgg("jcol"))
                .rows())
        guide = rows[0]["dg"]
        assert guide.document_count == 1
        assert "$.po.items" not in guide.paths()

    def test_null_json_columns_skipped(self):
        db, t = po_table_with_dates()
        t.insert({"id": 4, "insertion_date": "2015-01-03", "jcol": None})
        rows = db.query("po").group_by([], dg=JsonDataGuideAgg("jcol")).rows()
        assert rows[0]["dg"].document_count == 3
