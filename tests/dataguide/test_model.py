"""Tests for DataGuide path entries and the type lattice."""

import pytest

from repro.core.dataguide.model import (
    ARRAY,
    BOOLEAN,
    NULL,
    NUMBER,
    OBJECT,
    SCALAR,
    STRING,
    PathEntry,
    child_path,
    generalize_scalar_type,
    scalar_type_of,
)


class TestTypeLattice:
    def test_identity(self):
        for t in (STRING, NUMBER, BOOLEAN, NULL):
            assert generalize_scalar_type(t, t) == t

    def test_null_absorbed(self):
        assert generalize_scalar_type(NULL, NUMBER) == NUMBER
        assert generalize_scalar_type(STRING, NULL) == STRING

    def test_conflicts_generalize_to_string(self):
        # the paper's example: number vs string merges to string
        assert generalize_scalar_type(NUMBER, STRING) == STRING
        assert generalize_scalar_type(BOOLEAN, NUMBER) == STRING
        assert generalize_scalar_type(BOOLEAN, STRING) == STRING

    def test_none_passthrough(self):
        assert generalize_scalar_type(None, NUMBER) == NUMBER
        assert generalize_scalar_type(NUMBER, None) == NUMBER

    def test_scalar_type_of(self):
        assert scalar_type_of(None) == NULL
        assert scalar_type_of(True) == BOOLEAN
        assert scalar_type_of(1) == NUMBER
        assert scalar_type_of(1.5) == NUMBER
        assert scalar_type_of("x") == STRING


class TestTypeLabels:
    def test_paper_table_2_labels(self):
        assert PathEntry("$.po", OBJECT).type_label == "object"
        assert PathEntry("$.po.id", SCALAR, scalar_type=NUMBER).type_label \
            == "number"
        assert PathEntry("$.po.items", ARRAY).type_label == "array"
        assert PathEntry("$.po.items.name", SCALAR, scalar_type=STRING,
                         in_array=True).type_label == "array of string"

    def test_paper_table_4_labels(self):
        assert PathEntry("$.po.items.parts", ARRAY,
                         in_array=True).type_label == "array of array"

    def test_object_never_array_of(self):
        assert PathEntry("$.x", OBJECT, in_array=True).type_label == "object"


class TestMerge:
    def test_merged_with_combines(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NUMBER, max_length=0,
                      frequency=2, min_value=1, max_value=5)
        b = PathEntry("$.v", SCALAR, scalar_type=STRING, max_length=7,
                      frequency=3, min_value="abc", max_value="zzz")
        merged = a.merged_with(b)
        assert merged.scalar_type == STRING
        assert merged.max_length == 7
        assert merged.frequency == 5

    def test_merge_key_mismatch(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NUMBER)
        b = PathEntry("$.v", ARRAY)
        with pytest.raises(ValueError):
            a.merged_with(b)
        with pytest.raises(ValueError):
            a.merge_in_place(b)

    def test_in_place_reports_structural_change(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NUMBER)
        same = PathEntry("$.v", SCALAR, scalar_type=NUMBER)
        assert a.merge_in_place(same) is False
        widened = PathEntry("$.v", SCALAR, scalar_type=STRING)
        assert a.merge_in_place(widened) is True
        assert a.scalar_type == STRING

    def test_stats_are_not_structural(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NUMBER, frequency=1,
                      min_value=5, max_value=5)
        b = PathEntry("$.v", SCALAR, scalar_type=NUMBER, frequency=1,
                      min_value=1, max_value=9)
        assert a.merge_in_place(b) is False
        assert a.frequency == 2
        assert a.min_value == 1 and a.max_value == 9

    def test_heterogeneous_minmax_compares_as_strings(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NUMBER, min_value=5,
                      max_value=5)
        b = PathEntry("$.v", SCALAR, scalar_type=STRING, min_value="abc",
                      max_value="abc")
        merged = a.merged_with(b)
        assert merged.min_value is not None

    def test_null_counts_accumulate(self):
        a = PathEntry("$.v", SCALAR, scalar_type=NULL, null_count=1)
        b = PathEntry("$.v", SCALAR, scalar_type=NUMBER, null_count=0)
        a.merge_in_place(b)
        assert a.null_count == 1
        assert a.scalar_type == NUMBER


class TestChildPath:
    def test_identifier(self):
        assert child_path("$", "name") == "$.name"
        assert child_path("$.a", "b") == "$.a.b"

    def test_non_identifier_quoted(self):
        assert child_path("$", "weird name") == '$."weird name"'
        assert child_path("$", 'has"quote') == '$."has\\"quote"'
