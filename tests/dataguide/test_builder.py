"""Tests for instance skeleton extraction and the collection merge.

The key scenarios come straight from the paper: Tables 1-6 show exactly
which $DG rows a purchase-order collection must produce as documents grow
the hierarchy deeper and wider.
"""

from repro.core.dataguide.builder import DataGuideBuilder, instance_entries
from repro.core.dataguide.model import ARRAY, OBJECT, SCALAR

# the documents of the paper's Tables 1, 3 and 5 (abridged values)
DOC1 = {"purchaseOrder": {"id": 1, "podate": "2014-09-08",
        "items": [{"name": "phone", "price": 100, "quantity": 2},
                  {"name": "ipad", "price": 350.86, "quantity": 3}]}}

DOC3 = {"purchaseOrder": {"id": 2, "podate": "2015-06-03",
        "foreign_id": "CDEG35",
        "items": [{"name": "TV", "price": 345.55, "quantity": 1,
                   "parts": [{"partName": "remoteCon", "partQuantity": "1"}]},
                  {"name": "PC", "price": 546.78, "quantity": 10,
                   "parts": [{"partName": "mouse", "partQuantity": "2"},
                             {"partName": "keyboard", "partQuantity": "1"}]}]}}

DOC5 = {"purchaseOrder": {"id": 3, "podate": "2015-08-03",
        "items": [{"name": "monitor", "price": 345.55, "quantity": 1}],
        "discount_items": [
            {"dis_itemName": "mousepad", "dis_itemPrice": 4.55,
             "dis_itemQuanitty": 1,
             "dis_parts": [{"dis_partName": "pad", "dis_partQuantity": 1}]}]}}


def type_map(entries):
    return {(e.path, e.kind): e.type_label for e in entries.values()}


class TestInstanceEntries:
    def test_paper_table_2(self):
        """Extracting DOC1 must yield the rows of the paper's Table 2."""
        entries = instance_entries(DOC1)
        types = type_map(entries)
        assert types[("$.purchaseOrder", OBJECT)] == "object"
        assert types[("$.purchaseOrder.id", SCALAR)] == "number"
        assert types[("$.purchaseOrder.podate", SCALAR)] == "string"
        assert types[("$.purchaseOrder.items", ARRAY)] == "array"
        assert types[("$.purchaseOrder.items.name", SCALAR)] == "array of string"
        assert types[("$.purchaseOrder.items.price", SCALAR)] == "array of number"
        assert types[("$.purchaseOrder.items.quantity", SCALAR)] == "array of number"

    def test_scalar_stats_collected(self):
        entries = instance_entries(DOC1)
        price = entries[("$.purchaseOrder.items.price", SCALAR)]
        assert price.min_value == 100
        assert price.max_value == 350.86
        name = entries[("$.purchaseOrder.items.name", SCALAR)]
        assert name.max_length == len("phone")

    def test_frequency_is_per_document(self):
        entries = instance_entries(DOC1)
        # 'name' occurs twice in the doc but frequency counts documents
        assert entries[("$.purchaseOrder.items.name", SCALAR)].frequency == 1

    def test_array_of_scalars(self):
        entries = instance_entries({"tags": ["a", "b"]})
        assert ("$.tags", ARRAY) in entries
        scalar = entries[("$.tags", SCALAR)]
        assert scalar.in_array and scalar.scalar_type == "string"

    def test_nested_array_of_arrays(self):
        entries = instance_entries({"m": [[1, 2], [3]]})
        # outer and inner arrays share the path; the merge ORs in_array,
        # yielding the paper's "array of array" label
        assert entries[("$.m", ARRAY)].type_label == "array of array"
        scalar = entries[("$.m", SCALAR)]
        assert scalar.in_array

    def test_heterogeneous_path_keeps_both_kinds(self):
        """The paper's $.a.b-as-scalar vs $.a.b-as-object example."""
        builder = DataGuideBuilder()
        builder.add({"a": {"b": 1}})
        builder.add({"a": {"b": {"c": 2}}})
        keys = {e.key for e in builder.entries()}
        assert ("$.a.b", SCALAR) in keys
        assert ("$.a.b", OBJECT) in keys

    def test_root_scalar_document(self):
        entries = instance_entries(42)
        assert entries[("$", SCALAR)].scalar_type == "number"

    def test_null_leaf(self):
        entries = instance_entries({"v": None})
        entry = entries[("$.v", SCALAR)]
        assert entry.scalar_type == "null"
        assert entry.null_count == 1


class TestCollectionMerge:
    def test_paper_table_4_deeper(self):
        """Adding DOC3 grows the guide deeper by exactly 4 new rows."""
        builder = DataGuideBuilder()
        builder.add(DOC1)
        new_keys = builder.add(DOC3)
        new_paths = sorted(path for path, _kind in new_keys)
        assert new_paths == [
            "$.purchaseOrder.foreign_id",
            "$.purchaseOrder.items.parts",
            "$.purchaseOrder.items.parts.partName",
            "$.purchaseOrder.items.parts.partQuantity",
        ]
        types = {e.key: e.type_label for e in builder.entries()}
        assert types[("$.purchaseOrder.items.parts", ARRAY)] == "array of array"
        assert types[("$.purchaseOrder.items.parts.partName", SCALAR)] \
            == "array of string"
        assert types[("$.purchaseOrder.foreign_id", SCALAR)] == "string"

    def test_paper_table_6_wider(self):
        """Adding DOC5 grows the guide wider with the discount hierarchy."""
        builder = DataGuideBuilder()
        builder.add(DOC1)
        builder.add(DOC3)
        new_keys = builder.add(DOC5)
        new_paths = sorted(path for path, _kind in new_keys)
        assert new_paths == [
            "$.purchaseOrder.discount_items",
            "$.purchaseOrder.discount_items.dis_itemName",
            "$.purchaseOrder.discount_items.dis_itemPrice",
            "$.purchaseOrder.discount_items.dis_itemQuanitty",
            "$.purchaseOrder.discount_items.dis_parts",
            "$.purchaseOrder.discount_items.dis_parts.dis_partName",
            "$.purchaseOrder.discount_items.dis_parts.dis_partQuantity",
        ]

    def test_no_change_fast_path(self):
        builder = DataGuideBuilder()
        builder.add(DOC1)
        assert builder.add(DOC1) == []  # identical structure: nothing new

    def test_type_generalization_on_merge(self):
        builder = DataGuideBuilder()
        builder.add({"v": 1})
        builder.add({"v": "text"})
        entry = builder.entry(("$.v", SCALAR))
        assert entry.scalar_type == "string"

    def test_frequency_counts_documents(self):
        builder = DataGuideBuilder()
        for _ in range(3):
            builder.add(DOC1)
        builder.add({"other": 1})
        entry = builder.entry(("$.purchaseOrder", OBJECT))
        assert entry.frequency == 3
        assert builder.documents_seen == 4

    def test_merge_builder(self):
        a = DataGuideBuilder()
        a.add(DOC1)
        b = DataGuideBuilder()
        b.add(DOC5)
        a.merge_builder(b)
        assert a.documents_seen == 2
        assert ("$.purchaseOrder.discount_items", ARRAY) in \
            {e.key for e in a.entries()}

    def test_guide_snapshot(self):
        builder = DataGuideBuilder()
        builder.add(DOC1)
        guide = builder.guide()
        assert len(guide) == len(builder.entries())
        assert guide.document_count == 1
