"""Tests for the DataGuide object: flat & hierarchical forms, annotations."""

import pytest

from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.dataguide.guide import _split_path
from repro.core.dataguide.model import SCALAR
from repro.errors import DataGuideError
from repro.jsontext import dumps, loads

DOC = {"po": {"id": 1, "date": "2015-01-01",
              "items": [{"sku": "A", "qty": 2}],
              "tags": ["x", "y"]}}


def guide_for(*docs):
    builder = DataGuideBuilder()
    for doc in docs:
        builder.add(doc)
    return builder.guide()


class TestAccess:
    def test_len_counts_distinct_path_kind_rows(self):
        guide = guide_for(DOC)
        # $, $.po, id, date, items(arr), sku, qty, tags(arr), tags(scalar)
        assert len(guide) == 9

    def test_paths(self):
        guide = guide_for(DOC)
        assert "$.po.items.sku" in guide.paths()

    def test_get_by_path(self):
        guide = guide_for(DOC)
        assert guide.get("$.po.id").scalar_type == "number"

    def test_get_heterogeneous_requires_kind(self):
        guide = guide_for({"a": {"b": 1}}, {"a": {"b": {"c": 1}}})
        with pytest.raises(DataGuideError):
            guide.get("$.a.b")
        assert guide.get("$.a.b", SCALAR) is not None

    def test_get_missing(self):
        assert guide_for(DOC).get("$.nope") is None

    def test_scalar_and_singleton_entries(self):
        guide = guide_for(DOC)
        scalar_paths = {e.path for e in guide.scalar_entries()}
        singleton_paths = {e.path for e in guide.singleton_scalar_entries()}
        assert "$.po.items.sku" in scalar_paths
        assert "$.po.items.sku" not in singleton_paths  # inside an array
        assert "$.po.id" in singleton_paths

    def test_dmdv_column_count(self):
        guide = guide_for(DOC)
        # leaf scalars: id, date, sku, qty, tags-elements
        assert guide.dmdv_column_count() == 5


class TestFlatForm:
    def test_rows_sorted_and_shaped(self):
        flat = guide_for(DOC).as_flat()
        paths = [row["PATH"] for row in flat]
        assert paths == sorted(paths)
        assert {"PATH", "TYPE", "FREQUENCY"} <= set(flat[0])

    def test_flat_form_is_json_serializable(self):
        flat = guide_for(DOC).as_flat()
        assert loads(dumps(flat)) == flat


class TestHierarchicalForm:
    def test_structure(self):
        h = guide_for(DOC).as_hierarchical()
        assert h["type"] == "object"
        po = h["properties"]["po"]
        assert po["properties"]["id"]["type"] == "number"
        items = po["properties"]["items"]
        assert items["type"] == "array"
        assert items["items"]["properties"]["sku"]["type"] == "array of string"

    def test_scalar_annotations_present(self):
        h = guide_for(DOC).as_hierarchical()
        date = h["properties"]["po"]["properties"]["date"]
        assert date["o:length"] == len("2015-01-01")
        assert date["o:frequency"] == 1

    def test_heterogeneous_renders_oneof(self):
        h = guide_for({"a": 1}, {"a": {"b": 2}}).as_hierarchical()
        a = h["properties"]["a"]
        assert "oneOf" in a
        kinds = {v["type"] for v in a["oneOf"]}
        assert kinds == {"number", "object"}

    def test_hierarchical_is_json_serializable(self):
        h = guide_for(DOC).as_hierarchical()
        assert loads(dumps(h)) == h


class TestAnnotations:
    def test_annotate_returns_copy(self):
        guide = guide_for(DOC)
        annotated = guide.annotate(renames={"$.po.id": "order_id"})
        assert annotated is not guide
        assert annotated.annotations.renames["$.po.id"] == "order_id"
        assert guide.annotations.renames == {}

    def test_annotations_merge(self):
        guide = (guide_for(DOC)
                 .annotate(renames={"$.po.id": "oid"})
                 .annotate(exclude=["$.po.date"],
                           length_overrides={"$.po.date": 8}))
        assert guide.annotations.renames["$.po.id"] == "oid"
        assert "$.po.date" in guide.annotations.excluded
        assert guide.annotations.length_overrides["$.po.date"] == 8


class TestSplitPath:
    def test_plain(self):
        assert _split_path("$.a.b") == ["a", "b"]
        assert _split_path("$") == []

    def test_quoted(self):
        assert _split_path('$."x y".z') == ["x y", "z"]
        assert _split_path('$."has\\"quote"') == ['has"quote']

    def test_bad_paths(self):
        with pytest.raises(DataGuideError):
            _split_path("a.b")
        with pytest.raises(DataGuideError):
            _split_path('$."unterminated')
