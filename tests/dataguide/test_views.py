"""Tests for CreateViewOnPath / DMDV generation (section 3.3.2)."""

import pytest

from repro.core.dataguide import create_view_on_path, json_dataguide_agg
from repro.core.dataguide.views import build_json_table
from repro.engine import Column, Database, NUMBER, CLOB
from repro.errors import DataGuideError
from repro.jsontext import dumps

DOCS = [
    {"purchaseOrder": {"id": 1, "podate": "2014-09-08",
     "items": [{"name": "phone", "price": 100, "quantity": 2},
               {"name": "ipad", "price": 350.86, "quantity": 3}]}},
    {"purchaseOrder": {"id": 2, "podate": "2015-06-03", "foreign_id": "X1",
     "items": [{"name": "TV", "price": 345.55, "quantity": 1,
                "parts": [{"partName": "remote", "partQuantity": "1"}]}]}},
]


def guide():
    return json_dataguide_agg(DOCS)


def db_with_po():
    db = Database()
    po = db.create_table("PO", [Column("DID", NUMBER), Column("JCOL", CLOB)])
    for i, doc in enumerate(DOCS):
        po.insert({"DID": i + 1, "JCOL": dumps(doc)})
    return db, po


class TestBuildJsonTable:
    def test_full_document_view(self):
        jt = build_json_table(guide())
        names = set(jt.column_names)
        assert {"JCOL$id", "JCOL$podate", "JCOL$foreign_id", "JCOL$name",
                "JCOL$price", "JCOL$quantity", "JCOL$partName",
                "JCOL$partQuantity"} <= names

    def test_rows_expand_master_detail(self):
        jt = build_json_table(guide())
        rows = jt.rows(DOCS[0])
        assert len(rows) == 2  # two items
        assert all(r["JCOL$id"] == 1 for r in rows)
        assert [r["JCOL$name"] for r in rows] == ["phone", "ipad"]
        # no parts: left outer join keeps the row with NULL part columns
        assert all(r["JCOL$partName"] is None for r in rows)

    def test_nested_parts_expand(self):
        jt = build_json_table(guide())
        rows = jt.rows(DOCS[1])
        assert len(rows) == 1
        assert rows[0]["JCOL$partName"] == "remote"

    def test_column_types_derived_from_guide(self):
        jt = build_json_table(guide())
        # numbers coerce, strings truncate to the bucketed max length
        rows = jt.rows(DOCS[0])
        assert isinstance(rows[0]["JCOL$price"], (int, float))
        assert isinstance(rows[0]["JCOL$podate"], str)

    def test_subtree_view_on_array_path(self):
        """CreateViewOnPath('$.purchaseOrder.items') — detail branch only."""
        jt = build_json_table(guide(), "$.purchaseOrder.items")
        rows = jt.rows(DOCS[0])
        assert len(rows) == 2
        assert {"JCOL$name", "JCOL$price", "JCOL$quantity"} <= set(rows[0])
        assert "JCOL$id" not in rows[0]

    def test_subtree_view_on_object_path(self):
        jt = build_json_table(guide(), "$.purchaseOrder")
        rows = jt.rows(DOCS[0])
        assert len(rows) == 2  # still un-nests items below the subtree
        assert rows[0]["JCOL$id"] == 1

    def test_unknown_path_rejected(self):
        with pytest.raises(DataGuideError):
            build_json_table(guide(), "$.nope")

    def test_frequency_threshold_drops_sparse_fields(self):
        # foreign_id appears in 1 of 2 docs = 50%
        jt = build_json_table(guide(), frequency_threshold=60)
        assert "JCOL$foreign_id" not in jt.column_names
        assert "JCOL$id" in jt.column_names

    def test_annotations_respected(self):
        annotated = guide().annotate(
            renames={"$.purchaseOrder.id": "ORDER_ID"},
            exclude=["$.purchaseOrder.podate"])
        jt = build_json_table(annotated)
        assert "ORDER_ID" in jt.column_names
        assert "JCOL$podate" not in jt.column_names

    def test_array_of_scalars_gets_value_column(self):
        g = json_dataguide_agg([{"tags": ["a", "b"], "id": 1}])
        jt = build_json_table(g)
        rows = jt.rows({"tags": ["a", "b"], "id": 7})
        assert len(rows) == 2
        tag_col = [c for c in jt.column_names if "tags" in c][0]
        assert [r[tag_col] for r in rows] == ["a", "b"]

    def test_name_collisions_disambiguated(self):
        g = json_dataguide_agg([{"a": {"id": 1}, "b": {"id": 2}}])
        jt = build_json_table(g)
        id_columns = [c for c in jt.column_names if "id" in c]
        assert len(id_columns) == 2
        assert len(set(id_columns)) == 2


class TestCreateViewOnPath:
    def test_registers_view(self):
        db, po = db_with_po()
        create_view_on_path(db, po, "JCOL", guide(),
                            view_name="PO_RV",
                            include_columns=["DID"])
        rows = db.query("PO_RV").rows()
        assert len(rows) == 3  # 2 items + 1 item
        assert {r["DID"] for r in rows} == {1, 2}

    def test_default_view_name(self):
        db, po = db_with_po()
        view = create_view_on_path(db, po, "JCOL", guide())
        assert view.name == "PO_RV"

    def test_unknown_column_rejected(self):
        db, po = db_with_po()
        with pytest.raises(DataGuideError):
            create_view_on_path(db, po, "NOPE", guide())

    def test_view_is_dynamic_over_new_rows(self):
        """The view recomputes from base documents on every scan."""
        db, po = db_with_po()
        create_view_on_path(db, po, "JCOL", guide(), view_name="V")
        assert len(db.query("V").rows()) == 3
        po.insert({"DID": 3, "JCOL": dumps(DOCS[0])})
        assert len(db.query("V").rows()) == 5
