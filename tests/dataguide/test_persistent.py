"""Tests for the persistent DataGuide (incremental $DG maintenance)."""

from repro.core.dataguide.persistent import PersistentDataGuide

DOC = {"po": {"id": 1, "items": [{"sku": "A", "qty": 1}]}}


class TestIncrementalMaintenance:
    def test_first_document_writes_all_paths(self):
        pdg = PersistentDataGuide()
        writes = pdg.on_document(DOC)
        assert writes == len(pdg) == 6  # $, po, id, items, sku, qty

    def test_homogeneous_fast_path_writes_nothing(self):
        """The paper's common case: no new structure => zero $DG writes.

        Values vary but structure (paths, kinds, scalar types, string
        lengths) stays fixed, like Figure 7's identical-structure inserts.
        """
        pdg = PersistentDataGuide()
        pdg.on_document(
            {"po": {"id": 0, "items": [{"sku": "SKU000", "qty": 0}]}})
        before = pdg.dg_table.insert_count
        for i in range(1, 50):
            doc = {"po": {"id": i,
                          "items": [{"sku": f"SKU{i:03d}", "qty": i}]}}
            assert pdg.on_document(doc) == 0
        assert pdg.dg_table.insert_count == before

    def test_string_length_growth_is_structural(self):
        """A longer string widens MAX_LENGTH and rewrites the $DG row."""
        pdg = PersistentDataGuide()
        pdg.on_document({"v": "ab"})
        assert pdg.on_document({"v": "abcdef"}) == 1
        assert pdg.dg_table.lookup("$.v")[0]["MAX_LENGTH"] == 6

    def test_new_field_writes_one_row(self):
        pdg = PersistentDataGuide()
        pdg.on_document(DOC)
        writes = pdg.on_document(
            {"po": {"id": 2, "items": [{"sku": "B", "qty": 1}],
                    "rush": True}})
        assert writes == 1
        assert "$.po.rush" in pdg.get_dataguide().paths()

    def test_type_generalization_refreshes_row(self):
        pdg = PersistentDataGuide()
        pdg.on_document({"v": 1})
        writes = pdg.on_document({"v": "text"})
        assert writes == 1  # the $.v row is rewritten, not duplicated
        rows = pdg.dg_table.lookup("$.v")
        assert len(rows) == 1
        assert rows[0]["TYPE"] == "string"

    def test_heterogeneous_every_doc_writes(self):
        """Figure 8's hetero case: a unique field per document."""
        pdg = PersistentDataGuide()
        pdg.on_document(DOC)
        for i in range(10):
            doc = dict(DOC)
            doc[f"unique_{i}"] = i
            assert pdg.on_document(doc) >= 1

    def test_rebuild_over_collection(self):
        pdg = PersistentDataGuide()
        count = pdg.rebuild([DOC, {"other": 1}, DOC])
        assert count == 3
        assert pdg.documents_seen == 3
        assert "$.other" in pdg.get_dataguide().paths()

    def test_statistics_pass(self):
        pdg = PersistentDataGuide()
        pdg.on_document({"v": 5})
        pdg.on_document({"v": 9})
        assert pdg.compute_statistics() > 0
        row = pdg.dg_table.lookup("$.v")[0]
        assert row["FREQUENCY"] == 2
        assert row["MIN_VALUE"] == "5"
        assert row["MAX_VALUE"] == "9"

    def test_forms_available(self):
        pdg = PersistentDataGuide()
        pdg.on_document(DOC)
        assert isinstance(pdg.as_flat(), list)
        assert pdg.as_hierarchical()["type"] == "object"
