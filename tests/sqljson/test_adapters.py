"""Tests for the DOM adapter layer (uniform interface over encodings)."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode, OsonDocument
from repro.core.oson.cache import CompiledFieldName
from repro.sqljson.adapters import (
    ARRAY,
    BsonAdapter,
    DictAdapter,
    MISSING,
    OBJECT,
    OsonAdapter,
    SCALAR,
    adapter_for,
)

DOC = {"name": "x", "items": [1, 2, 3], "nested": {"deep": True}}


def adapters():
    return {
        "dict": DictAdapter(DOC),
        "oson": OsonAdapter(OsonDocument(oson_encode(DOC))),
        "bson": BsonAdapter.from_bytes(bson.encode(DOC)),
    }


@pytest.mark.parametrize("name", ["dict", "oson", "bson"])
class TestUniformInterface:
    def test_kinds(self, name):
        adapter = adapters()[name]
        root = adapter.root
        assert adapter.kind(root) == OBJECT
        items = adapter.get_field(root, CompiledFieldName("items"))
        assert adapter.kind(items) == ARRAY
        name_node = adapter.get_field(root, CompiledFieldName("name"))
        assert adapter.kind(name_node) == SCALAR

    def test_get_field_missing(self, name):
        adapter = adapters()[name]
        assert adapter.get_field(adapter.root,
                                 CompiledFieldName("nope")) is MISSING

    def test_get_field_on_non_object(self, name):
        adapter = adapters()[name]
        items = adapter.get_field(adapter.root, CompiledFieldName("items"))
        assert adapter.get_field(items, CompiledFieldName("x")) is MISSING

    def test_fields_iteration(self, name):
        adapter = adapters()[name]
        fields = dict(adapter.fields(adapter.root))
        assert set(fields) == {"name", "items", "nested"}

    def test_array_access(self, name):
        adapter = adapters()[name]
        items = adapter.get_field(adapter.root, CompiledFieldName("items"))
        assert adapter.array_length(items) == 3
        assert adapter.scalar(adapter.element(items, 0)) == 1
        assert adapter.scalar(adapter.element(items, -1)) == 3
        assert adapter.element(items, 9) is MISSING
        assert adapter.element(items, -9) is MISSING
        assert [adapter.scalar(e) for e in adapter.elements(items)] \
            == [1, 2, 3]

    def test_array_length_of_non_array(self, name):
        adapter = adapters()[name]
        assert adapter.array_length(adapter.root) == 0

    def test_materialize(self, name):
        adapter = adapters()[name]
        assert adapter.materialize(adapter.root) == DOC


class TestAdapterFor:
    def test_dispatch(self):
        assert isinstance(adapter_for(DOC), DictAdapter)
        assert isinstance(adapter_for(oson_encode(DOC)), OsonAdapter)
        assert isinstance(adapter_for(bson.encode(DOC)), BsonAdapter)
        assert isinstance(adapter_for(OsonDocument(oson_encode(DOC))),
                          OsonAdapter)
        assert isinstance(adapter_for('{"a": 1}'), DictAdapter)

    def test_bytearray_dispatch(self):
        assert isinstance(adapter_for(bytearray(oson_encode(DOC))),
                          OsonAdapter)

    def test_missing_sentinel_is_falsy_and_unique(self):
        assert not MISSING
        assert MISSING is not None
        assert repr(MISSING) == "MISSING"
