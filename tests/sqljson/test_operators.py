"""Tests for JSON_VALUE / JSON_QUERY / JSON_EXISTS / JSON_TEXTCONTAINS."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode, OsonDocument
from repro.errors import PathEvaluationError
from repro.jsontext import dumps
from repro.sqljson import (
    json_exists,
    json_query,
    json_textcontains,
    json_value,
)

DOC = {
    "purchaseOrder": {
        "id": 1,
        "podate": "2014-09-08",
        "total": 450.86,
        "express": True,
        "items": [
            {"name": "phone", "price": 100},
            {"name": "ipad", "price": 350.86},
        ],
        "memo": "deliver to front desk",
    }
}

FORMS = {
    "dict": lambda d: d,
    "text": dumps,
    "oson": oson_encode,
    "bson": bson.encode,
    "oson_doc": lambda d: OsonDocument(oson_encode(d)),
}


@pytest.fixture(params=list(FORMS))
def doc(request):
    return FORMS[request.param](DOC)


class TestJsonValue:
    def test_scalar(self, doc):
        assert json_value(doc, "$.purchaseOrder.id") == 1
        assert json_value(doc, "$.purchaseOrder.podate") == "2014-09-08"
        assert json_value(doc, "$.purchaseOrder.express") is True

    def test_nested_array(self, doc):
        assert json_value(doc, "$.purchaseOrder.items[1].price") == 350.86

    def test_missing_returns_none(self, doc):
        assert json_value(doc, "$.purchaseOrder.nothing") is None

    def test_non_scalar_returns_none(self, doc):
        assert json_value(doc, "$.purchaseOrder.items") is None

    def test_multiple_matches_return_none(self, doc):
        assert json_value(doc, "$.purchaseOrder.items[*].price") is None

    def test_error_mode_raises(self, doc):
        with pytest.raises(PathEvaluationError):
            json_value(doc, "$.purchaseOrder.nothing", on_error="error")
        with pytest.raises(PathEvaluationError):
            json_value(doc, "$.purchaseOrder.items", on_error="error")

    def test_returning_number(self, doc):
        assert json_value(doc, "$.purchaseOrder.podate",
                          returning="varchar2(4)") == "2014"
        assert json_value(doc, "$.purchaseOrder.id",
                          returning="varchar2(10)") == "1"

    def test_returning_number_from_string(self):
        assert json_value({"v": "42"}, "$.v", returning="number") == 42
        assert json_value({"v": "4.5"}, "$.v", returning="number") == 4.5

    def test_returning_number_bad_string(self):
        assert json_value({"v": "abc"}, "$.v", returning="number") is None
        with pytest.raises(PathEvaluationError):
            json_value({"v": "abc"}, "$.v", returning="number",
                       on_error="error")

    def test_returning_boolean(self):
        assert json_value({"v": "true"}, "$.v", returning="boolean") is True
        assert json_value({"v": True}, "$.v", returning="boolean") is True

    def test_item_method(self, doc):
        assert json_value(doc, "$.purchaseOrder.items.size()") == 2


class TestJsonQuery:
    def test_object_fragment(self, doc):
        assert json_query(doc, "$.purchaseOrder.items[0]") == {
            "name": "phone", "price": 100}

    def test_array_fragment(self, doc):
        result = json_query(doc, "$.purchaseOrder.items")
        assert [r["name"] for r in result] == ["phone", "ipad"]

    def test_scalar_without_wrapper_is_none(self, doc):
        assert json_query(doc, "$.purchaseOrder.id") is None

    def test_wrapper_collects_matches(self, doc):
        assert json_query(doc, "$.purchaseOrder.items[*].price",
                          wrapper=True) == [100, 350.86]

    def test_wrapper_empty(self, doc):
        assert json_query(doc, "$.purchaseOrder.none", wrapper=True) == []

    def test_as_text(self, doc):
        text = json_query(doc, "$.purchaseOrder.items[0]", as_text=True)
        from repro.jsontext import loads
        assert loads(text) == {"name": "phone", "price": 100}

    def test_error_mode(self, doc):
        with pytest.raises(PathEvaluationError):
            json_query(doc, "$.purchaseOrder.id", on_error="error")


class TestJsonExists:
    def test_present(self, doc):
        assert json_exists(doc, "$.purchaseOrder.items")
        assert json_exists(doc, "$.purchaseOrder.items[1]")

    def test_absent(self, doc):
        assert not json_exists(doc, "$.purchaseOrder.discounts")
        assert not json_exists(doc, "$.purchaseOrder.items[5]")

    def test_with_predicate(self, doc):
        assert json_exists(doc, "$.purchaseOrder.items[*]?(@.price > 300)")
        assert not json_exists(doc, "$.purchaseOrder.items[*]?(@.price > 999)")

    def test_string_predicate(self, doc):
        assert json_exists(
            doc, '$.purchaseOrder.items[*]?(@.name == "ipad")')


class TestJsonTextContains:
    def test_all_keywords_must_match(self, doc):
        assert json_textcontains(doc, "$.purchaseOrder", "front desk")
        assert json_textcontains(doc, "$.purchaseOrder", "DELIVER")
        assert not json_textcontains(doc, "$.purchaseOrder", "front missing")

    def test_scoped_to_path(self, doc):
        assert json_textcontains(doc, "$.purchaseOrder.memo", "desk")
        assert not json_textcontains(doc, "$.purchaseOrder.items", "desk")

    def test_tokenization_in_nested_values(self, doc):
        assert json_textcontains(doc, "$.purchaseOrder.items", "ipad phone")

    def test_empty_keywords(self, doc):
        assert not json_textcontains(doc, "$.purchaseOrder", "")
        assert not json_textcontains(doc, "$.purchaseOrder", "  ,,  ")
