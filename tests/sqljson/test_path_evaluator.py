"""Tests for the DOM path engine across all three adapters."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode
from repro.errors import PathEvaluationError
from repro.sqljson.adapters import adapter_for
from repro.sqljson.path.evaluator import PathEvaluator
from repro.sqljson.path.parser import parse_path

DOC = {
    "store": {
        "name": "Books & More",
        "open": True,
        "books": [
            {"title": "A", "price": 10, "tags": ["x", "y"]},
            {"title": "B", "price": 25.5},
            {"title": "C", "price": 7, "tags": []},
        ],
        "address": {"city": "SF", "zip": "94105"},
    },
    "counts": [1, 2, 3, 4, 5],
}


def evaluate(path, doc=DOC, form="dict"):
    if form == "oson":
        data = oson_encode(doc)
    elif form == "bson":
        data = bson.encode(doc)
    else:
        data = doc
    adapter = adapter_for(data)
    return PathEvaluator(parse_path(path)).values(adapter)


FORMS = ["dict", "oson", "bson"]


@pytest.mark.parametrize("form", FORMS)
class TestAcrossAdapters:
    def test_member_chain(self, form):
        assert evaluate("$.store.name", form=form) == ["Books & More"]

    def test_missing_member_lax(self, form):
        assert evaluate("$.store.nothing", form=form) == []

    def test_array_wildcard(self, form):
        assert evaluate("$.store.books[*].title", form=form) == ["A", "B", "C"]

    def test_array_index(self, form):
        assert evaluate("$.counts[2]", form=form) == [3]

    def test_array_range(self, form):
        assert evaluate("$.counts[1 to 3]", form=form) == [2, 3, 4]

    def test_array_last(self, form):
        assert evaluate("$.counts[last]", form=form) == [5]
        assert evaluate("$.counts[last-1]", form=form) == [4]

    def test_array_multi_subscript(self, form):
        assert evaluate("$.counts[0, 2, 4]", form=form) == [1, 3, 5]

    def test_lax_member_over_array(self, form):
        # member step auto-unnests the array in lax mode
        assert evaluate("$.store.books.title", form=form) == ["A", "B", "C"]

    def test_lax_array_step_on_scalar(self, form):
        assert evaluate("$.store.name[0]", form=form) == ["Books & More"]
        assert evaluate("$.store.name[*]", form=form) == ["Books & More"]

    def test_wildcard_member(self, form):
        values = evaluate("$.store.address.*", form=form)
        assert sorted(values) == ["94105", "SF"]

    def test_descendant(self, form):
        assert sorted(evaluate("$..price", form=form)) == [7, 10, 25.5]

    def test_descendant_nested_name(self, form):
        assert evaluate("$..zip", form=form) == ["94105"]

    def test_filter_comparison(self, form):
        assert evaluate("$.store.books[*]?(@.price > 9).title",
                        form=form) == ["A", "B"]

    def test_filter_equality_string(self, form):
        assert evaluate('$.store.books[*]?(@.title == "B").price',
                        form=form) == [25.5]

    def test_filter_and_or(self, form):
        assert evaluate(
            '$.store.books[*]?(@.price < 9 || @.title == "A").title',
            form=form) == ["A", "C"]
        assert evaluate(
            '$.store.books[*]?(@.price > 5 && @.price < 20).title',
            form=form) == ["A", "C"]

    def test_filter_not(self, form):
        assert evaluate('$.store.books[*]?(!(@.title == "B")).title',
                        form=form) == ["A", "C"]

    def test_filter_exists(self, form):
        assert evaluate("$.store.books[*]?(exists(@.tags)).title",
                        form=form) == ["A", "C"]

    def test_filter_on_context_scalar(self, form):
        assert evaluate("$.counts[*]?(@ >= 4)", form=form) == [4, 5]

    def test_filter_has_substring(self, form):
        assert evaluate('$.store?(@.name has substring "Books").name',
                        form=form) == ["Books & More"]
        assert evaluate('$.store?(@.name has substring "zzz").name',
                        form=form) == []

    def test_filter_starts_with(self, form):
        assert evaluate('$.store?(@.name starts with "Books").name',
                        form=form) == ["Books & More"]

    def test_filter_path_vs_path(self, form):
        doc = {"rows": [{"a": 1, "b": 1}, {"a": 1, "b": 2}]}
        assert len(evaluate("$.rows[*]?(@.a == @.b)", doc=doc,
                            form=form)) == 1

    def test_filter_null_semantics(self, form):
        doc = {"rows": [{"v": None}, {"v": 1}, {}]}
        assert len(evaluate("$.rows[*]?(@.v == null)", doc=doc,
                            form=form)) == 1

    def test_cross_type_comparison_is_false(self, form):
        doc = {"rows": [{"v": "5"}, {"v": 5}]}
        assert len(evaluate("$.rows[*]?(@.v == 5)", doc=doc,
                            form=form)) == 1

    def test_existential_comparison_over_array(self, form):
        # lax: @.tags unwraps; true if ANY element matches
        assert evaluate('$.store.books[*]?(@.tags == "y").title',
                        form=form) == ["A"]

    def test_materializes_containers(self, form):
        result = evaluate("$.store.address", form=form)
        assert result == [{"city": "SF", "zip": "94105"}]


class TestItemMethods:
    def test_size(self):
        assert evaluate("$.store.books.size()") == [3]
        assert evaluate("$.store.name.size()") == [1]

    def test_type(self):
        assert evaluate("$.store.type()") == ["object"]
        assert evaluate("$.store.books.type()") == ["array"]
        assert evaluate("$.store.name.type()") == ["string"]
        assert evaluate("$.store.open.type()") == ["boolean"]
        assert evaluate("$.counts[0].type()") == ["number"]

    def test_number(self):
        assert evaluate('$.store.address.zip.number()') == [94105]

    def test_string(self):
        assert evaluate("$.counts[0].string()") == ["1"]
        assert evaluate("$.store.open.string()") == ["true"]

    def test_length(self):
        assert evaluate("$.store.address.city.length()") == [2]

    def test_numeric_methods(self):
        doc = {"v": -2.5}
        assert evaluate("$.v.ceiling()", doc=doc) == [-2]
        assert evaluate("$.v.floor()", doc=doc) == [-3]
        assert evaluate("$.v.abs()", doc=doc) == [2.5]

    def test_method_not_final_rejected(self):
        with pytest.raises(PathEvaluationError):
            PathEvaluator(parse_path("$.a.size().b"))


class TestStrictMode:
    def test_missing_member_raises(self):
        with pytest.raises(PathEvaluationError):
            evaluate("strict $.store.nothing")

    def test_member_on_scalar_raises(self):
        with pytest.raises(PathEvaluationError):
            evaluate("strict $.store.name.deeper")

    def test_array_step_on_non_array_raises(self):
        with pytest.raises(PathEvaluationError):
            evaluate("strict $.store.name[0]")

    def test_index_out_of_range_raises(self):
        with pytest.raises(PathEvaluationError):
            evaluate("strict $.counts[99]")

    def test_valid_strict_path_works(self):
        assert evaluate("strict $.store.books[0].title") == ["A"]

    def test_no_auto_unnesting(self):
        with pytest.raises(PathEvaluationError):
            evaluate("strict $.store.books.title")


class TestExists:
    def test_exists_true_false(self):
        adapter = adapter_for(DOC)
        assert PathEvaluator(parse_path("$.store.books")).exists(adapter)
        assert not PathEvaluator(parse_path("$.store.cds")).exists(adapter)

    def test_empty_array_still_exists(self):
        adapter = adapter_for({"a": []})
        assert PathEvaluator(parse_path("$.a")).exists(adapter)
        assert not PathEvaluator(parse_path("$.a[*]")).exists(adapter)
