"""Differential tests: the OSON navigation VM vs the DOM path evaluator.

The partial-decode fast path (:mod:`repro.core.oson.navigate`) must
return byte-identical results to the adapter-walking evaluator for every
path it claims to support — node offset lists compare with ``==`` over
ints, so equality here *is* byte identity.  Documents and paths are
drawn from a shared small alphabet so member steps, filters and
comparisons actually collide with document content instead of testing
the empty result forever.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oson import OsonDocument, encode, set_navigation_enabled
from repro.sqljson.adapters import OsonAdapter
from repro.sqljson.path.compiler import compile_nav
from repro.sqljson.path.evaluator import PathEvaluator
from repro.sqljson.path.parser import compile_path

# -- strategies ----------------------------------------------------------------

_KEYS = st.sampled_from(["a", "b", "c", "d"])

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-3, max_value=4),
    st.sampled_from([0.5, 2.0, -1.25]),
    st.sampled_from(["x", "a", "ab", ""]),
)

_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_KEYS, children, max_size=4),
    ),
    max_leaves=20,
)

_DOCUMENTS = st.dictionaries(_KEYS, _VALUES, max_size=4)

_MEMBER = _KEYS.map(lambda k: f".{k}")

_SUBSCRIPT = st.one_of(
    st.integers(min_value=0, max_value=3).map(lambda i: f"[{i}]"),
    st.just("[*]"),
    st.just("[last]"),
    st.integers(min_value=0, max_value=2).map(lambda i: f"[last-{i}]"),
    st.tuples(st.integers(0, 2), st.integers(0, 3)).map(
        lambda t: f"[{t[0]} to {t[1]}]"),
    st.tuples(st.integers(0, 2), st.integers(0, 2)).map(
        lambda t: f"[{t[0]}, {t[1]}]"),
    st.integers(min_value=0, max_value=2).map(
        lambda i: f"[{i} to last]"),
)

_FILTER = st.one_of(
    _KEYS.map(lambda k: f"?(@.{k} == 1)"),
    _KEYS.map(lambda k: f'?(@.{k} == "x")'),
    _KEYS.map(lambda k: f"?(@.{k} == null)"),
    _KEYS.map(lambda k: f"?(@.{k} == true)"),
    _KEYS.map(lambda k: f"?(@.{k} > 0)"),
    _KEYS.map(lambda k: f"?(@.{k} <= 2)"),
    _KEYS.map(lambda k: f"?(exists(@.{k}))"),
    st.tuples(_KEYS, _KEYS).map(
        lambda t: f"?(@.{t[0]} > 0 && @.{t[1]} < 3)"),
    st.tuples(_KEYS, _KEYS).map(
        lambda t: f'?(@.{t[0]} == 2 || @.{t[1]} == "a")'),
    _KEYS.map(lambda k: f"?(!(@.{k} == null))"),
    _KEYS.map(lambda k: f'?(@.{k} starts with "a")'),
    _KEYS.map(lambda k: f'?(@.{k} has substring "b")'),
    st.tuples(_KEYS, _KEYS).map(
        lambda t: f"?(@.{t[0]}[0] == @.{t[1]})"),
)

_PATHS = st.lists(st.one_of(_MEMBER, _SUBSCRIPT, _FILTER),
                  max_size=4).map(lambda parts: "$" + "".join(parts))


def _both_ways(adapter: OsonAdapter, evaluator: PathEvaluator):
    previous = set_navigation_enabled(False)
    try:
        slow = evaluator.select_from(adapter, adapter.root)
    finally:
        set_navigation_enabled(previous)
    fast = evaluator.select_from(adapter, adapter.root)
    return fast, slow


@settings(max_examples=300, deadline=None)
@given(doc=_DOCUMENTS, path=_PATHS)
def test_navigate_matches_dom_evaluator(doc, path):
    adapter = OsonAdapter(OsonDocument(encode(doc)))
    evaluator = PathEvaluator(compile_path(path))
    fast, slow = _both_ways(adapter, evaluator)
    assert fast == slow, (path, doc)


@settings(max_examples=150, deadline=None)
@given(doc=_DOCUMENTS, path=_PATHS)
def test_supported_paths_actually_compile(doc, path):
    """Guard against the fast path silently rotting: every generated
    path shape above is inside the VM's supported subset, so the
    compiler must produce a program (the differential test would be
    vacuous otherwise)."""
    program = compile_nav(compile_path(path))
    assert program is not None, path


@settings(max_examples=150, deadline=None)
@given(doc=_DOCUMENTS, path=_PATHS)
def test_navigate_values_match(doc, path):
    """Materialized values agree too (exercises the scalar/subtree
    decode that follows navigation)."""
    adapter = OsonAdapter(OsonDocument(encode(doc)))
    evaluator = PathEvaluator(compile_path(path))
    previous = set_navigation_enabled(False)
    try:
        slow = evaluator.values(adapter)
    finally:
        set_navigation_enabled(previous)
    fast = evaluator.values(adapter)
    assert fast == slow, (path, doc)


def test_unsupported_shapes_fall_back():
    """Strict mode, descendants, wildcards members and item methods stay
    on the DOM evaluator (compile_nav returns None) — and both paths
    still agree there because they are the same code."""
    for text in ("strict $.a.b", "$..a", "$.*", "$.a.size()",
                 "$.a.type()"):
        assert compile_nav(compile_path(text)) is None, text
