"""Tests for the SQL/JSON path lexer and parser."""

import pytest

from repro.errors import PathSyntaxError
from repro.sqljson.path import ast
from repro.sqljson.path.parser import compile_path, parse_path


class TestBasicPaths:
    def test_root_only(self):
        path = parse_path("$")
        assert path.steps == ()
        assert path.mode == ast.LAX

    def test_member_chain(self):
        path = parse_path("$.purchaseOrder.items")
        assert [s.name for s in path.steps] == ["purchaseOrder", "items"]

    def test_quoted_member(self):
        path = parse_path('$."weird name"."with.dot"')
        assert [s.name for s in path.steps] == ["weird name", "with.dot"]

    def test_quoted_member_escapes(self):
        path = parse_path(r'$."tab\there"')
        assert path.steps[0].name == "tab\there"

    def test_wildcard_member(self):
        path = parse_path("$.*")
        assert isinstance(path.steps[0], ast.WildcardMemberStep)

    def test_descendant(self):
        path = parse_path("$..price")
        assert isinstance(path.steps[0], ast.DescendantStep)
        assert path.steps[0].name == "price"

    def test_modes(self):
        assert parse_path("lax $.a").mode == ast.LAX
        assert parse_path("strict $.a").mode == ast.STRICT

    def test_keywords_usable_as_field_names(self):
        path = parse_path("$.lax.strict.exists.to")
        assert [s.name for s in path.steps] == ["lax", "strict", "exists", "to"]


class TestArraySteps:
    def test_wildcard(self):
        step = parse_path("$.a[*]").steps[1]
        assert step.is_wildcard

    def test_single_index(self):
        step = parse_path("$[3]").steps[0]
        assert step.indexes == (ast.ArrayIndex(3),)

    def test_range(self):
        step = parse_path("$[1 to 4]").steps[0]
        assert step.indexes[0].start == 1
        assert step.indexes[0].end == 4

    def test_list_of_ranges(self):
        step = parse_path("$[0, 2, 5 to 7]").steps[0]
        assert len(step.indexes) == 3

    def test_last(self):
        step = parse_path("$[last]").steps[0]
        assert step.indexes[0].last_relative
        assert step.indexes[0].start == 0

    def test_last_minus(self):
        step = parse_path("$[last-2]").steps[0]
        assert step.indexes[0].last_relative
        assert step.indexes[0].start == 2

    def test_range_to_last(self):
        step = parse_path("$[1 to last]").steps[0]
        assert step.indexes[0].end_last_relative

    def test_float_index_rejected(self):
        with pytest.raises(PathSyntaxError):
            parse_path("$[1.5]")


class TestFilters:
    def test_comparison(self):
        path = parse_path("$.items?(@.price > 100)")
        predicate = path.steps[1].predicate
        assert isinstance(predicate, ast.Comparison)
        assert predicate.op == ">"

    def test_all_comparison_ops(self):
        for op in ("==", "!=", "<", "<=", ">", ">=", "<>"):
            parse_path(f"$?(@.x {op} 1)")

    def test_boolean_connectives(self):
        path = parse_path("$?(@.a == 1 && @.b == 2 || @.c == 3)")
        assert isinstance(path.steps[0].predicate, ast.Or)

    def test_not(self):
        path = parse_path("$?(!(@.a == 1))")
        assert isinstance(path.steps[0].predicate, ast.Not)

    def test_exists(self):
        path = parse_path("$?(exists(@.a.b))")
        assert isinstance(path.steps[0].predicate, ast.Exists)

    def test_literals(self):
        path = parse_path('$?(@.a == "x" || @.b == 1.5 || @.c == true '
                          "|| @.d == false || @.e == null || @.f == -3)")
        literals = [p.right.value for p in path.steps[0].predicate.parts]
        assert literals == ["x", 1.5, True, False, None, -3]

    def test_context_item_comparison(self):
        path = parse_path("$.tags[*]?(@ == \"x\")")
        predicate = path.steps[2].predicate
        assert predicate.left.steps == ()

    def test_has_substring(self):
        path = parse_path('$?(@.name has substring "pho")')
        assert path.steps[0].predicate.kind == "has_substring"

    def test_starts_with(self):
        path = parse_path('$?(@.name starts with "ph")')
        assert path.steps[0].predicate.kind == "starts_with"

    def test_path_to_path_comparison(self):
        path = parse_path("$?(@.a == @.b)")
        predicate = path.steps[0].predicate
        assert isinstance(predicate.right, ast.RelativePath)


class TestItemMethods:
    @pytest.mark.parametrize("method", ["size", "type", "count", "number",
                                        "string", "length", "double",
                                        "ceiling", "floor", "abs"])
    def test_methods_parse(self, method):
        path = parse_path(f"$.a.{method}()")
        assert isinstance(path.steps[-1], ast.ItemMethodStep)
        assert path.steps[-1].method == method

    def test_method_name_without_parens_is_member(self):
        path = parse_path("$.size")
        assert isinstance(path.steps[0], ast.MemberStep)


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "a.b", ".a", "$.", "$[", "$[]", "$[1", "$.a?(", "$.a?()",
        "$?(@.a =)", "$?(@.a == )", "$?(@.a & @.b)", "$?(@.a | 1)",
        "$.a extra", "$..", "$?(has)", "$?(@ has \"x\")",
        "$?(@ starts \"x\")", "$[last+1]",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)


class TestCompileCache:
    def test_compile_path_memoized(self):
        assert compile_path("$.a.b") is compile_path("$.a.b")

    def test_compiled_hashes_precomputed(self):
        from repro.core.oson.hashing import field_name_hash
        path = compile_path("$.someField")
        assert path.steps[0].compiled.hash == field_name_hash("someField")


class TestRoundTripStr:
    @pytest.mark.parametrize("text", [
        "$", "$.a", "$.a.b[*]", "$[0]", "$[last]", "$[last-2]",
        "$[1 to 3]", "$[0, 2]", "$.*", "$..name", "$.a.size()",
    ])
    def test_str_reparses_to_same_ast(self, text):
        path = parse_path(text)
        assert parse_path(str(path)) == path
