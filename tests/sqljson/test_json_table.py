"""Tests for JSON_TABLE: nested paths, join semantics, the row source API."""

import pytest

from repro import bson
from repro.core.oson import encode as oson_encode
from repro.errors import QueryError
from repro.jsontext import dumps
from repro.sqljson import ColumnDef, JsonTable, NestedPath

PO_DOC = {
    "purchaseOrder": {
        "id": 1,
        "podate": "2014-09-08",
        "items": [
            {"name": "TV", "price": 345.55, "quantity": 1,
             "parts": [{"partName": "remoteCon", "partQuantity": "1"},
                       {"partName": "antenna", "partQuantity": "2"}]},
            {"name": "PC", "price": 546.78, "quantity": 10},
        ],
        "discount_items": [
            {"dis_itemName": "cable", "dis_itemPrice": 5.0},
        ],
    }
}


def po_table():
    return JsonTable("$", [
        ColumnDef("id", "number", "$.purchaseOrder.id"),
        ColumnDef("podate", "varchar2(16)", "$.purchaseOrder.podate"),
        NestedPath("$.purchaseOrder.items[*]", [
            ColumnDef("name", "varchar2(16)", "$.name"),
            ColumnDef("price", "number", "$.price"),
            NestedPath("$.parts[*]", [
                ColumnDef("partName", "varchar2(16)", "$.partName"),
                ColumnDef("partQuantity", "varchar2(4)", "$.partQuantity"),
            ]),
        ]),
        NestedPath("$.purchaseOrder.discount_items[*]", [
            ColumnDef("dis_itemName", "varchar2(16)", "$.dis_itemName"),
            ColumnDef("dis_itemPrice", "number", "$.dis_itemPrice"),
        ]),
    ])


class TestBasicProjection:
    def test_simple_columns(self):
        table = JsonTable("$", [
            ColumnDef("id", "number", "$.purchaseOrder.id"),
            ColumnDef("podate", "varchar2(16)", "$.purchaseOrder.podate"),
        ])
        assert table.rows(PO_DOC) == [{"id": 1, "podate": "2014-09-08"}]

    def test_default_path_from_name(self):
        table = JsonTable("$", [ColumnDef("a"), ColumnDef("b")])
        assert table.rows({"a": "x", "b": "y"}) == [{"a": "x", "b": "y"}]

    def test_row_path_unnests(self):
        table = JsonTable("$.purchaseOrder.items[*]", [
            ColumnDef("name", "varchar2(16)", "$.name"),
        ])
        assert table.rows(PO_DOC) == [{"name": "TV"}, {"name": "PC"}]

    def test_missing_column_is_null(self):
        table = JsonTable("$", [ColumnDef("nope", "number", "$.missing")])
        assert table.rows(PO_DOC) == [{"nope": None}]

    def test_type_coercion(self):
        table = JsonTable("$", [
            ColumnDef("id_text", "varchar2(8)", "$.purchaseOrder.id"),
            ColumnDef("truncated", "varchar2(4)", "$.purchaseOrder.podate"),
        ])
        assert table.rows(PO_DOC) == [{"id_text": "1", "truncated": "2014"}]

    def test_column_value_from_item_method(self):
        table = JsonTable("$", [
            ColumnDef("n_items", "number", "$.purchaseOrder.items.size()"),
        ])
        assert table.rows(PO_DOC) == [{"n_items": 2}]


class TestJoinSemantics:
    def test_left_outer_join_child(self):
        """Parents without details still produce one row (NULL details)."""
        rows = po_table().rows(PO_DOC)
        pc_rows = [r for r in rows if r["name"] == "PC"]
        assert len(pc_rows) == 1
        assert pc_rows[0]["partName"] is None  # PC has no parts

    def test_child_expansion(self):
        rows = po_table().rows(PO_DOC)
        tv_rows = [r for r in rows if r["name"] == "TV"]
        assert [r["partName"] for r in tv_rows] == ["remoteCon", "antenna"]

    def test_master_fields_repeated(self):
        rows = po_table().rows(PO_DOC)
        assert all(r["id"] == 1 for r in rows)

    def test_union_join_siblings(self):
        """Sibling nested paths: each sibling's rows NULL the other's cols."""
        rows = po_table().rows(PO_DOC)
        item_rows = [r for r in rows if r["name"] is not None]
        discount_rows = [r for r in rows if r["dis_itemName"] is not None]
        assert len(item_rows) == 3       # TV x2 parts + PC x1
        assert len(discount_rows) == 1
        assert all(r["dis_itemName"] is None for r in item_rows)
        assert all(r["name"] is None for r in discount_rows)
        assert len(rows) == 4

    def test_empty_document_single_null_row(self):
        rows = po_table().rows({})
        assert len(rows) == 1
        assert all(v is None for v in rows[0].values())

    def test_all_columns_present_in_every_row(self):
        table = po_table()
        for row in table.rows(PO_DOC):
            assert set(row) == set(table.column_names)


class TestFormatParity:
    def test_same_rows_for_all_encodings(self):
        table = po_table()
        expected = table.rows(PO_DOC)
        assert table.rows(dumps(PO_DOC)) == expected
        assert table.rows(oson_encode(PO_DOC)) == expected
        assert table.rows(bson.encode(PO_DOC)) == expected


class TestAbsolutePaths:
    def test_scalar_column_paths(self):
        paths = po_table().absolute_paths
        assert paths["id"] == "$.purchaseOrder.id"
        assert paths["name"] == "$.purchaseOrder.items[*].name"
        assert paths["partName"] == \
            "$.purchaseOrder.items[*].parts[*].partName"
        assert paths["dis_itemPrice"] == \
            "$.purchaseOrder.discount_items[*].dis_itemPrice"


class TestValidation:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(QueryError):
            JsonTable("$", [ColumnDef("x"), ColumnDef("x")])

    def test_duplicate_across_nesting_rejected(self):
        with pytest.raises(QueryError):
            JsonTable("$", [
                ColumnDef("x"),
                NestedPath("$.a[*]", [ColumnDef("x")]),
            ])

    def test_bad_column_spec_rejected(self):
        with pytest.raises(QueryError):
            JsonTable("$", ["not-a-column"])


class TestRowSource:
    def docs(self):
        return [PO_DOC, {}, PO_DOC]

    def test_start_fetch_close(self):
        source = po_table().open(self.docs())
        source.start()
        rows = []
        while True:
            batch = source.fetch_next_batch(3)
            if not batch:
                break
            rows.append(batch)
            assert len(batch) <= 3
        source.close()
        flattened = [r for batch in rows for r in batch]
        assert len(flattened) == 4 + 1 + 4

    def test_fetch_before_start_raises(self):
        source = po_table().open(self.docs())
        with pytest.raises(QueryError):
            source.fetch_next_batch()

    def test_start_after_close_raises(self):
        source = po_table().open(self.docs())
        source.start()
        source.close()
        with pytest.raises(QueryError):
            source.start()

    def test_iter_rows(self):
        rows = list(po_table().iter_rows([PO_DOC, PO_DOC]))
        assert len(rows) == 8


class TestDmdvRowCache:
    """The bounded memoization of OSON expansions (the in-memory DMDV)."""

    def test_oson_expansion_is_cached(self):
        from repro.core.counters import cache_named
        from repro.sqljson.adapters import adapter_for
        cache = cache_named("sqljson.jsontable_rows")
        cache.counters.reset()
        table = po_table()
        adapter = adapter_for(oson_encode(PO_DOC))
        first = table.rows_with_adapter(adapter)
        second = table.rows_with_adapter(adapter)
        assert first == second
        assert cache.counters.hits >= 1

    def test_cached_rows_are_private_copies(self):
        from repro.sqljson.adapters import adapter_for
        table = po_table()
        adapter = adapter_for(oson_encode(PO_DOC))
        first = table.rows_with_adapter(adapter)
        first[0]["id"] = "corrupted"
        second = table.rows_with_adapter(adapter)
        assert second[0]["id"] == 1

    def test_text_documents_are_not_cached(self):
        table = po_table()
        assert table.cached_rows(dumps(PO_DOC)) is None

    def test_distinct_tables_do_not_share_entries(self):
        from repro.sqljson.adapters import adapter_for
        adapter = adapter_for(oson_encode(PO_DOC))
        wide = po_table()
        narrow = JsonTable("$", [ColumnDef("id", "number",
                                           "$.purchaseOrder.id")])
        assert len(wide.rows_with_adapter(adapter)[0]) == 8
        assert narrow.rows_with_adapter(adapter) == [{"id": 1}]

    def test_disabled_cache_recomputes(self):
        from repro.core.counters import (
            restore_caches_enabled,
            set_caches_enabled,
        )
        from repro.sqljson.adapters import adapter_for
        table = po_table()
        adapter = adapter_for(oson_encode(PO_DOC))
        previous = set_caches_enabled(
            False, names=["sqljson.jsontable_rows"])
        try:
            rows = table.rows_with_adapter(adapter)
            assert table.cached_rows(adapter) is None
            assert rows == table.rows_with_adapter(adapter)
        finally:
            restore_caches_enabled(previous)
