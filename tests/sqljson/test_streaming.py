"""Tests for the streaming path engine over JSON text events."""

from hypothesis import given, settings

from repro.jsontext import dumps
from repro.sqljson.adapters import DictAdapter
from repro.sqljson.path.evaluator import PathEvaluator
from repro.sqljson.path.parser import parse_path
from repro.sqljson.path.streaming import (
    is_streamable,
    stream_exists,
    stream_select,
)
from tests.strategies import json_documents

DOC = {
    "a": {"b": [{"c": 1}, {"c": 2}, {"d": 3}]},
    "x": [10, 20, 30],
    "y": "scalar",
}
TEXT = dumps(DOC)


class TestStreamability:
    def test_simple_paths_streamable(self):
        for text in ("$", "$.a", "$.a.b", "$.a.b[*]", "$.a.b[0].c",
                     "$.x[2]"):
            assert is_streamable(parse_path(text)), text

    def test_complex_paths_not_streamable(self):
        for text in ("$.a.b[*]?(@.c == 1)", "$..c", "$.*", "$.x[last]",
                     "$.x[0 to 1]", "$.x[0, 2]", "$.a.size()"):
            assert not is_streamable(parse_path(text)), text


class TestStreamSelect:
    def test_member_chain(self):
        assert stream_select(TEXT, parse_path("$.y")) == ["scalar"]

    def test_nested(self):
        assert stream_select(TEXT, parse_path("$.a.b[0].c")) == [1]

    def test_wildcard(self):
        assert stream_select(TEXT, parse_path("$.a.b[*].c")) == [1, 2]

    def test_index(self):
        assert stream_select(TEXT, parse_path("$.x[1]")) == [20]

    def test_missing(self):
        assert stream_select(TEXT, parse_path("$.nope.deep")) == []

    def test_materializes_subtree(self):
        assert stream_select(TEXT, parse_path("$.a.b[2]")) == [{"d": 3}]

    def test_lax_unnest_in_stream(self):
        # member step over an array of objects auto-unnests
        assert stream_select(TEXT, parse_path("$.a.b.c")) == [1, 2]

    def test_fallback_for_complex_path(self):
        assert stream_select(TEXT, parse_path("$.a.b[*]?(@.c == 2).c")) == [2]
        assert sorted(stream_select(TEXT, parse_path("$..c"))) == [1, 2]

    def test_exists_short_circuits(self):
        assert stream_exists(TEXT, parse_path("$.a.b[1].c"))
        assert not stream_exists(TEXT, parse_path("$.a.b[9]"))
        assert stream_exists(TEXT, parse_path("$.a.b[*]?(@.d == 3)"))


class TestParityWithDom:
    PATHS = ["$", "$.a", "$.a.b", "$.a.b[*]", "$.a.b[*].c", "$.a.b[1]",
             "$.x[0]", "$.x[*]", "$.y", "$.missing", "$.a.b.c"]

    def test_stream_equals_dom(self):
        adapter = DictAdapter(DOC)
        for text in self.PATHS:
            path = parse_path(text)
            dom_result = PathEvaluator(path).values(adapter)
            assert stream_select(TEXT, path) == dom_result, text

    @settings(max_examples=60)
    @given(json_documents(max_leaves=12))
    def test_stream_equals_dom_property(self, doc):
        text = dumps(doc)
        adapter = DictAdapter(doc)
        for path_text in ("$", "$.a", "$.a.b", "$.a[0]", "$.a[*]", "$.a.b[*]"):
            path = parse_path(path_text)
            assert (stream_select(text, path)
                    == PathEvaluator(path).values(adapter)), path_text
