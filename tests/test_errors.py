"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_engine_sub_hierarchy(self):
        for cls in (errors.CatalogError, errors.ConstraintViolation,
                    errors.TypeCoercionError, errors.QueryError):
            assert issubclass(cls, errors.EngineError)

    def test_oson_update_is_oson_error(self):
        assert issubclass(errors.OsonUpdateError, errors.OsonError)

    def test_positional_errors_carry_position(self):
        error = errors.JsonParseError("bad", 17)
        assert error.position == 17
        assert "17" in str(error)
        error = errors.PathSyntaxError("bad", 3)
        assert error.position == 3

    def test_position_optional(self):
        error = errors.JsonParseError("bad")
        assert error.position == -1
        assert str(error) == "bad"

    def test_catchable_via_base(self):
        from repro.jsontext import loads
        with pytest.raises(errors.ReproError):
            loads("{bad json")
