"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_engine_sub_hierarchy(self):
        for cls in (errors.CatalogError, errors.ConstraintViolation,
                    errors.TypeCoercionError, errors.QueryError):
            assert issubclass(cls, errors.EngineError)

    def test_oson_update_is_oson_error(self):
        assert issubclass(errors.OsonUpdateError, errors.OsonError)

    def test_positional_errors_carry_position(self):
        error = errors.JsonParseError("bad", 17)
        assert error.position == 17
        assert "17" in str(error)
        error = errors.PathSyntaxError("bad", 3)
        assert error.position == 3

    def test_position_optional(self):
        error = errors.JsonParseError("bad")
        assert error.position == -1
        assert str(error) == "bad"

    def test_catchable_via_base(self):
        from repro.jsontext import loads
        with pytest.raises(errors.ReproError):
            loads("{bad json")


class TestBinaryFormatErrors:
    """Decoder and verifier failures surface as the documented types,
    with byte-offset context (ISSUE satellite: error-contract tests)."""

    def test_bson_and_oson_are_binary_format_errors(self):
        assert issubclass(errors.BsonError, errors.BinaryFormatError)
        assert issubclass(errors.OsonError, errors.BinaryFormatError)
        assert issubclass(errors.BinaryFormatError, errors.ReproError)

    def test_offset_rendered_in_message(self):
        error = errors.OsonError("bad node", offset=42)
        assert error.offset == 42
        assert "(at byte 42)" in str(error)

    def test_offset_optional(self):
        error = errors.BsonError("bad document")
        assert error.offset == -1
        assert str(error) == "bad document"

    def test_truncated_oson_surfaces_offset_context(self):
        from repro.core.oson import decode, encode
        img = encode({"a": "payload-string"})
        with pytest.raises(errors.OsonError) as exc_info:
            decode(img[:-4])
        assert exc_info.value.offset >= -1  # attribute always present

    def test_truncated_bson_raises_bson_error(self):
        from repro.bson import decode, encode
        img = encode({"a": 1})
        with pytest.raises(errors.BsonError):
            decode(img[:-2])

    def test_corrupt_oson_caught_via_one_base(self):
        from repro.core.oson import decode, encode
        img = bytearray(encode({"n": 7}))
        img[-1] ^= 0xFF
        try:
            decode(bytes(img))
        except errors.BinaryFormatError as error:
            assert isinstance(error, errors.OsonError)

    def test_verifier_diagnostics_mirror_decoder_offsets(self):
        """The static verifier reports byte offsets in the same absolute
        coordinate system the decoder errors use."""
        from repro.analysis import verify_oson
        from repro.core.oson import encode
        img = encode({"a": 1})
        diagnostics = verify_oson(img[:-1])
        assert diagnostics
        assert all(d.offset is None or 0 <= d.offset <= len(img)
                   for d in diagnostics)


class TestPickling:
    """Exceptions must survive a pickle roundtrip without losing their
    positional context (ISSUE satellite: multiprocessing re-raises
    worker exceptions by pickling them)."""

    def roundtrip(self, error):
        import pickle
        return pickle.loads(pickle.dumps(error))

    def test_json_parse_error_keeps_position(self):
        clone = self.roundtrip(errors.JsonParseError("bad token", 17))
        assert isinstance(clone, errors.JsonParseError)
        assert clone.position == 17
        assert "17" in str(clone)

    def test_path_syntax_error_keeps_position(self):
        clone = self.roundtrip(errors.PathSyntaxError("bad step", 3))
        assert clone.position == 3

    def test_binary_format_errors_keep_offset(self):
        for cls in (errors.BinaryFormatError, errors.BsonError,
                    errors.OsonError, errors.OsonUpdateError):
            clone = self.roundtrip(cls("damaged", offset=42))
            assert type(clone) is cls
            assert clone.offset == 42
            assert "(at byte 42)" in str(clone)

    def test_message_not_doubled_by_roundtrip(self):
        # the str() suffix ("at position N") must not accumulate when
        # the reconstructed message is formatted again
        error = errors.JsonParseError("bad", 5)
        clone = self.roundtrip(self.roundtrip(error))
        assert str(clone) == str(error)

    def test_defaults_survive(self):
        clone = self.roundtrip(errors.OsonError("plain"))
        assert clone.offset == -1
        assert str(clone) == "plain"

    def test_raised_decoder_error_roundtrips(self):
        from repro.core.oson import decode, encode
        img = encode({"a": "payload"})
        with pytest.raises(errors.OsonError) as exc_info:
            decode(img[:-4])
        clone = self.roundtrip(exc_info.value)
        assert str(clone) == str(exc_info.value)
        assert clone.offset == exc_info.value.offset

    def test_serialize_error_keeps_json_type(self):
        clone = self.roundtrip(
            errors.JsonSerializeError("bad key", json_type="frozenset"))
        assert isinstance(clone, errors.JsonSerializeError)
        assert clone.json_type == "frozenset"
        assert "(python type frozenset)" in str(clone)
        assert str(self.roundtrip(clone)) == str(clone)  # no doubling

    def test_serialize_error_without_type(self):
        clone = self.roundtrip(errors.JsonSerializeError("NaN"))
        assert clone.json_type is None
        assert str(clone) == "NaN"

    def test_raised_serialize_error_roundtrips(self):
        from repro.jsontext import dumps
        with pytest.raises(errors.JsonSerializeError) as exc_info:
            dumps({3.5: "x"})
        clone = self.roundtrip(exc_info.value)
        assert str(clone) == str(exc_info.value)
        assert clone.json_type == "float"


class TestServeErrors:
    """Serving-layer errors: typed, attribute-carrying, picklable
    (ISSUE 7: admission control returns Overloaded/Timeout, never bare
    exceptions)."""

    def roundtrip(self, error):
        import pickle
        return pickle.loads(pickle.dumps(error))

    def test_sub_hierarchy(self):
        for cls in (errors.Overloaded, errors.QueryTimeout,
                    errors.Cancelled, errors.SessionClosed):
            assert issubclass(cls, errors.ServeError)
        assert issubclass(errors.ServeError, errors.ReproError)

    def test_overloaded_carries_queue_context(self):
        error = errors.Overloaded("shed", 64, 64)
        assert error.queue_depth == 64
        assert error.limit == 64
        assert "(queue 64/64)" in str(error)
        clone = self.roundtrip(error)
        assert clone.queue_depth == 64
        assert str(self.roundtrip(clone)) == str(error)  # no doubling

    def test_query_timeout_carries_elapsed(self):
        error = errors.QueryTimeout("deadline", 125.5)
        assert error.elapsed_ms == 125.5
        assert "(after 125.5ms)" in str(error)
        clone = self.roundtrip(error)
        assert clone.elapsed_ms == 125.5

    def test_context_optional(self):
        assert str(errors.Overloaded("shed")) == "shed"
        assert str(errors.QueryTimeout("slow")) == "slow"


class TestFaultToleranceErrors:
    """Fault-tolerance errors (ISSUE satellite: the __reduce__ pickling
    contract): typed, attribute-carrying, and round-trippable — the
    scatter pool and the chaos report both re-materialize them."""

    def roundtrip(self, error):
        import pickle
        return pickle.loads(pickle.dumps(error))

    def test_hierarchy(self):
        assert issubclass(errors.TransientFault, errors.StorageError)
        assert issubclass(errors.ShardUnavailable, errors.StorageError)
        assert issubclass(errors.DegradedResult, errors.ServeError)

    def test_retryable_faults_cover_transient_and_os(self):
        assert errors.TransientFault in errors.RETRYABLE_FAULTS
        assert OSError in errors.RETRYABLE_FAULTS
        # semantic errors must never be retryable
        assert errors.QueryError not in errors.RETRYABLE_FAULTS

    def test_transient_fault_carries_injection_site(self):
        error = errors.TransientFault("injected io_error",
                                      fault_point="shard.scan",
                                      shard_index=2)
        assert "(at shard.scan)" in str(error)
        clone = self.roundtrip(error)
        assert clone.fault_point == "shard.scan"
        assert clone.shard_index == 2
        assert str(self.roundtrip(clone)) == str(error)  # no doubling

    def test_transient_fault_defaults(self):
        error = self.roundtrip(errors.TransientFault("plain"))
        assert str(error) == "plain"
        assert error.fault_point is None
        assert error.shard_index == -1

    def test_shard_unavailable_carries_state(self):
        error = errors.ShardUnavailable("write refused", shard_index=3,
                                        state="failed")
        assert "(shard 3 failed)" in str(error)
        clone = self.roundtrip(error)
        assert clone.shard_index == 3
        assert clone.state == "failed"
        assert str(self.roundtrip(clone)) == str(error)

    def test_shard_unavailable_defaults(self):
        error = self.roundtrip(errors.ShardUnavailable("down"))
        assert str(error) == "down"
        assert error.shard_index == -1
        assert error.state == ""

    def test_degraded_result_names_missing_shards(self):
        error = errors.DegradedResult("partial result", (1, 3),
                                      retries=5)
        assert "(shards 1,3 missing)" in str(error)
        clone = self.roundtrip(error)
        assert clone.shards_failed == (1, 3)
        assert clone.retries == 5
        assert str(self.roundtrip(clone)) == str(error)

    def test_degraded_result_coerces_list_to_tuple(self):
        error = errors.DegradedResult("partial", [2])
        assert error.shards_failed == (2,)
        assert self.roundtrip(error).shards_failed == (2,)

    def test_raised_chaos_fault_roundtrips(self):
        from repro.storage import chaos
        plan = chaos.ChaosPlan(seed=1, rules=(
            chaos.ChaosRule(point="shard.read"),))
        with pytest.raises(errors.TransientFault) as exc_info:
            chaos.ChaosInjector(plan).fault_point("shard.read", shard=1)
        clone = self.roundtrip(exc_info.value)
        assert str(clone) == str(exc_info.value)
        assert clone.shard_index == 1
