"""Tests for partial OSON updates (leaf scalars only)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.oson import encode, OsonUpdater
from repro.errors import OsonUpdateError

BASE = {
    "name": "phone",
    "price": 100,
    "rating": 4.5,
    "active": True,
    "note": None,
    "tags": ["a", "b"],
    "nested": {"qty": 3},
}


def updater():
    return OsonUpdater(encode(BASE))


class TestInPlace:
    def test_int_update(self):
        u = updater()
        u.set_scalar_by_path(["price"], 250)
        assert u.document.materialize()["price"] == 250

    def test_int_to_float_same_class(self):
        u = updater()
        u.set_scalar_by_path(["price"], 99.5)
        assert u.document.materialize()["price"] == 99.5

    def test_float_update(self):
        u = updater()
        u.set_scalar_by_path(["rating"], 2.75)
        assert u.document.materialize()["rating"] == 2.75

    def test_bool_flip(self):
        u = updater()
        u.set_scalar_by_path(["active"], False)
        assert u.document.materialize()["active"] is False
        u.set_scalar_by_path(["active"], True)
        assert u.document.materialize()["active"] is True

    def test_null_noop(self):
        u = updater()
        u.set_scalar_by_path(["note"], None)
        assert u.document.materialize()["note"] is None

    def test_string_shrink_in_place(self):
        u = updater()
        before = len(u.to_bytes())
        u.set_scalar_by_path(["name"], "tv")
        assert u.document.materialize()["name"] == "tv"
        assert len(u.to_bytes()) == before  # no growth

    def test_string_same_length(self):
        u = updater()
        u.set_scalar_by_path(["name"], "qhone")
        assert u.document.materialize()["name"] == "qhone"

    def test_nested_and_array_paths(self):
        u = updater()
        u.set_scalar_by_path(["nested", "qty"], 9)
        u.set_scalar_by_path(["tags", 1], "z")
        m = u.document.materialize()
        assert m["nested"]["qty"] == 9
        assert m["tags"] == ["a", "z"]

    def test_other_values_untouched(self):
        u = updater()
        u.set_scalar_by_path(["price"], 7)
        m = u.document.materialize()
        expected = dict(BASE)
        expected["price"] = 7
        assert m == expected


class TestGrow:
    def test_string_grow_appends(self):
        u = updater()
        before = len(u.to_bytes())
        u.set_scalar_by_path(["name"], "a-very-much-longer-product-name")
        assert u.document.materialize()["name"] == \
            "a-very-much-longer-product-name"
        assert len(u.to_bytes()) > before

    def test_grow_then_shrink(self):
        u = updater()
        u.set_scalar_by_path(["name"], "x" * 100)
        u.set_scalar_by_path(["name"], "y")
        assert u.document.materialize()["name"] == "y"

    def test_int_grow(self):
        u = updater()
        u.set_scalar_by_path(["price"], 2**60)
        assert u.document.materialize()["price"] == 2**60

    def test_repeated_growth_within_offset_capacity(self):
        # the node's value-offset width is fixed at encode time (1 byte for
        # this small document), so growth works while offsets fit...
        u = updater()
        for size in (10, 50, 120):
            u.set_scalar_by_path(["name"], "n" * size)
            assert u.document.materialize()["name"] == "n" * size

    def test_growth_beyond_offset_capacity_raises(self):
        # ... and raises the documented re-encode error once the appended
        # value's offset no longer fits the node's offset width
        u = updater()
        with pytest.raises(OsonUpdateError):
            for size in (200, 400, 800, 1600):
                u.set_scalar_by_path(["name"], "n" * size)


class TestErrors:
    def test_class_change_rejected(self):
        u = updater()
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["name"], 123)
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["price"], "expensive")
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["active"], None)
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["note"], 1)

    def test_container_update_rejected(self):
        u = updater()
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["tags"], "not-a-leaf")
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["nested"], 5)

    def test_missing_path(self):
        u = updater()
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["nope"], 1)
        with pytest.raises(OsonUpdateError):
            u.set_scalar_by_path(["tags", 99], "x")


class TestProperties:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_any_int_update(self, value):
        u = updater()
        u.set_scalar_by_path(["price"], value)
        assert u.document.materialize()["price"] == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_any_float_update(self, value):
        u = updater()
        u.set_scalar_by_path(["rating"], value)
        assert u.document.materialize()["rating"] == value

    @given(st.text(max_size=200))
    def test_any_string_update(self, value):
        u = updater()
        u.set_scalar_by_path(["name"], value)
        assert u.document.materialize()["name"] == value


def _apply_dom(document, path, value):
    target = document
    for step in path[:-1]:
        target = target[step]
    target[path[-1]] = value


#: (path, value) pairs drawn over every scalar class the updater
#: supports: boolean flips, in-slot numeric overwrites, string rewrites
#: that may shrink, fit, or take the grow-path append
_UPDATES = st.one_of(
    st.tuples(st.just(("active",)), st.booleans()),
    st.tuples(st.just(("price",)), st.integers(-(2**62), 2**62)),
    st.tuples(st.just(("rating",)),
              st.floats(allow_nan=False, allow_infinity=False)),
    st.tuples(st.just(("name",)), st.text(max_size=30)),
    st.tuples(st.just(("nested", "qty")), st.integers(-1000, 1000)),
    st.tuples(st.just(("tags", 0)), st.text(max_size=12)),
)


class TestRoundTripEquivalence:
    """Property: applying updates through the binary image and decoding
    is indistinguishable from mutating the DOM directly, and every
    intermediate (partially-updated) image stays verifier-clean."""

    @given(st.lists(_UPDATES, min_size=1, max_size=6))
    def test_update_sequence_matches_dom_mutation(self, updates):
        import copy

        from repro.core.oson import decode

        u = updater()
        expected = copy.deepcopy(BASE)
        for path, value in updates:
            try:
                u.set_scalar_by_path(list(path), value)
            except OsonUpdateError:
                # documented capacity limit (offset width exhausted);
                # every raise happens before the buffer is touched, so
                # the image must still reflect only the prior updates
                continue
            _apply_dom(expected, path, value)
        assert decode(u.to_bytes()) == expected
        assert u.document.materialize() == expected

    @given(st.lists(_UPDATES, min_size=1, max_size=6))
    def test_partially_updated_images_stay_verifier_clean(self, updates):
        from repro.analysis import has_errors, verify_oson

        u = updater()
        for path, value in updates:
            try:
                u.set_scalar_by_path(list(path), value)
            except OsonUpdateError:
                continue
            diagnostics = verify_oson(u.to_bytes())
            assert not has_errors(diagnostics), \
                (path, value, [d.render() for d in diagnostics])

    @given(st.booleans(), st.text(min_size=10, max_size=25))
    def test_grow_then_flip_keeps_both(self, flag, name):
        import copy

        from repro.core.oson import decode

        u = updater()
        u.set_scalar_by_path(["name"], name)
        u.set_scalar_by_path(["active"], flag)
        expected = copy.deepcopy(BASE)
        expected["name"] = name
        expected["active"] = flag
        assert decode(u.to_bytes()) == expected
