"""Tests for OSON size/segment statistics (Tables 10/11 machinery)."""

from repro import bson
from repro.core.oson import encode
from repro.core.oson.stats import (
    SegmentStats,
    SizeStats,
    segment_stats,
    segment_table,
    size_stats,
    size_table,
)
from repro.jsontext import dumps


DOCS = [
    {"a": 1, "b": "two"},
    {"a": 2, "b": "three", "c": [1, 2, 3]},
]


class TestSizeStats:
    def test_counts_and_averages(self):
        stats = size_stats(DOCS)
        assert stats.count == 2
        expected_json = sum(len(dumps(d).encode()) for d in DOCS) / 2
        expected_bson = sum(len(bson.encode(d)) for d in DOCS) / 2
        expected_oson = sum(len(encode(d)) for d in DOCS) / 2
        assert stats.avg_json == expected_json
        assert stats.avg_bson == expected_bson
        assert stats.avg_oson == expected_oson

    def test_empty_collection(self):
        assert size_stats([]) == SizeStats(0, 0.0, 0.0, 0.0)

    def test_size_table_rows(self):
        table = size_table([("demo", DOCS)])
        assert table[0]["collection"] == "demo"
        assert table[0]["avg_json_bytes"] > 0


class TestSegmentStats:
    def test_ratios_sum_to_one(self):
        stats = segment_stats(DOCS)
        total = (stats.dictionary_ratio + stats.tree_ratio
                 + stats.values_ratio)
        assert abs(total - 1.0) < 1e-9

    def test_empty_collection(self):
        assert segment_stats([]) == SegmentStats(0, 0.0, 0.0, 0.0)

    def test_dictionary_heavy_collection(self):
        # long names, tiny values -> dictionary dominates
        docs = [{f"averyveryverylongfieldname{i:03d}": 1 for i in range(30)}]
        stats = segment_stats(docs)
        assert stats.dictionary_ratio > 0.5

    def test_value_heavy_collection(self):
        docs = [{"k": "v" * 5000}]
        stats = segment_stats(docs)
        assert stats.values_ratio > 0.9

    def test_repetition_shrinks_dictionary_share(self):
        small = [{"fieldname": 1}]
        big = [{"rows": [{"fieldname": i} for i in range(500)]}]
        assert (segment_stats(big).dictionary_ratio
                < segment_stats(small).dictionary_ratio)

    def test_segment_table_rows(self):
        table = segment_table([("demo", DOCS)])
        row = table[0]
        assert abs(row["dictionary_pct"] + row["tree_pct"]
                   + row["values_pct"] - 100.0) < 0.1


class TestPaperShape:
    """The qualitative Table 10 claims on our own encodings."""

    def test_small_docs_near_parity(self):
        stats = size_stats(DOCS)
        assert stats.avg_oson < 3 * stats.avg_json

    def test_large_repetitive_doc_oson_wins(self):
        big = [{"messages": [
            {"authorName": f"user{i}", "messageText": "hello " * 5,
             "likeCount": i} for i in range(2000)]}]
        stats = size_stats(big)
        assert stats.avg_oson < stats.avg_json
