"""Unit tests for the OSON partial-decode navigation VM."""

import pytest

from repro.core.oson import (
    NavProgram,
    OsonDocument,
    encode,
    navigate,
    navigation_enabled,
    set_navigation_enabled,
)
from repro.core.oson.cache import CompiledFieldName
from repro.core.oson.navigate import OP_FIELD, OP_INDEX, OP_WILD
from repro.errors import OsonError

DOC = {
    "purchaseOrder": {
        "id": 7,
        "items": [
            {"partno": "p1", "price": 10},
            {"partno": "p2", "price": 20},
            {"partno": "p3"},
        ],
    },
    "empty": [],
}


@pytest.fixture()
def doc():
    return OsonDocument(encode(DOC))


def _member_chain(*names):
    return NavProgram(tuple((OP_FIELD, CompiledFieldName(n)) for n in names))


def test_member_chain_hits_scalar(doc):
    program = _member_chain("purchaseOrder", "id")
    nodes = navigate(doc, program)
    assert len(nodes) == 1
    assert doc.scalar_value(nodes[0]) == 7


def test_member_chain_specializes(doc):
    assert _member_chain("purchaseOrder", "id").chain is not None


def test_absent_field_is_empty(doc):
    assert navigate(doc, _member_chain("purchaseOrder", "nope")) == []
    # a name absent from the whole dictionary short-circuits immediately
    assert navigate(doc, _member_chain("never_seen_anywhere")) == []


def test_member_on_scalar_is_empty(doc):
    program = _member_chain("purchaseOrder", "id", "deeper")
    assert navigate(doc, program) == []


def test_index_chain(doc):
    program = NavProgram((
        (OP_FIELD, CompiledFieldName("purchaseOrder")),
        (OP_FIELD, CompiledFieldName("items")),
        (OP_INDEX, ((1, None, False, False),)),
        (OP_FIELD, CompiledFieldName("partno")),
    ))
    assert program.chain is not None  # single absolute index specializes
    nodes = navigate(doc, program)
    assert [doc.scalar_value(n) for n in nodes] == ["p2"]


def test_wildcard_unnests_array(doc):
    program = NavProgram((
        (OP_FIELD, CompiledFieldName("purchaseOrder")),
        (OP_FIELD, CompiledFieldName("items")),
        (OP_WILD,),
        (OP_FIELD, CompiledFieldName("partno")),
    ))
    assert program.chain is None
    nodes = navigate(doc, program)
    assert [doc.scalar_value(n) for n in nodes] == ["p1", "p2", "p3"]


def test_lax_member_unnests_object_elements(doc):
    # lax semantics: .partno over the items *array* unnests one level
    program = NavProgram((
        (OP_FIELD, CompiledFieldName("purchaseOrder")),
        (OP_FIELD, CompiledFieldName("items")),
        (OP_FIELD, CompiledFieldName("price")),
    ))
    nodes = navigate(doc, program)
    assert [doc.scalar_value(n) for n in nodes] == [10, 20]


def test_index_out_of_range_drops(doc):
    program = NavProgram((
        (OP_FIELD, CompiledFieldName("empty")),
        (OP_INDEX, ((0, None, False, False),)),
    ))
    assert navigate(doc, program) == []


def test_index_on_scalar_survives_only_zero(doc):
    base = ((OP_FIELD, CompiledFieldName("purchaseOrder")),
            (OP_FIELD, CompiledFieldName("id")))
    zero = NavProgram(base + ((OP_INDEX, ((0, None, False, False),)),))
    one = NavProgram(base + ((OP_INDEX, ((1, None, False, False),)),))
    assert len(navigate(doc, zero)) == 1
    assert navigate(doc, one) == []


def test_last_relative_and_ranges(doc):
    def run(subscripts):
        program = NavProgram((
            (OP_FIELD, CompiledFieldName("purchaseOrder")),
            (OP_FIELD, CompiledFieldName("items")),
            (OP_INDEX, subscripts),
            (OP_FIELD, CompiledFieldName("partno")),
        ))
        return [doc.scalar_value(n) for n in navigate(doc, program)]

    assert run(((0, None, True, False),)) == ["p3"]       # [last]
    assert run(((1, None, True, False),)) == ["p2"]       # [last-1]
    assert run(((0, 1, False, False),)) == ["p1", "p2"]   # [0 to 1]
    assert run(((0, 0, False, True),)) == ["p1", "p2", "p3"]  # [0 to last]
    assert run(((0, None, False, False), (2, None, False, False))) \
        == ["p1", "p3"]                                    # [0, 2]


def test_unknown_opcode_raises(doc):
    program = NavProgram((("bogus",),))
    with pytest.raises(OsonError):
        navigate(doc, program)


def test_enable_toggle_roundtrip():
    assert navigation_enabled() is True
    previous = set_navigation_enabled(False)
    assert previous is True
    assert navigation_enabled() is False
    set_navigation_enabled(previous)
    assert navigation_enabled() is True
