"""Tests for the field-id-name dictionary segment."""

import pytest

from repro.core.oson.dictionary import FieldDictionary
from repro.core.oson.hashing import field_name_hash
from repro.errors import OsonError


class TestBuild:
    def test_sorted_by_hash(self):
        d = FieldDictionary.build(["zebra", "apple", "mango", "apple"])
        assert d.hashes == sorted(d.hashes)
        assert len(d) == 3  # duplicates removed

    def test_field_id_is_ordinal_position(self):
        d = FieldDictionary.build(["a", "b", "c"])
        for i, name in enumerate(d.names):
            assert d.field_id(name) == i

    def test_lookup_uses_precomputed_hash(self):
        d = FieldDictionary.build(["alpha", "beta"])
        h = field_name_hash("alpha")
        assert d.field_id("alpha", h) == d.field_id("alpha")

    def test_missing_name(self):
        d = FieldDictionary.build(["a"])
        assert d.field_id("nope") is None

    def test_empty(self):
        d = FieldDictionary.build([])
        assert len(d) == 0
        assert d.field_id("x") is None

    def test_field_name_reverse_lookup(self):
        d = FieldDictionary.build(["x", "y"])
        for i in range(len(d)):
            assert d.field_id(d.field_name(i)) == i

    def test_field_name_out_of_range(self):
        d = FieldDictionary.build(["x"])
        with pytest.raises(OsonError):
            d.field_name(5)
        with pytest.raises(OsonError):
            d.field_hash(-1)


class TestSerialization:
    def test_roundtrip(self):
        d = FieldDictionary.build(["alpha", "beta", "gamma", "ünïcode"])
        data = d.to_bytes()
        parsed, end = FieldDictionary.from_bytes(b"\x00" * 4 + data, 4)
        assert end == 4 + len(data)
        assert parsed.names == d.names
        assert parsed.hashes == d.hashes

    def test_empty_roundtrip(self):
        d = FieldDictionary.build([])
        parsed, _ = FieldDictionary.from_bytes(d.to_bytes(), 0)
        assert len(parsed) == 0

    def test_name_too_long_rejected(self):
        d = FieldDictionary.build(["x" * 300])
        with pytest.raises(OsonError):
            d.to_bytes()

    def test_truncated_rejected(self):
        d = FieldDictionary.build(["abc", "def"])
        data = d.to_bytes()
        with pytest.raises(OsonError):
            FieldDictionary.from_bytes(data[:-2], 0)


class TestCollisions:
    def test_collision_resolution_by_string_compare(self):
        """Force two names onto the same hash id and verify both resolve."""
        # fake a collision: give both entries the same hash
        collided = FieldDictionary([7, 7], sorted(["aaa", "bbb"]))
        assert collided.field_id("aaa", 7) is not None
        assert collided.field_id("bbb", 7) is not None
        assert collided.field_id("aaa", 7) != collided.field_id("bbb", 7)
        assert collided.field_id("ccc", 7) is None

    def test_deterministic_order_under_collision(self):
        a = FieldDictionary([5, 5], ["x", "y"])
        assert a.field_id("x", 5) == 0  # ties broken by name order
        assert a.field_id("y", 5) == 1
