"""Tests for the binary number encodings (packed decimal, varint, LEB128)."""

from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.core.oson.numbers import (
    leb128_size,
    pack_decimal,
    pack_int,
    read_leb128,
    unpack_decimal,
    unpack_int,
    write_leb128,
    write_leb128_padded,
)
from repro.errors import OsonError


class TestLeb128:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 255, 16383, 16384,
                                       2**20, 2**32, 2**60])
    def test_roundtrip(self, value):
        out = bytearray()
        write_leb128(out, value)
        got, pos = read_leb128(bytes(out), 0)
        assert got == value
        assert pos == len(out) == leb128_size(value)

    def test_negative_rejected(self):
        with pytest.raises(OsonError):
            write_leb128(bytearray(), -1)

    def test_padded_roundtrip(self):
        out = bytearray()
        write_leb128_padded(out, 5, 3)
        assert len(out) == 3
        got, pos = read_leb128(bytes(out), 0)
        assert got == 5 and pos == 3

    def test_padded_overflow(self):
        with pytest.raises(OsonError):
            write_leb128_padded(bytearray(), 10**6, 1)

    @given(st.integers(min_value=0, max_value=2**62))
    def test_roundtrip_property(self, value):
        out = bytearray()
        write_leb128(out, value)
        assert read_leb128(bytes(out), 0)[0] == value


class TestPackInt:
    @pytest.mark.parametrize("value", [0, 1, -1, 127, -128, 128, 255, -255,
                                       2**31, -(2**31), 2**63 - 1, -(2**63)])
    def test_roundtrip(self, value):
        assert unpack_int(pack_int(value)) == value

    def test_small_ints_are_one_byte(self):
        assert len(pack_int(0)) == 1
        assert len(pack_int(100)) == 1
        assert len(pack_int(-100)) == 1

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_roundtrip_property(self, value):
        assert unpack_int(pack_int(value)) == value


class TestPackedDecimal:
    @pytest.mark.parametrize("value", [
        0.0, 1.0, -1.0, 0.5, -0.25, 123.456, -9999.9999, 1e10, 1e-10,
        350.86, 52.78,
    ])
    def test_float_roundtrip(self, value):
        packed = pack_decimal(value)
        assert packed is not None
        got = unpack_decimal(packed)
        assert got == value
        assert isinstance(got, float)

    @pytest.mark.parametrize("value", [
        Decimal("0"), Decimal("1.50"), Decimal("-12.345"),
        Decimal("1E+10"), Decimal("-1E-10"),
    ])
    def test_decimal_roundtrip(self, value):
        packed = pack_decimal(value)
        assert packed is not None
        got = unpack_decimal(packed)
        assert got == value
        assert isinstance(got, Decimal)

    def test_compactness(self):
        # typical sensor reading: flags + 3 BCD bytes, far under IEEE's 8
        assert len(pack_decimal(-27.1946)) <= 5

    def test_unpackable_values_return_none(self):
        assert pack_decimal(float("nan")) is None
        assert pack_decimal(float("inf")) is None
        assert pack_decimal(Decimal("Infinity")) is None
        # exponent outside the 6-bit biased range
        assert pack_decimal(Decimal("1E+99")) is None
        # too many significant digits
        assert pack_decimal(Decimal("1." + "1" * 40)) is None

    def test_empty_payload_rejected(self):
        with pytest.raises(OsonError):
            unpack_decimal(b"")

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float_roundtrip_property(self, value):
        packed = pack_decimal(value)
        if packed is not None:
            assert unpack_decimal(packed) == value

    @given(st.decimals(allow_nan=False, allow_infinity=False,
                       min_value=-(10**20), max_value=10**20, places=6))
    def test_decimal_roundtrip_property(self, value):
        packed = pack_decimal(value)
        if packed is not None:
            assert unpack_decimal(packed) == value
