"""Tests for OSON DOM navigation (the section 5.1 primitives)."""

import pytest

from repro.core.oson import constants as c
from repro.core.oson import encode, OsonDocument
from repro.core.oson.dom import (
    JsonDomGetArrayElement,
    JsonDomGetFieldValue,
    JsonDomGetNodeType,
    JsonDomGetScalarInfo,
)
from repro.errors import OsonError

DOC = {
    "purchaseOrder": {
        "id": 7,
        "podate": "2014-09-08",
        "items": [
            {"name": "phone", "price": 100.5},
            {"name": "ipad", "price": 350.86},
            {"name": "case", "price": 9.99},
        ],
        "paid": True,
        "notes": None,
    }
}


@pytest.fixture()
def doc():
    return OsonDocument(encode(DOC))


class TestNavigation:
    def test_root_is_object(self, doc):
        assert JsonDomGetNodeType(doc, doc.root) == c.NODE_OBJECT

    def test_field_navigation(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        assert doc.node_type(po) == c.NODE_OBJECT
        id_node = doc.get_field_value_by_name(po, "id")
        assert doc.scalar_value(id_node) == 7

    def test_field_by_id_binary_search(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        for name in ("id", "podate", "items", "paid", "notes"):
            field_id = doc.field_id(name)
            assert field_id is not None
            assert JsonDomGetFieldValue(doc, po, field_id) is not None

    def test_missing_field(self, doc):
        assert doc.get_field_value_by_name(doc.root, "missing") is None
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        # a name in the dictionary but not in this object
        name_id = doc.field_id("name")
        assert JsonDomGetFieldValue(doc, po, name_id) is None

    def test_field_on_non_object_returns_none(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        assert JsonDomGetFieldValue(doc, items, 0) is None

    def test_array_positional_access(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        assert doc.node_type(items) == c.NODE_ARRAY
        assert doc.child_count(items) == 3
        second = JsonDomGetArrayElement(doc, items, 1)
        name = doc.get_field_value_by_name(second, "name")
        assert doc.scalar_value(name) == "ipad"

    def test_array_negative_index(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        last = doc.get_array_element(items, -1)
        assert doc.materialize(last)["name"] == "case"

    def test_array_out_of_range(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        assert JsonDomGetArrayElement(doc, items, 99) is None
        assert JsonDomGetArrayElement(doc, items, -99) is None

    def test_array_elements_iteration(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        names = [doc.materialize(el)["name"] for el in doc.array_elements(items)]
        assert names == ["phone", "ipad", "case"]

    def test_object_items_sorted_by_field_id(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        ids = [fid for fid, _child in doc.object_items(po)]
        assert ids == sorted(ids)


class TestScalarInfo:
    def test_inline_scalars(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        paid = doc.get_field_value_by_name(po, "paid")
        stype, offset, length = JsonDomGetScalarInfo(doc, paid)
        assert stype == c.SCALAR_TRUE
        assert offset == -1 and length == 0
        notes = doc.get_field_value_by_name(po, "notes")
        assert JsonDomGetScalarInfo(doc, notes)[0] == c.SCALAR_NULL

    def test_string_offset_points_into_value_segment(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        podate = doc.get_field_value_by_name(po, "podate")
        stype, offset, length = JsonDomGetScalarInfo(doc, podate)
        assert stype == c.SCALAR_STRING
        assert doc.buffer[offset:offset + length].decode() == "2014-09-08"
        assert offset >= doc.value_start

    def test_scalar_info_on_container_raises(self, doc):
        with pytest.raises(OsonError):
            JsonDomGetScalarInfo(doc, doc.root)

    def test_child_count_on_scalar_raises(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        paid = doc.get_field_value_by_name(po, "paid")
        with pytest.raises(OsonError):
            doc.child_count(paid)

    def test_elements_on_object_raises(self, doc):
        with pytest.raises(OsonError):
            list(doc.array_elements(doc.root))

    def test_object_items_on_array_raises(self, doc):
        po = doc.get_field_value_by_name(doc.root, "purchaseOrder")
        items = doc.get_field_value_by_name(po, "items")
        with pytest.raises(OsonError):
            list(doc.object_items(items))


class TestLazyNavigation:
    def test_navigation_touches_only_needed_path(self):
        """Jump navigation: reading one deep field must not decode other
        subtrees (we check by navigating into a doc with an intentionally
        corrupted unrelated value payload)."""
        doc_value = {"wanted": {"x": 1}, "unrelated": "CORRUPTME"}
        data = bytearray(encode(doc_value))
        # corrupt the bytes of the "CORRUPTME" string payload
        idx = bytes(data).find(b"CORRUPTME")
        data[idx:idx + 4] = b"\xff\xff\xff\xff"
        doc = OsonDocument(bytes(data))
        wanted = doc.get_field_value_by_name(doc.root, "wanted")
        x = doc.get_field_value_by_name(wanted, "x")
        assert doc.scalar_value(x) == 1  # unaffected by the corruption
