"""Tests for field-id caching: compile-time hashing and single-row look-back."""

from repro.core.oson import encode, OsonDocument
from repro.core.oson.cache import CompiledFieldName, FieldIdResolver
from repro.core.oson.hashing import field_name_hash


class TestCompiledFieldName:
    def test_hash_precomputed(self):
        compiled = CompiledFieldName("price")
        assert compiled.hash == field_name_hash("price")
        assert compiled.name == "price"


class TestLookback:
    def docs(self, n, field="price"):
        return [OsonDocument(encode({field: i, "other": "x"}))
                for i in range(n)]

    def test_homogeneous_stream_hits_lookback(self):
        resolver = FieldIdResolver()
        compiled = CompiledFieldName("price")
        documents = self.docs(20)
        ids = [resolver.resolve(d, compiled) for d in documents]
        assert all(i == ids[0] for i in ids)
        assert resolver.lookups == 20
        # first lookup is the binary search; the other 19 validate the cache
        assert resolver.lookback_hits == 19

    def test_lookback_validation_detects_renumbering(self):
        """A document with a different dictionary must not reuse a stale id."""
        resolver = FieldIdResolver()
        compiled = CompiledFieldName("price")
        doc_a = OsonDocument(encode({"price": 1, "other": "x"}))
        # different field set => different id numbering
        doc_b = OsonDocument(encode({"aaa": 0, "bbb": 0, "price": 2,
                                     "zzz": 0}))
        id_a = resolver.resolve(doc_a, compiled)
        id_b = resolver.resolve(doc_b, compiled)
        assert doc_a.field_name(id_a) == "price"
        assert doc_b.field_name(id_b) == "price"

    def test_absent_field_resolves_none(self):
        resolver = FieldIdResolver()
        compiled = CompiledFieldName("missing")
        for doc in self.docs(5):
            assert resolver.resolve(doc, compiled) is None

    def test_absent_then_present(self):
        resolver = FieldIdResolver()
        compiled = CompiledFieldName("maybe")
        without = OsonDocument(encode({"other": 1}))
        with_field = OsonDocument(encode({"maybe": 42}))
        assert resolver.resolve(without, compiled) is None
        fid = resolver.resolve(with_field, compiled)
        assert with_field.field_name(fid) == "maybe"

    def test_resolved_ids_match_direct_lookup(self):
        resolver = FieldIdResolver()
        compiled = CompiledFieldName("other")
        for doc in self.docs(10):
            assert resolver.resolve(doc, compiled) == doc.field_id("other")
