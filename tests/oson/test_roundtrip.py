"""OSON encode/decode round-trip tests."""

from decimal import Decimal

import pytest
from hypothesis import given, settings

from repro.core.oson import decode, encode, OsonDocument
from repro.errors import OsonError
from tests.strategies import json_documents, json_values


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False,
        0, 1, -1, 127, 128, 255, 256, -255, -256,
        2**31, -(2**31), 2**62, -(2**62), 2**70, -(2**70),
        2**100, -(2**100),  # beyond int64: NUMSTR fallback
        0.0, -0.0, 1.5, -2.25, 350.86, 1e-10, 1e10,
        3.141592653589793, 2.718281828459045,  # long reprs: raw IEEE
        1e308, -1e308, 5e-324,
        "", "x", "hello world", "héllo ☃", "a" * 1000, "\x00\x01",
    ])
    def test_scalar_roundtrip(self, value):
        got = decode(encode(value))
        assert got == value
        assert type(got) is type(value)

    def test_negative_zero_sign_preserved_or_equal(self):
        # -0.0 == 0.0; we only require numeric equality
        assert decode(encode(-0.0)) == 0.0

    def test_decimal_roundtrip(self):
        for value in [Decimal("1.50"), Decimal("-0.001"), Decimal("1E+5"),
                      Decimal(10**35), Decimal("0")]:
            got = decode(encode(value))
            assert got == value

    def test_huge_decimal_falls_back_to_numstr(self):
        value = Decimal("9" * 60 + "." + "9" * 20)
        assert decode(encode(value)) == value

    def test_nan_rejected(self):
        with pytest.raises(OsonError):
            encode(float("nan"))
        with pytest.raises(OsonError):
            encode(float("inf"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(OsonError):
            encode({"a": object()})

    def test_non_string_key_rejected(self):
        with pytest.raises(OsonError):
            encode({1: "x"})


class TestStructures:
    @pytest.mark.parametrize("value", [
        {}, [], [[]], [{}], {"a": {}}, {"a": []},
        {"a": 1, "b": 2}, [1, 2, 3], [None, True, "x", 1.5],
        {"outer": {"inner": {"deep": [1, {"leaf": "v"}]}}},
        [{"same": 1}, {"same": 2}, {"same": 3}],
    ])
    def test_structure_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_repeated_field_names_stored_once(self):
        many = [{"repeated_field_name_xyz": i} for i in range(50)]
        doc = OsonDocument(encode(many))
        assert doc.field_count() == 1

    def test_duplicate_keys_impossible_in_dict(self):
        # dict input can't have dupes; just confirm sibling keys survive
        assert decode(encode({"a": 1, "A": 2})) == {"a": 1, "A": 2}

    def test_deep_nesting(self):
        value = 1
        for _ in range(150):
            value = [value]
        assert decode(encode(value)) == value

    def test_large_array_offsets(self):
        # forces multi-byte child deltas and value offsets
        big = {"rows": [{"k": "v" * 50, "n": i * 1.5} for i in range(2000)]}
        assert decode(encode(big)) == big


class TestProperties:
    @settings(max_examples=150)
    @given(json_values())
    def test_roundtrip_property(self, value):
        assert decode(encode(value)) == value

    @given(json_documents())
    def test_document_roundtrip(self, doc):
        assert decode(encode(doc)) == doc

    @given(json_values())
    def test_segments_partition_buffer(self, value):
        data = encode(value)
        sizes = OsonDocument(data).segment_sizes()
        assert sum(sizes.values()) == len(data)
        assert all(s >= 0 for s in sizes.values())


class TestHeaderValidation:
    def test_not_oson(self):
        with pytest.raises(OsonError):
            OsonDocument(b"JUNKJUNKJUNKJUNKJUNKJUNK")

    def test_too_short(self):
        with pytest.raises(OsonError):
            OsonDocument(b"OSON")

    def test_bad_version(self):
        data = bytearray(encode({"a": 1}))
        data[4] = 99
        with pytest.raises(OsonError):
            OsonDocument(bytes(data))

    def test_segment_offsets_validated(self):
        data = bytearray(encode({"a": 1}))
        data[8:12] = (2**31).to_bytes(4, "little")  # tree start out of range
        with pytest.raises(OsonError):
            OsonDocument(bytes(data))
