"""Tests for the shared-dictionary set encoding (section 7 future work)."""

from hypothesis import given, settings

from repro.core.oson.set_encoding import SharedDictionaryStore
from tests.strategies import json_documents


def homogeneous_docs(n=20):
    return [{"orderId": i, "customerName": f"cust{i}",
             "lineItems": [{"sku": f"SKU{i}", "qty": i % 5}]}
            for i in range(n)]


class TestSharedDictionaryStore:
    def test_roundtrip(self):
        store = SharedDictionaryStore()
        docs = homogeneous_docs()
        for doc in docs:
            store.add(doc)
        assert len(store) == len(docs)
        for i, doc in enumerate(docs):
            assert store.materialize(i) == doc

    def test_memory_savings_on_homogeneous_collection(self):
        docs = homogeneous_docs(50)
        store = SharedDictionaryStore()
        for doc in docs:
            store.add(doc)
        shared = store.memory_bytes()
        self_contained = SharedDictionaryStore.self_contained_bytes(docs)
        assert shared < self_contained

    def test_dictionary_growth_reencodes_existing(self):
        store = SharedDictionaryStore()
        store.add({"alpha": 1})
        store.add({"zeta": 2, "alpha": 3})  # new name: ids renumber
        store.add({"midfield": 4})
        assert store.materialize(0) == {"alpha": 1}
        assert store.materialize(1) == {"zeta": 2, "alpha": 3}
        assert store.materialize(2) == {"midfield": 4}

    def test_heterogeneous_types_supported(self):
        """Unlike Dremel, a field may change type across instances."""
        store = SharedDictionaryStore()
        variants = [{"name": "text"}, {"name": 5}, {"name": {"first": "x"}},
                    {"name": [1, 2]}, {"name": None}]
        for v in variants:
            store.add(v)
        for i, v in enumerate(variants):
            assert store.materialize(i) == v

    def test_field_id_shared_across_documents(self):
        store = SharedDictionaryStore()
        store.add({"key": 1})
        store.add({"key": 2})
        fid = store.field_id("key")
        assert fid is not None
        for doc in store.documents():
            assert doc.field_id("key") == fid

    def test_documents_iterator(self):
        store = SharedDictionaryStore()
        docs = homogeneous_docs(5)
        for doc in docs:
            store.add(doc)
        assert [d.materialize() for d in store.documents()] == docs

    @settings(max_examples=30)
    @given(json_documents(max_leaves=10))
    def test_roundtrip_property(self, doc):
        store = SharedDictionaryStore()
        store.add(doc)
        store.add({"extra_field_xyz": 1})
        assert store.materialize(0) == doc
