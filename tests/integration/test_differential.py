"""Differential tests: every encoding and engine path must agree.

These property tests pin the core soundness claims of the reproduction:

* the SQL/JSON operators return identical results over dict / text /
  OSON / BSON inputs for arbitrary documents and a panel of paths;
* JSON_TABLE produces identical rows across encodings;
* the OSON round trip is exact for arbitrary JSON values (including
  through partial updates);
* engine queries agree with naive reference computations.
"""

from hypothesis import given, settings, strategies as st

from repro import bson
from repro.core.oson import encode as oson_encode, OsonUpdater, decode
from repro.jsontext import dumps
from repro.sqljson import ColumnDef, JsonTable, NestedPath
from repro.sqljson.operators import json_exists, json_query, json_value
from tests.strategies import json_documents, json_values

#: paths exercising member chains, indexes, wildcards, filters, methods
PATH_PANEL = [
    "$", "$.a", "$.a.b", "$.a[0]", "$.a[*]", "$.a.b[*]", "$.a[last]",
    "$.a[0 to 1]", "$..b", "$.*", "$.a.size()", "$.a.type()",
    "$.a[*]?(@ > 1)", "$.a?(@.b == 1).b", '$.a?(@.b == "x")',
]


def _forms(doc):
    return {
        "dict": doc,
        "text": dumps(doc),
        "oson": oson_encode(doc),
        "bson": bson.encode(doc),
    }


def _canonical(value):
    """Order-insensitive sort key for heterogeneous JSON values (object
    key order differs between document order and OSON's hash order)."""
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, dict):
        return dumps({k: None for k in sorted(value)}) + dumps(
            [_canonical(value[k]) for k in sorted(value)])
    if isinstance(value, list):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    return dumps(value)


def _bson_safe(doc):
    """BSON cannot represent ints beyond int64 exactly; keep docs in
    range so all four forms are value-identical."""
    if isinstance(doc, dict):
        return {k: _bson_safe(v) for k, v in doc.items()}
    if isinstance(doc, list):
        return [_bson_safe(v) for v in doc]
    if isinstance(doc, int) and not isinstance(doc, bool):
        return doc % (2**31)
    return doc


class TestOperatorParity:
    @settings(max_examples=60, deadline=None)
    @given(json_documents(max_leaves=12))
    def test_json_value_parity(self, doc):
        doc = _bson_safe(doc)
        forms = _forms(doc)
        for path in PATH_PANEL:
            results = {name: json_value(data, path)
                       for name, data in forms.items()}
            values = list(results.values())
            assert all(v == values[0] for v in values), (path, results)

    @settings(max_examples=60, deadline=None)
    @given(json_documents(max_leaves=12))
    def test_json_exists_parity(self, doc):
        doc = _bson_safe(doc)
        forms = _forms(doc)
        for path in PATH_PANEL:
            results = {name: json_exists(data, path)
                       for name, data in forms.items()}
            values = list(results.values())
            assert all(v == values[0] for v in values), (path, results)

    @settings(max_examples=40, deadline=None)
    @given(json_documents(max_leaves=12))
    def test_json_query_wrapper_parity(self, doc):
        doc = _bson_safe(doc)
        forms = _forms(doc)
        for path in PATH_PANEL:
            results = {name: json_query(data, path, wrapper=True)
                       for name, data in forms.items()}
            # OSON iterates object fields in field-id (hash) order, so
            # wildcard/descendant matches may arrive in a different order
            # than document order — compare as multisets there
            if "*" in path or ".." in path:
                results = {name: sorted(value, key=_canonical)
                           for name, value in results.items()}
            values = list(results.values())
            assert all(v == values[0] for v in values), (path, results)


class TestJsonTableParity:
    TABLE = JsonTable("$", [
        ColumnDef("a", "varchar2(100)", "$.a"),
        ColumnDef("b_num", "number", "$.b"),
        NestedPath("$.items[*]", [
            ColumnDef("x", "varchar2(100)", "$.x"),
            ColumnDef("y", "number", "$.y"),
        ]),
    ])

    @settings(max_examples=60, deadline=None)
    @given(json_documents(max_leaves=12))
    def test_rows_parity(self, doc):
        doc = _bson_safe(doc)
        forms = _forms(doc)
        results = {name: self.TABLE.rows(data)
                   for name, data in forms.items()}
        values = list(results.values())
        assert all(v == values[0] for v in values)


class TestOsonInvariants:
    @settings(max_examples=100, deadline=None)
    @given(json_values(max_leaves=20))
    def test_roundtrip_exact(self, value):
        assert decode(oson_encode(value)) == value

    @settings(max_examples=60, deadline=None)
    @given(st.dictionaries(
        st.text(min_size=1, max_size=10,
                alphabet=st.characters(blacklist_categories=("Cs",),
                                       blacklist_characters="\x00")),
        st.integers(min_value=-(2**40), max_value=2**40),
        min_size=1, max_size=8))
    def test_update_then_decode(self, doc):
        """Updating every numeric leaf in place keeps the document exact."""
        data = oson_encode(doc)
        updater = OsonUpdater(data)
        expected = dict(doc)
        for key in doc:
            updater.set_scalar_by_path([key], doc[key] + 1)
            expected[key] = doc[key] + 1
        assert updater.document.materialize() == expected

    @settings(max_examples=60, deadline=None)
    @given(json_documents(max_leaves=15))
    def test_field_dictionary_complete(self, doc):
        """Every field name anywhere in the document resolves to an id,
        and every id resolves back to its name."""
        from repro.core.oson import OsonDocument
        from repro.core.oson.encoder import iter_field_names
        oson = OsonDocument(oson_encode(doc))
        for name in set(iter_field_names(doc)):
            field_id = oson.field_id(name)
            assert field_id is not None
            assert oson.field_name(field_id) == name


class TestQueryVsReference:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.fixed_dictionaries({
            "g": st.sampled_from(["a", "b", "c"]),
            "v": st.one_of(st.none(),
                           st.integers(min_value=-100, max_value=100)),
        }), max_size=30))
    def test_group_by_sum_matches_reference(self, rows):
        from repro.engine import Query, expr
        result = (Query(rows)
                  .group_by(["g"], total=expr.SUM(expr.Col("v")),
                            n=expr.COUNT())
                  .rows())
        reference: dict = {}
        for row in rows:
            entry = reference.setdefault(row["g"], {"total": None, "n": 0})
            entry["n"] += 1
            if row["v"] is not None:
                entry["total"] = (row["v"] if entry["total"] is None
                                  else entry["total"] + row["v"])
        assert {r["g"]: {"total": r["total"], "n": r["n"]}
                for r in result} == reference

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.fixed_dictionaries({
            "k": st.integers(min_value=0, max_value=5),
            "v": st.integers(min_value=0, max_value=100),
        }), max_size=20),
        st.lists(
        st.fixed_dictionaries({
            "k": st.integers(min_value=0, max_value=5),
            "w": st.integers(min_value=0, max_value=100),
        }), max_size=20))
    def test_hash_join_matches_nested_loop(self, left, right):
        from repro.engine import Query
        result = Query(left).join(right, "k", "k").rows()
        reference = []
        for l_row in left:
            for r_row in right:
                if l_row["k"] == r_row["k"]:
                    merged = dict(l_row)
                    merged.update(r_row)
                    reference.append(merged)
        key = lambda r: (r["k"], r["v"], r["w"])  # noqa: E731
        assert sorted(result, key=key) == sorted(reference, key=key)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.one_of(st.none(),
                              st.integers(min_value=-50, max_value=50)),
                    max_size=25))
    def test_order_by_matches_reference(self, values):
        from repro.engine import Query, expr
        rows = [{"v": v} for v in values]
        result = [r["v"] for r in Query(rows).order_by("v").rows()]
        non_null = sorted(v for v in values if v is not None)
        assert result == non_null + [None] * (len(values) - len(non_null))
