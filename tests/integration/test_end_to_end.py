"""End-to-end integration: the paper's full 'write without schema, read
with schema' workflow on one database."""

import pytest

from repro import bson
from repro.core.dataguide import (
    JsonDataGuideAgg,
    add_vc,
    create_view_on_path,
    json_dataguide_agg,
)
from repro.core.oson import OsonUpdater, encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB, expr
from repro.engine.constraints import IsJsonConstraint
from repro.jsontext import dumps
from repro.workloads.purchase_orders import PurchaseOrderGenerator

N = 60


@pytest.fixture()
def workspace():
    """A PO table with IS JSON constraint, search index and documents."""
    db = Database()
    po = db.create_table("PO", [Column("DID", NUMBER, nullable=False),
                                Column("JDOC", CLOB)])
    po.add_constraint(IsJsonConstraint("JDOC"))
    index = db.create_json_search_index("PO_SIDX", "PO", "JDOC")
    documents = list(PurchaseOrderGenerator().documents(N))
    for i, doc in enumerate(documents):
        po.insert({"DID": i, "JDOC": dumps(doc)})
    return db, po, index, documents


class TestWriteWithoutSchemaReadWithSchema:
    def test_dataguide_discovered_automatically(self, workspace):
        _db, _po, index, _docs = workspace
        guide = index.get_dataguide()
        assert "$.purchaseOrder.items.partno" in guide.paths()
        assert guide.get("$.purchaseOrder.items.unitprice").type_label \
            == "array of number"

    def test_vc_then_sql_analytics(self, workspace):
        db, po, index, documents = workspace
        add_vc(po, "JDOC", index.get_dataguide())
        rows = (db.query("PO")
                .group_by(["JDOC$costcenter"], n=expr.COUNT())
                .order_by("JDOC$costcenter")
                .rows())
        assert sum(r["n"] for r in rows) == N

    def test_dmdv_view_then_join_style_analytics(self, workspace):
        db, po, index, documents = workspace
        create_view_on_path(db, po, "JDOC", index.get_dataguide(),
                            view_name="PO_RV", include_columns=["DID"])
        total_items = sum(len(d["purchaseOrder"]["items"])
                          for d in documents)
        rows = db.query("PO_RV").rows()
        assert len(rows) == total_items
        revenue = (db.query("PO_RV")
                   .group_by([], total=expr.SUM(
                       expr.Col("JDOC$quantity") * expr.Col("JDOC$unitprice")))
                   .scalar())
        expected = sum(i["quantity"] * i["unitprice"]
                       for d in documents
                       for i in d["purchaseOrder"]["items"])
        assert revenue == pytest.approx(expected)

    def test_schema_evolution_reflected_live(self, workspace):
        db, po, index, _docs = workspace
        before = set(index.get_dataguide().paths())
        po.insert({"DID": 999, "JDOC": dumps(
            {"purchaseOrder": {"reference": "NEW-1",
                               "brand_new_field": {"deep": [1, 2]}}})})
        after = set(index.get_dataguide().paths())
        assert "$.purchaseOrder.brand_new_field.deep" in after - before

    def test_transient_guide_matches_persistent(self, workspace):
        db, _po, index, _docs = workspace
        transient = (db.query("PO")
                     .group_by([], dg=JsonDataGuideAgg("JDOC"))
                     .scalar())
        persistent = index.get_dataguide()
        assert set(transient.paths()) == set(persistent.paths())

    def test_search_index_accelerates_exists(self, workspace):
        _db, po, index, documents = workspace
        with_foreign = {i for i, d in enumerate(documents)
                        if "foreign_id" in d["purchaseOrder"]}
        found = {r["DID"] for r in
                 index.docs_with_path("$.purchaseOrder.foreign_id")}
        assert found == with_foreign


class TestCrossFormatConsistency:
    """One logical collection stored three ways must answer identically."""

    def test_views_agree_across_encodings(self):
        from repro.workloads.purchase_orders import build_po_views
        from repro.engine.types import BLOB
        documents = list(PurchaseOrderGenerator().documents(20))
        db = Database()
        results = {}
        for name, encode_fn, sql_type in [
                ("json", dumps, CLOB),
                ("bson", bson.encode, BLOB),
                ("oson", oson_encode, BLOB)]:
            table = db.create_table(f"t_{name}", [Column("jdoc", sql_type)])
            for doc in documents:
                table.insert({"jdoc": encode_fn(doc)})
            _mv, dmdv = build_po_views(db, table, "jdoc", name)
            results[name] = (db.query(f"{name}_item_dmdv")
                             .order_by("reference", "itemno").rows())
        assert results["json"] == results["bson"] == results["oson"]


class TestOsonUpdateInsideTable:
    def test_partial_update_then_reindex(self):
        from repro.engine.types import BLOB
        db = Database()
        table = db.create_table("t", [Column("id", NUMBER),
                                      Column("jdoc", BLOB)])
        table.add_constraint(IsJsonConstraint("jdoc"))
        index = db.create_json_search_index("idx", "t", "jdoc")
        table.insert({"id": 1, "jdoc": oson_encode(
            {"status": "open", "note": "first"})})
        # partial update outside the engine, then UPDATE the column
        row = list(table.scan())[0]
        updater = OsonUpdater(row["jdoc"])
        updater.set_scalar_by_path(["status"], "done")
        table.update(lambda r: r["id"] == 1, {"jdoc": updater.to_bytes()})
        assert len(index.docs_with_keywords("done")) == 1
        assert index.docs_with_keywords("open") == []


class TestNoBenchColumnLimitStory:
    def test_nobench_would_exceed_relational_column_limit(self):
        """Section 6.4: NOBENCH's 1000+ sparse fields exceed the 1000-column
        relational limit, but the DataGuide handles them effortlessly."""
        from repro.workloads.nobench import NobenchGenerator
        docs = list(NobenchGenerator().documents(150))
        guide = json_dataguide_agg(docs)
        assert guide.dmdv_column_count() > 1000
