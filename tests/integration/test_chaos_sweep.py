"""Live chaos harness: seeded fault sweeps through the Figure-3 suite.

The serving invariant under test (ISSUE 9 tentpole): with transient
faults injected live under the sharded serve layer, every query either

* returns the **correct** (fault-free baseline) answer,
* fails with a **typed** error (``ShardUnavailable`` and friends), or
* returns an **explicitly-degraded** partial result carrying its
  :class:`~repro.errors.DegradedResult` marker —

and is *never* silently wrong.  After each fault window the failed
shards must heal through probing and a fault-free rerun must match the
baseline exactly.

Every decision replays from the printed seed (assertion messages carry
it).  The sweep aggregates into ``CHAOS_report.json`` when
``REPRO_CHAOS_REPORT`` names a path (the CI artifact).
"""

import json
import os
import threading

import pytest

from repro.engine import CLOB, Column, Database, NUMBER
from repro.errors import (DegradedResult, Overloaded, QueryTimeout,
                          ReproError, ShardUnavailable, TransientFault)
from repro.obs import clock as clockmod
from repro.obs import metrics
from repro.serve import Server
from repro.storage import chaos
from repro.storage.files import MemoryFileSystem
from repro.workloads.purchase_orders import (PO_QUERY_IDS, PoOlapQueries,
                                             PoQueryParams,
                                             PurchaseOrderGenerator,
                                             build_po_views)

N_DOCUMENTS = 32
N_SHARDS = 4
N_CLIENTS = 3
SEEDS = tuple(range(20260808, 20260808 + 12))  # 12 rounds x 9 queries

#: errors a chaos run may legitimately surface — everything else is an
#: invariant violation
TYPED_ERRORS = (ShardUnavailable, TransientFault, QueryTimeout,
                Overloaded, DegradedResult)

REPORT = {
    "seeds": [],
    "cases": 0,
    "correct": 0,
    "typed_errors": 0,
    "degraded": 0,
    "violations": [],
    "faults_injected": 0,
    "retries": 0,
}


@pytest.fixture(autouse=True)
def virtual_clock():
    """Backoff waits and latency spikes are recorded, not slept — the
    sweep stays fast while exercising the real retry machinery."""
    clock = clockmod.VirtualClock()
    previous = clockmod.install_clock(clock)
    yield clock
    clockmod.install_clock(previous)


def _normalize(value):
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    return value


def canon(rows):
    return sorted(json.dumps(_normalize(row), sort_keys=True,
                             default=repr) for row in rows)


@pytest.fixture(scope="module")
def rig():
    """One sharded PO corpus behind a server, shared by every round."""
    from repro.jsontext import dumps
    documents = list(PurchaseOrderGenerator().documents(N_DOCUMENTS))
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "po", [Column("did", NUMBER), Column("jdoc", CLOB)],
        durable="/po", fs=fs, shards=N_SHARDS, routing_field="did")
    table.insert_many([{"did": i, "jdoc": dumps(doc)}
                       for i, doc in enumerate(documents)])
    mv, dmdv = build_po_views(db, table, "jdoc", "chaos")
    queries = PoOlapQueries(mv, dmdv)
    params = PoQueryParams(documents)
    server = Server(db, read_workers=N_CLIENTS, write_workers=1,
                    queue_limit=64)
    baseline = {}
    with server.session() as session:
        for qid in PO_QUERY_IDS:
            cursor = session.execute_query(queries.query(qid, params))
            baseline[qid] = canon(cursor.fetchall())
    yield server, table, queries, params, baseline
    server.close()
    table.close()


def round_plan(seed):
    """One round's fault mix: a light sprinkle of IO errors and latency
    everywhere, plus a hard unavailability window on one seeded shard —
    long enough to fail it, finite so it can heal."""
    shard = seed % N_SHARDS
    return chaos.ChaosPlan(seed=seed, rules=(
        chaos.ChaosRule(point="", kind=chaos.IO_ERROR, rate=0.01),
        chaos.ChaosRule(point="", kind=chaos.LATENCY, rate=0.02,
                        latency_ms=1.0),
        chaos.ChaosRule(point="shard.scan", shard=shard, kind=chaos.
                        UNAVAILABLE, rate=1.0, start=2, limit=12),
    ))


def classify(seed, qid, baseline, outcome):
    """Map one (rows | marker | error) outcome onto the invariant."""
    kind, payload = outcome
    if kind == "error":
        if isinstance(payload, TYPED_ERRORS):
            return "typed_errors", None
        return None, (f"seed {seed} {qid}: untyped error "
                      f"{type(payload).__name__}: {payload}")
    rows, marker = payload
    if marker is not None:
        if not isinstance(marker, DegradedResult):
            return None, (f"seed {seed} {qid}: degraded marker has "
                          f"wrong type {type(marker).__name__}")
        return "degraded", None
    if canon(rows) == baseline[qid]:
        return "correct", None
    return None, (f"seed {seed} {qid}: silently wrong result "
                  f"({len(rows)} rows, no degraded marker)")


def run_round(rig_parts, seed):
    server, table, queries, params, baseline = rig_parts
    outcomes = {}

    def client(qids):
        with server.session() as session:
            for i, qid in qids:
                # alternate policies so both paths sweep every round
                policy = "partial" if (seed + i) % 2 else "fail"
                try:
                    cursor = session.execute_query(
                        queries.query(qid, params),
                        on_shard_failure=policy)
                    rows = cursor.fetchall()
                    outcomes[qid] = ("rows", (rows, cursor.degraded))
                except BaseException as error:  # noqa: BLE001 - classified
                    outcomes[qid] = ("error", error)

    numbered = list(enumerate(PO_QUERY_IDS))
    lanes = [numbered[i::N_CLIENTS] for i in range(N_CLIENTS)]
    with chaos.active(round_plan(seed)) as injector:
        threads = [threading.Thread(target=client, args=(lane,))
                   for lane in lanes if lane]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stats = injector.stats()
    return outcomes, stats


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_round_holds_the_invariant(rig, seed):
    server, table, queries, params, baseline = rig
    faults_before = metrics.counter(
        "storage.chaos.faults_injected").value
    retries_before = (metrics.counter("engine.scatter.retries").value
                      + metrics.counter(
                          "storage.shard.write_retries").value)

    outcomes, stats = run_round(rig, seed)
    assert len(outcomes) == len(PO_QUERY_IDS), f"seed {seed}: lost cases"

    for qid in PO_QUERY_IDS:
        bucket, violation = classify(seed, qid, baseline, outcomes[qid])
        if violation is not None:
            REPORT["violations"].append(violation)
        else:
            REPORT[bucket] += 1
        REPORT["cases"] += 1
    assert not REPORT["violations"], REPORT["violations"]

    # -- healing: the window is spent, probes must bring shards back --
    store = table._store
    for _ in range(3):
        if not store.health.failed_shards():
            break
        store.probe_failed()
    assert store.health.failed_shards() == (), (
        f"seed {seed}: shards still failed after probing: "
        f"{store.health.failed_shards()}")

    # fault-free rerun matches the baseline exactly (nothing stuck)
    with server.session() as session:
        for qid in ("q2", "q7"):
            cursor = session.execute_query(queries.query(qid, params))
            assert canon(cursor.fetchall()) == baseline[qid], (
                f"seed {seed}: {qid} diverges after chaos")

    REPORT["seeds"].append(seed)
    REPORT["faults_injected"] += (
        metrics.counter("storage.chaos.faults_injected").value
        - faults_before)
    REPORT["retries"] += (
        metrics.counter("engine.scatter.retries").value
        + metrics.counter("storage.shard.write_retries").value
        - retries_before)
    # at least the unavailability window must have fired this round
    assert any(row["fired"] for row in stats), f"seed {seed}: no faults"


def test_explain_analyze_surfaces_shards_failed(rig):
    """`shards_failed` lands in EXPLAIN ANALYZE right next to
    shards_scanned, and the health/retry gauges land in
    snapshot_metrics — degradation is observable, not just typed."""
    server, table, queries, params, baseline = rig
    shard = table._store.shard_of_value(0)
    outage = chaos.ChaosPlan(seed=77, rules=(
        chaos.ChaosRule(point="shard.scan", shard=shard, rate=1.0),))
    query = queries.query("q2", params).on_shard_failure("partial")
    with chaos.active(outage):
        text = query.explain(analyze=True)
    assert "metric engine.scatter.shards_failed: 1" in text
    assert "metric engine.scatter.shards_scanned: " in text
    assert "metric engine.scatter.degraded_results: 1" in text

    snapshot = metrics.snapshot_metrics()["metrics"]
    for name in ("storage.shard.health.failures",
                 "storage.shard.health.failed",
                 "engine.scatter.retries",
                 "storage.chaos.faults_injected",
                 "serve.query.degraded"):
        assert name in snapshot, name
    # leave the rig healthy for any round that runs after this test
    for _ in range(3):
        if not table._store.health.failed_shards():
            break
        table._store.probe_failed()


def test_sweep_report(rig):
    """Aggregate acceptance: >= 100 seeded cases, zero invariant
    violations, faults actually injected, and all three outcome
    classes observed.  Writes the CI artifact when asked."""
    if len(REPORT["seeds"]) < len(SEEDS):
        pytest.skip("sweep rounds were filtered; no aggregate to check")
    assert REPORT["cases"] >= 100
    assert REPORT["violations"] == []
    assert REPORT["faults_injected"] > 0
    assert REPORT["retries"] > 0
    assert REPORT["correct"] > 0
    assert REPORT["degraded"] + REPORT["typed_errors"] > 0

    path = os.environ.get("REPRO_CHAOS_REPORT")
    if path:
        payload = dict(REPORT)
        payload["queries"] = list(PO_QUERY_IDS)
        payload["shards"] = N_SHARDS
        payload["documents"] = N_DOCUMENTS
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
