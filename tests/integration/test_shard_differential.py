"""Sharded vs unsharded differential parity (ISSUE 8).

The contract: sharding is a physical layout choice, never a semantic
one.  For any query the sharded scatter-gather plan must produce the
same multiset of rows as the single-stream plan — including the
Figure 3 OLAP query set over JSON_TABLE views at 1/2/4 shards — raise
the same errors, and a crashed shard must recover with the exact same
report contract (``cut_batches``) a standalone store would emit.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import CLOB, Column, Database, NUMBER, Query, expr
from repro.errors import QueryError
from repro.jsontext import dumps
from repro.storage.files import MemoryFileSystem
from repro.storage.shard import routing_hash
from repro.storage.store import CollectionStore
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
)

N_DOCUMENTS = 96
SHARD_COUNTS = (1, 2, 4)
QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9"]


def _normalize(value):
    """Floats round to 6 decimals: scatter-gather regroups float
    summation per shard, and fp addition is not associative — equality
    is modulo the last ulps, nothing else."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    return value


def canon(result):
    """Order-insensitive comparison form ("byte-identical modulo row
    order"): every row serialized canonically, then sorted.  Scalar
    results (some OLAP queries return one value) compare directly."""
    if not isinstance(result, list):
        return _normalize(result)
    return sorted(json.dumps(_normalize(row), sort_keys=True,
                             default=repr)
                  for row in result)


def run_olap(queries, params, qid):
    runners = {
        "q1": lambda: queries.q1(params.reference),
        "q2": queries.q2,
        "q3": lambda: queries.q3(params.partno),
        "q4": lambda: queries.q4(params.requestor, 2, 50.0),
        "q5": lambda: queries.q5(params.partnos),
        "q6": lambda: queries.q6(params.partno),
        "q7": queries.q7,
        "q8": lambda: queries.q8(10, 400.0),
        "q9": queries.q9,
    }
    return runners[qid]()


@pytest.fixture(scope="module")
def documents():
    return list(PurchaseOrderGenerator().documents(N_DOCUMENTS))


@pytest.fixture(scope="module")
def baseline(documents):
    """The unsharded reference: an in-memory table + the PO views."""
    db = Database()
    table = db.create_table("po", [Column("did", NUMBER),
                                   Column("jdoc", CLOB)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": dumps(doc)})
    mv, dmdv = build_po_views(db, table, "jdoc", "base")
    return PoOlapQueries(mv, dmdv), PoQueryParams(documents)


def sharded_queries(documents, shards):
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "po", [Column("did", NUMBER), Column("jdoc", CLOB)],
        durable="/po", fs=fs, shards=shards, routing_field="did")
    table.insert_many([{"did": i, "jdoc": dumps(doc)}
                       for i, doc in enumerate(documents)])
    mv, dmdv = build_po_views(db, table, "jdoc", f"s{shards}")
    return PoOlapQueries(mv, dmdv), table


class TestFigure3Parity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_olap_suite_matches_unsharded(self, documents, baseline,
                                          shards):
        reference, params = baseline
        queries, table = sharded_queries(documents, shards)
        try:
            for qid in QUERIES:
                expected = canon(run_olap(reference, params, qid))
                actual = canon(run_olap(queries, params, qid))
                assert actual == expected, (qid, shards)
        finally:
            table.close()

    def test_survives_reopen(self, documents, baseline):
        """The parity holds over rows restored through recovery, not
        just freshly inserted ones."""
        reference, params = baseline
        fs = MemoryFileSystem()
        db = Database()
        table = db.create_table(
            "po", [Column("did", NUMBER), Column("jdoc", CLOB)],
            durable="/po", fs=fs, shards=2, routing_field="did")
        table.insert_many([{"did": i, "jdoc": dumps(doc)}
                           for i, doc in enumerate(documents)])
        table.close()

        db2 = Database()
        reopened = db2.create_table(
            "po", [Column("did", NUMBER), Column("jdoc", CLOB)],
            durable="/po", fs=fs, shards=2, routing_field="did")
        mv, dmdv = build_po_views(db2, reopened, "jdoc", "re")
        queries = PoOlapQueries(mv, dmdv)
        try:
            for qid in QUERIES:
                assert canon(run_olap(queries, params, qid)) == canon(
                    run_olap(reference, params, qid)), qid
        finally:
            reopened.close()


row_lists = st.lists(
    st.fixed_dictionaries({
        "k": st.sampled_from(["a", "b", "c"]),
        "v": st.one_of(st.none(),
                       st.integers(min_value=-100, max_value=100)),
    }), max_size=18)


class TestPropertyParity:
    @settings(max_examples=25, deadline=None)
    @given(rows=row_lists, pivot=st.integers(min_value=-50, max_value=50),
           shards=st.sampled_from([1, 2, 4]))
    def test_filter_group_by(self, rows, pivot, shards):
        table = self._table(rows, shards)
        try:
            def shape(query):
                return (query.where(expr.Col("v") >= pivot)
                        .group_by(["k"], total=expr.SUM(expr.Col("v")),
                                  n=expr.COUNT())
                        .rows())
            assert canon(shape(Query(table))) == canon(shape(Query(
                [dict(row) for row in rows])))
        finally:
            table.close()

    @settings(max_examples=25, deadline=None)
    @given(rows=row_lists, key=st.sampled_from(["a", "b", "c", "zz"]))
    def test_routing_equality(self, rows, key):
        """Equality on the routing field prunes to the home shard and
        must still return exactly the unsharded rows."""
        table = self._table(rows, 2, routing_field="k")
        try:
            sharded = Query(table).where(expr.Col("k") == key).rows()
            flat = [dict(r) for r in rows if r["k"] == key]
            assert canon(sharded) == canon(flat)
        finally:
            table.close()

    @staticmethod
    def _table(rows, shards, routing_field=None):
        db = Database()
        table = db.create_table(
            "t", [Column("k", CLOB), Column("v", NUMBER)],
            durable="/t", fs=MemoryFileSystem(), shards=shards,
            routing_field=routing_field)
        if rows:
            table.insert_many([dict(row) for row in rows])
        return table


class TestErrorParity:
    """The scatter path must surface the same exception the
    single-stream path would — a worker failure is the query's
    failure, not a shard's."""

    ROWS = [{"k": "a", "v": 2}, {"k": "b", "v": 0},
            {"k": "c", "v": 5}, {"k": "d", "v": 7}]

    def _both(self, build):
        db = Database()
        table = db.create_table(
            "t", [Column("k", CLOB), Column("v", NUMBER)],
            durable="/t", fs=MemoryFileSystem(), shards=2)
        table.insert_many([dict(row) for row in self.ROWS])
        try:
            flat_error = sharded_error = None
            try:
                build(Query([dict(r) for r in self.ROWS])).rows()
            except Exception as exc:  # lint: ignore[broad-except] the exception type is the assertion
                flat_error = exc
            try:
                build(Query(table)).rows()
            except Exception as exc:  # lint: ignore[broad-except] the exception type is the assertion
                sharded_error = exc
            return flat_error, sharded_error
        finally:
            table.close()

    def test_unknown_column(self):
        flat, sharded = self._both(
            lambda q: q.where(expr.Col("nope") > 1))
        assert isinstance(flat, QueryError)
        assert type(sharded) is type(flat)
        assert str(sharded) == str(flat)

    def test_runtime_evaluation_error(self):
        reciprocal = expr.Arithmetic("/", expr.Literal(1), expr.Col("v"))
        flat, sharded = self._both(
            lambda q: q.group_by(["k"], r=expr.SUM(reciprocal)))
        assert isinstance(flat, ZeroDivisionError)
        assert type(sharded) is type(flat)


class TestCrashedShardRecovery:
    """Tearing one shard's WAL must produce the standalone store's
    report contract, scoped to that shard, with every other shard's
    rows intact."""

    ROWS = [{"k": region, "v": i} for i, region in enumerate(
        ["eu", "us", "ap", "eu", "us", "ap", "eu", "us"])]
    TEAR = 7

    def _torn_sharded(self, fs):
        db = Database()
        table = db.create_table(
            "t", [Column("k", CLOB), Column("v", NUMBER)],
            durable="/t", fs=fs, shards=2, routing_field="k")
        table.insert_many([dict(row) for row in self.ROWS])
        table.close()
        self._tear(fs, self._active_wal(fs, "/t/shard-01"))

    @staticmethod
    def _active_wal(fs, directory):
        name = max(n for n in fs.listdir(directory)
                   if n.startswith("log-"))
        return f"{directory}/{name}"

    @classmethod
    def _tear(cls, fs, path):
        data = fs.read_bytes(path)
        handle = fs.create(path)
        handle.write(data[:len(data) - cls.TEAR])
        handle.close()

    def shard1_rows(self):
        return [row for row in self.ROWS
                if routing_hash(row["k"]) % 2 == 1]

    def test_report_contract_matches_standalone(self):
        fs = MemoryFileSystem()
        self._torn_sharded(fs)

        # the same documents, the same tear, in a standalone store
        solo = CollectionStore.create("/solo", fs=fs)
        solo.insert_many([dict(row) for row in self.shard1_rows()])
        solo.close()
        self._tear(fs, self._active_wal(fs, "/solo"))

        sharded = Database().create_table(
            "t", [Column("k", CLOB), Column("v", NUMBER)],
            durable="/t", fs=fs, shards=2, routing_field="k")
        solo_reopened = CollectionStore.open("/solo", fs=fs)
        try:
            report = sharded.recovery
            solo_report = solo_reopened.recovery
            assert len(report.cut_batches) == len(
                solo_report.cut_batches) == 1
            cut, solo_cut = report.cut_batches[0], \
                solo_report.cut_batches[0]
            # identical contract, plus the shard attribution
            assert cut["shard"] == 1
            assert set(cut) == set(solo_cut) | {"shard"}
            for field in ("offset", "expected", "seen"):
                assert cut[field] == solo_cut[field]
            assert not report.quarantined and not solo_report.quarantined
        finally:
            sharded.close()
            solo_reopened.close()

    def test_other_shards_survive_and_store_stays_writable(self):
        fs = MemoryFileSystem()
        self._torn_sharded(fs)
        db = Database()
        table = db.create_table(
            "t", [Column("k", CLOB), Column("v", NUMBER)],
            durable="/t", fs=fs, shards=2, routing_field="k")
        try:
            torn = {row["v"] for row in self.shard1_rows()}
            survivors = {row["v"] for row in table.scan()}
            # shard 0 lost nothing; shard 1 lost at most the torn tail
            assert {row["v"] for row in self.ROWS} - torn <= survivors
            table.insert({"k": "eu", "v": 99})
            assert 99 in {row["v"] for row in table.scan()}
        finally:
            table.close()
