#!/usr/bin/env python3
"""Four-storage shootout: the Figure 3/4 experiment as a script.

Stores one purchase-order collection four ways — JSON text, BSON, OSON,
and relationally shredded (REL) — behind identical ``po_mv`` /
``po_item_dmdv`` views, then runs the paper's 9 OLAP queries against
each and prints the time and storage comparison.

Run:  python examples/storage_shootout.py [doc_count]
"""

import sys
import time

from repro import bson
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.types import BLOB
from repro.jsontext import dumps
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
    build_rel_views,
)
from repro.workloads.relational import (
    create_rel_tables,
    rel_storage_bytes,
    shred_documents,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print(f"Generating {n} purchase orders...")
    documents = list(PurchaseOrderGenerator().documents(n))

    db = Database("shootout")
    setups = {}
    storage_bytes = {}
    for name, encode_fn, sql_type in [("json", dumps, CLOB),
                                      ("bson", bson.encode, BLOB),
                                      ("oson", oson_encode, BLOB)]:
        table = db.create_table(f"po_{name}", [Column("did", NUMBER),
                                               Column("jdoc", sql_type)])
        for i, doc in enumerate(documents):
            table.insert({"did": i, "jdoc": encode_fn(doc)})
        mv, dmdv = build_po_views(db, table, "jdoc", name)
        setups[name] = PoOlapQueries(mv, dmdv)
        storage_bytes[name] = table.storage_bytes()
    master, detail = create_rel_tables(db)
    shred_documents(master, detail, documents)
    mv, dmdv = build_rel_views(db, master, detail, "rel")
    setups["rel"] = PoOlapQueries(mv, dmdv)
    storage_bytes["rel"] = rel_storage_bytes(master, detail)

    params = PoQueryParams(documents)
    runners = lambda q: {  # noqa: E731
        "q1": lambda: q.q1(params.reference), "q2": q.q2,
        "q3": lambda: q.q3(params.partno),
        "q4": lambda: q.q4(params.requestor, 2, 50.0),
        "q5": lambda: q.q5(params.partnos),
        "q6": lambda: q.q6(params.partno),
        "q7": q.q7, "q8": lambda: q.q8(10, 400.0), "q9": q.q9,
    }

    print("\nFigure 4 — storage size:")
    for name, size in storage_bytes.items():
        print(f"  {name:<6} {size / 1024:>10.1f} KiB  "
              f"({size / storage_bytes['json']:.2f}x JSON)")

    print(f"\nFigure 3 — query time (ms):")
    print(f"{'query':<6}" + "".join(f"{s:>10}" for s in setups)
          + f"{'json/oson':>12}")
    totals = dict.fromkeys(setups, 0.0)
    for qid in ("q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9"):
        row = {}
        reference = None
        for name, queries in setups.items():
            start = time.perf_counter()
            result = runners(queries)[qid]()
            row[name] = time.perf_counter() - start
            totals[name] += row[name]
            if reference is None:
                reference = result
            else:
                assert result == reference, f"{qid}: {name} disagrees!"
        cells = "".join(f"{row[s] * 1000:>10.1f}" for s in setups)
        print(f"{qid:<6}{cells}{row['json'] / row['oson']:>11.1f}x")
    cells = "".join(f"{totals[s] * 1000:>10.1f}" for s in setups)
    print(f"{'total':<6}{cells}{totals['json'] / totals['oson']:>11.1f}x")
    print("\nAll four storages returned identical answers for every query.")


if __name__ == "__main__":
    main()
