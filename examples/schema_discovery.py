#!/usr/bin/env python3
"""Schema discovery on a messy heterogeneous collection.

A data-lake scenario the paper's introduction motivates: a feed of JSON
events from different producers, in different shapes, with type
conflicts.  The DataGuide turns the mess into a relational surface:

* the flat form shows every path with its (generalized) type;
* the hierarchical form is the annotatable schema document;
* annotations prune noise and rename columns;
* the generated DMDV view makes the feed SQL-queryable.

Run:  python examples/schema_discovery.py
"""

from repro.core.dataguide import create_view_on_path, json_dataguide_agg
from repro.engine import Column, Database, NUMBER, CLOB, expr
from repro.engine.constraints import IsJsonConstraint
from repro.jsontext import dumps

#: three producers, three shapes — including a type conflict on 'payload'
EVENTS = [
    # producer A: structured order events
    {"kind": "order", "ts": "2015-06-01T10:00:00", "payload": {
        "orderId": 1001, "amount": 250.0,
        "lines": [{"sku": "A-1", "qty": 2}, {"sku": "B-9", "qty": 1}]}},
    {"kind": "order", "ts": "2015-06-01T10:05:00", "payload": {
        "orderId": 1002, "amount": 99.5,
        "lines": [{"sku": "C-3", "qty": 4}]}},
    # producer B: bare string payloads (legacy format)
    {"kind": "log", "ts": "2015-06-01T10:07:00",
     "payload": "user 42 logged in"},
    # producer C: metrics with extra fields and numeric ts
    {"kind": "metric", "ts": "2015-06-01T10:09:00", "host": "web-3",
     "payload": {"cpu": 0.82, "memMb": 512}, "sampled": True},
]


def main() -> None:
    db = Database("lake")
    events = db.create_table("EVENTS", [Column("EID", NUMBER),
                                        Column("BODY", CLOB)])
    events.add_constraint(IsJsonConstraint("BODY"))
    for i, event in enumerate(EVENTS):
        events.insert({"EID": i, "BODY": dumps(event)})

    # -- discover ------------------------------------------------------------
    guide = json_dataguide_agg(row["BODY"] for row in events.scan())
    print("Flat DataGuide (note the heterogeneous 'payload' path):")
    for row in guide.as_flat():
        print(f"  {row['PATH']:<28} {row['TYPE']:<18} "
              f"freq={row['FREQUENCY']}")

    print("\nHierarchical form (annotatable schema document):")
    print(dumps(guide.as_hierarchical(), pretty=True)[:800], "...")

    # -- annotate: rename awkward columns, drop the legacy payload -----------
    annotated = guide.annotate(
        renames={"$.payload.orderId": "ORDER_ID",
                 "$.payload.amount": "AMOUNT"},
        exclude=["$.payload"],  # the string-typed legacy variant
    )

    # -- project relationally --------------------------------------------------
    create_view_on_path(db, events, "BODY", annotated,
                        view_name="EVENTS_RV", include_columns=["EID"])
    view = db.view("EVENTS_RV")
    print("\nGenerated DMDV columns:", view.column_names)

    print("\nOrder lines via plain SQL over the view:")
    rows = (db.query("EVENTS_RV")
            .where(expr.Col("BODY$kind") == "order")
            .select("ORDER_ID", "AMOUNT", "BODY$sku", "BODY$qty")
            .rows())
    for row in rows:
        print(f"  {row}")

    total = (db.query("EVENTS_RV")
             .where(expr.Col("AMOUNT").is_not_null())
             .select("EID", "AMOUNT").distinct()
             .group_by([], total=expr.SUM(expr.Col("AMOUNT")))
             .scalar())
    print(f"\nTotal order amount: {total}")


if __name__ == "__main__":
    main()
