#!/usr/bin/env python3
"""OSON deep dive: the three-segment binary format under a microscope.

Shows what the paper's section 4 describes, on real bytes:

* the three segments and their sizes (Figure 2 / Table 11);
* the field-id-name dictionary with hash-ordered ids;
* offset-based jump navigation (no parsing on the read path);
* the compile-time hash + single-row look-back optimizations;
* partial leaf updates in place;
* the size advantage over JSON text on repetitive documents (Table 10);
* the section 7 set-encoding prototype with a shared dictionary.

Run:  python examples/oson_deep_dive.py
"""

from repro.core.oson import (
    CompiledFieldName,
    FieldIdResolver,
    OsonDocument,
    OsonUpdater,
    SharedDictionaryStore,
    encode,
)
from repro.jsontext import dumps


def main() -> None:
    doc = {
        "purchaseOrder": {
            "id": 7,
            "podate": "2014-09-08",
            "items": [
                {"name": "phone", "price": 100.0, "quantity": 2},
                {"name": "ipad", "price": 350.86, "quantity": 3},
            ],
        }
    }

    data = encode(doc)
    oson = OsonDocument(data)

    # --- the three segments -------------------------------------------------
    sizes = oson.segment_sizes()
    total = len(data)
    print(f"OSON bytes: {total} (JSON text: {len(dumps(doc))})")
    for segment, size in sizes.items():
        print(f"  {segment:<12} {size:>5} bytes  ({100 * size / total:.1f}%)")

    # --- the dictionary: names sorted by hash, ordinal = field id -----------
    print("\nField-id-name dictionary (sorted by 32-bit hash):")
    for field_id in range(oson.field_count()):
        print(f"  id={field_id}  hash=0x{oson.field_hash(field_id):08x}  "
              f"{oson.field_name(field_id)!r}")

    # --- jump navigation: byte offsets as node addresses --------------------
    po = oson.get_field_value_by_name(oson.root, "purchaseOrder")
    items = oson.get_field_value_by_name(po, "items")
    second = oson.get_array_element(items, 1)
    price = oson.get_field_value_by_name(second, "price")
    print(f"\nNavigated to $.purchaseOrder.items[1].price "
          f"(node offsets: root={oson.root}, po={po}, items={items}, "
          f"item={second}, price={price})")
    print(f"  value = {oson.scalar_value(price)}")

    # --- compile-time hashing + single-row look-back -------------------------
    compiled = CompiledFieldName("price")
    resolver = FieldIdResolver()
    stream = [OsonDocument(encode({"price": i, "other": "x"}))
              for i in range(100)]
    for d in stream:
        resolver.resolve(d, compiled)
    print(f"\nField-id resolution over 100 homogeneous documents: "
          f"{resolver.lookups} lookups, {resolver.lookback_hits} "
          f"look-back hits (binary search skipped)")

    # --- partial update in place ---------------------------------------------
    updater = OsonUpdater(data)
    updater.set_scalar_by_path(["purchaseOrder", "items", 0, "price"], 95.5)
    updated = updater.document
    print(f"\nAfter in-place partial update: items[0].price = "
          f"{updated.materialize()['purchaseOrder']['items'][0]['price']}")

    # --- size on repetitive documents (Table 10's big rows) -----------------
    archive = {"messages": [
        {"authorName": f"user{i}", "messageText": "hello world " * 3,
         "likeCount": i} for i in range(2000)]}
    oson_size = len(encode(archive))
    text_size = len(dumps(archive))
    print(f"\nRepetitive archive (2000 messages): JSON text {text_size:,} B, "
          f"OSON {oson_size:,} B  ({oson_size / text_size:.2f}x)")

    # --- set encoding: one shared dictionary for a collection ---------------
    docs = [{"orderId": i, "customerName": f"c{i}",
             "lineItems": [{"sku": f"S{i}", "qty": 1}]} for i in range(200)]
    store = SharedDictionaryStore()
    for d in docs:
        store.add(d)
    shared = store.memory_bytes()
    self_contained = SharedDictionaryStore.self_contained_bytes(docs)
    print(f"\nSet encoding (section 7): shared dictionary {shared:,} B vs "
          f"self-contained {self_contained:,} B "
          f"({100 * (1 - shared / self_contained):.0f}% saved)")


if __name__ == "__main__":
    main()
