#!/usr/bin/env python3
"""NOBENCH analytics across the three in-memory modes (paper section 6.4).

Loads a NOBENCH collection as JSON text ("on disk"), then runs the same
queries in the paper's three execution modes and reports the speedups:

* TEXT-MODE     — queries re-parse the cached text every time;
* OSON-IMC-MODE — the implicit OSON() virtual column populates binary
  documents in memory; queries jump-navigate;
* VC-IMC-MODE   — three JSON_VALUE virtual columns become numpy vectors;
  Q6/Q7/Q10/Q11 run as vectorized columnar kernels.

Run:  python examples/nobench_analytics.py [doc_count]
"""

import sys
import time

from repro.imc.json_modes import (
    JsonColumnIMC,
    OSON_IMC_MODE,
    TEXT_MODE,
    VC_IMC_MODE,
)
from repro.jsontext import dumps
from repro.workloads.nobench import NobenchGenerator, NobenchQueries, VC_PATHS

QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10",
           "q11"]


def build(texts, n, mode, vc_paths=()):
    imc = JsonColumnIMC(mode, vc_paths)
    imc.load_texts(texts)
    start = time.perf_counter()
    imc.populate()
    populate_seconds = time.perf_counter() - start
    return NobenchQueries(imc, n), populate_seconds


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"Generating {n} NOBENCH documents "
          f"(~11 common fields + 10 sparse fields each)...")
    texts = [dumps(d) for d in NobenchGenerator().documents(n)]

    modes = {}
    for label, mode, vc in (("TEXT", TEXT_MODE, ()),
                            ("OSON-IMC", OSON_IMC_MODE, ()),
                            ("VC-IMC", VC_IMC_MODE, VC_PATHS)):
        queries, populate_seconds = build(texts, n, mode, vc)
        modes[label] = queries
        print(f"  {label:<9} populated in {populate_seconds * 1000:8.1f} ms, "
              f"{queries.source.memory_bytes() / 1024:9.1f} KiB in memory")

    print(f"\n{'query':<6}{'TEXT ms':>10}{'OSON-IMC ms':>13}"
          f"{'VC-IMC ms':>11}{'best speedup':>14}")
    totals = dict.fromkeys(modes, 0.0)
    for qid in QUERIES:
        row = {}
        sizes = set()
        for label, queries in modes.items():
            start = time.perf_counter()
            result = getattr(queries, qid)()
            row[label] = time.perf_counter() - start
            totals[label] += row[label]
            sizes.add(len(result))
        assert len(sizes) == 1, f"{qid}: modes disagree!"
        speedup = row["TEXT"] / min(row["OSON-IMC"], row["VC-IMC"])
        print(f"{qid:<6}{row['TEXT'] * 1000:>10.1f}"
              f"{row['OSON-IMC'] * 1000:>13.1f}"
              f"{row['VC-IMC'] * 1000:>11.1f}{speedup:>13.1f}x")
    print(f"{'total':<6}{totals['TEXT'] * 1000:>10.1f}"
          f"{totals['OSON-IMC'] * 1000:>13.1f}"
          f"{totals['VC-IMC'] * 1000:>11.1f}"
          f"{totals['TEXT'] / totals['VC-IMC']:>13.1f}x")
    print("\n(Figure 5 is the TEXT vs OSON-IMC comparison; Figure 6 is "
          "OSON-IMC vs VC-IMC on Q6/Q7/Q10/Q11.)")


if __name__ == "__main__":
    main()
