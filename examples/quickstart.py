#!/usr/bin/env python3
"""Quickstart: 'write without schema, read with schema' in ten steps.

This walks the paper's headline workflow end to end:

1.  create a table with a JSON column guarded by an IS JSON constraint;
2.  create a JSON search index (which maintains the persistent DataGuide);
3.  insert schemaless documents;
4.  read the automatically discovered DataGuide;
5.  project singleton scalars as virtual columns (AddVC);
6.  generate a De-normalized Master-Detail View (CreateViewOnPath);
7.  run SQL analytics over the views;
8.  search with the schema-agnostic index;
9.  watch the DataGuide evolve as a new document shape arrives;
10. compute a transient DataGuide over a filtered subset.

Run:  python examples/quickstart.py
"""

from repro.core.dataguide import (
    JsonDataGuideAgg,
    add_vc,
    create_view_on_path,
)
from repro.engine import Column, Database, NUMBER, CLOB, expr
from repro.engine.constraints import IsJsonConstraint
from repro.jsontext import dumps


def main() -> None:
    # 1. schema-first for the relational part, schemaless for the JSON part
    db = Database("quickstart")
    po = db.create_table("PO", [
        Column("DID", NUMBER, nullable=False),
        Column("JDOC", CLOB),
    ])
    po.add_constraint(IsJsonConstraint("JDOC"))

    # 2. one index gives both search and structure discovery
    index = db.create_json_search_index("PO_SIDX", "PO", "JDOC")

    # 3. documents go in without any schema registration
    documents = [
        {"purchaseOrder": {"id": 1, "podate": "2014-09-08",
         "items": [{"name": "phone", "price": 100, "quantity": 2},
                   {"name": "ipad", "price": 350.86, "quantity": 3}]}},
        {"purchaseOrder": {"id": 2, "podate": "2015-03-04",
         "items": [{"name": "table", "price": 52.78, "quantity": 2},
                   {"name": "chair", "price": 35.24, "quantity": 4}]}},
    ]
    for i, doc in enumerate(documents):
        po.insert({"DID": i + 1, "JDOC": dumps(doc)})

    # 4. the DataGuide was computed as a side effect of insertion
    guide = index.get_dataguide()
    print("Discovered DataGuide ($DG rows):")
    for row in guide.as_flat():
        print(f"  {row['PATH']:<40} {row['TYPE']}")

    # 5. AddVC: singleton scalars become queryable virtual columns
    added = add_vc(po, "JDOC", guide)
    print("\nVirtual columns added:", [c.name for c in added])

    # 6. CreateViewOnPath: the full master-detail expansion as a view
    create_view_on_path(db, po, "JDOC", guide, view_name="PO_RV",
                        include_columns=["DID"])

    # 7. plain SQL over JSON: aggregation on the DMDV view
    revenue_rows = (db.query("PO_RV")
                    .group_by(["JDOC$podate"],
                              revenue=expr.SUM(expr.Col("JDOC$price")
                                               * expr.Col("JDOC$quantity")))
                    .order_by("JDOC$podate")
                    .rows())
    print("\nRevenue by order date (SQL over JSON):")
    for row in revenue_rows:
        print(f"  {row['JDOC$podate']}: {row['revenue']:.2f}")

    # 8. ad-hoc search: schema and values together, no pre-declared index
    hits = index.docs_with_keywords("ipad")
    print("\nDocuments mentioning 'ipad':", [r["DID"] for r in hits])

    # 9. schema evolution is automatic: insert a wider document
    po.insert({"DID": 3, "JDOC": dumps(
        {"purchaseOrder": {"id": 3, "podate": "2015-06-03",
                           "foreign_id": "CDEG35", "items": []}})})
    new_paths = set(index.get_dataguide().paths()) - set(guide.paths())
    print("\nNew paths discovered after insert:", sorted(new_paths))

    # 10. a transient DataGuide over any query result, purely declaratively
    filtered = (db.query("PO")
                .where(expr.JsonExistsExpr("JDOC",
                                           "$.purchaseOrder.foreign_id"))
                .group_by([], dg=JsonDataGuideAgg("JDOC"))
                .scalar())
    print(f"\nTransient DataGuide over docs having foreign_id: "
          f"{len(filtered)} rows from {filtered.document_count} document(s)")


if __name__ == "__main__":
    main()
