"""Figure 7 — insertion cost: no constraint / IS JSON / IS JSON + DataGuide.

Inserting identical-structure NOBENCH documents in three modes:

* ``no-json-constraint`` — base row insertion cost;
* ``json-constraint``    — adds reading + parsing the JSON;
* ``json-constraint-dataguide`` — adds the structural no-change check.

Paper shape: IS JSON costs ~9.4% over the base; adding DataGuide
maintenance brings the overhead to ~17% (i.e. the DataGuide adds a
single-digit percentage on top of parsing).  In pure Python the parse
dominates the cheap base insert far more than in Oracle's C kernel, so we
assert the *ordering* and that the DataGuide increment stays well below
the parsing increment.
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.constraints import IsJsonConstraint
from repro.jsontext import dumps
from repro.workloads.nobench import NobenchGenerator

N = scaled(1500)
MODES = ["no-json-constraint", "json-constraint", "json-constraint-dataguide"]


@pytest.fixture(scope="module")
def texts():
    return [dumps(d)
            for d in NobenchGenerator().homogeneous_documents(N)]


def _insert_all(texts, mode):
    db = Database()
    table = db.create_table("t", [Column("id", NUMBER),
                                  Column("jdoc", CLOB)])
    pdg = None
    if mode != "no-json-constraint":
        table.add_constraint(IsJsonConstraint("jdoc"))
    if mode == "json-constraint-dataguide":
        # the paper's integration point: DataGuide maintenance fused into
        # the IS JSON constraint check (no separate search index)
        from repro.core.dataguide.persistent import attach_dataguide
        pdg = attach_dataguide(table, "jdoc")
    for i, text in enumerate(texts):
        table.insert({"id": i, "jdoc": text})
    return db, table, pdg


@pytest.fixture(scope="module")
def timing_table(texts):
    times = {}
    for mode in MODES:
        start = time.perf_counter()
        _insert_all(texts, mode)
        times[mode] = time.perf_counter() - start
    base = times["no-json-constraint"]
    lines = [f"{mode:<28} {t * 1000:>10.1f} ms  (+{100 * (t / base - 1):.1f}%)"
             for mode, t in times.items()]
    report(f"Figure 7 — insertion time, {N} homogeneous documents", lines)
    _assert_shape(times)
    return times


def _assert_shape(times):
    base = times["no-json-constraint"]
    with_json = times["json-constraint"]
    with_guide = times["json-constraint-dataguide"]
    # strict ordering of the three modes
    assert base < with_json < with_guide
    # the DataGuide's own increment stays bounded relative to the parse
    # increment: the no-structural-change fast path does no heavy work
    parse_cost = with_json - base
    guide_cost = with_guide - with_json
    assert guide_cost < parse_cost * 2.5


@pytest.mark.parametrize("mode", MODES)
def test_figure7_insert(benchmark, texts, timing_table, mode):
    benchmark.pedantic(_insert_all, args=(texts, mode), rounds=3,
                       iterations=1)


def test_figure7_shape(timing_table):
    _assert_shape(timing_table)


def test_figure7_dataguide_no_writes_on_homogeneous(texts):
    """The fast path really writes $DG rows only for the first document."""
    _db, _table, pdg = _insert_all(texts, "json-constraint-dataguide")
    assert pdg.dg_table.insert_count == len(pdg.dg_table)
