"""Figure 3 — the 9 OLAP queries over JSON / BSON / OSON / REL storage.

The paper's shape:

* query performance ordering: OSON >= BSON > JSON text (OSON is 5-10x
  faster than text on Q2-Q6, where predicate pushdown lets the binary
  format's jump navigation skip non-matching documents);
* REL is the fastest (in the paper OSON is on par with REL; a pure-Python
  byte-navigated format cannot match C-speed dict rows, so here REL keeps
  a lead — see EXPERIMENTS.md for the deviation note).
"""

import pytest

from benchmarks.conftest import record, report, scaled
from repro import bson
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.types import BLOB
from repro.jsontext import dumps
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
    build_rel_views,
)
from repro.workloads.relational import create_rel_tables, shred_documents

N = scaled(700)
STORAGES = ["json", "bson", "oson", "rel"]
QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9"]


@pytest.fixture(scope="module")
def setup():
    documents = list(PurchaseOrderGenerator().documents(N))
    db = Database()
    queries = {}
    for name, encode_fn, sql_type in [("json", dumps, CLOB),
                                      ("bson", bson.encode, BLOB),
                                      ("oson", oson_encode, BLOB)]:
        table = db.create_table(f"po_{name}", [Column("did", NUMBER),
                                               Column("jdoc", sql_type)])
        for i, doc in enumerate(documents):
            table.insert({"did": i, "jdoc": encode_fn(doc)})
        mv, dmdv = build_po_views(db, table, "jdoc", name)
        queries[name] = PoOlapQueries(mv, dmdv)
    master, detail = create_rel_tables(db)
    shred_documents(master, detail, documents)
    mv, dmdv = build_rel_views(db, master, detail, "rel")
    queries["rel"] = PoOlapQueries(mv, dmdv)
    params = PoQueryParams(documents)
    return queries, params


def _run(queries, params, storage, qid):
    q = queries[storage]
    runners = {
        "q1": lambda: q.q1(params.reference),
        "q2": q.q2,
        "q3": lambda: q.q3(params.partno),
        "q4": lambda: q.q4(params.requestor, 2, 50.0),
        "q5": lambda: q.q5(params.partnos),
        "q6": lambda: q.q6(params.partno),
        "q7": q.q7,
        "q8": lambda: q.q8(10, 400.0),
        "q9": q.q9,
    }
    return runners[qid]()


@pytest.fixture(scope="module")
def timing_table(setup):
    """One warm-up run per (query, storage) with wall-clock timing,
    verifying all storages agree, and printing the Figure 3 series."""
    import time
    queries, params = setup
    times = {}
    for qid in QUERIES:
        reference_result = None
        for storage in STORAGES:
            start = time.perf_counter()
            result = _run(queries, params, storage, qid)
            times[(qid, storage)] = time.perf_counter() - start
            if reference_result is None:
                reference_result = result
            else:
                assert result == reference_result, (qid, storage)
    lines = [f"{'query':<6}" + "".join(f"{s:>12}" for s in STORAGES)
             + f"{'json/oson':>12}"]
    for qid in QUERIES:
        cells = "".join(f"{times[(qid, s)] * 1000:>12.1f}" for s in STORAGES)
        ratio = times[(qid, "json")] / times[(qid, "oson")]
        lines.append(f"{qid:<6}{cells}{ratio:>12.1f}")
    report(f"Figure 3 — query time (ms), {N} documents", lines)
    record("figure3", "n_documents", N)
    for qid in QUERIES:
        record("figure3", qid, {
            "ms": {s: times[(qid, s)] * 1000 for s in STORAGES},
            "json_over_oson": times[(qid, "json")] / times[(qid, "oson")],
        })
    _assert_shape(times)
    return times


def _assert_shape(times):
    """The headline claims, enforced even under --benchmark-only: OSON
    beats text 5-10x on Q2-Q6 (>=3x asserted to absorb timer noise) and
    the binary formats beat text overall."""
    def total(storage):
        return sum(times[(qid, storage)] for qid in QUERIES)

    for qid in ("q2", "q3", "q4", "q5", "q6"):
        ratio = times[(qid, "json")] / times[(qid, "oson")]
        assert ratio > 3.0, f"{qid}: json/oson = {ratio:.1f}"
    assert total("oson") < total("json")
    assert total("bson") < total("json")
    assert total("rel") < total("oson")  # Python-reproduction deviation


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("qid", QUERIES)
def test_figure3_query(benchmark, setup, timing_table, qid, storage):
    queries, params = setup
    result = benchmark(_run, queries, params, storage, qid)
    assert result is not None


def test_figure3_shape(timing_table):
    _assert_shape(timing_table)
