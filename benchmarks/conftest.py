"""Shared fixtures and reporting helpers for the paper benchmarks.

Every benchmark regenerates one table or figure from the paper's section 6
at laptop scale.  Absolute numbers differ from the paper's testbed; the
assertions encode the *shape* each artefact must reproduce (who wins, by
roughly what factor).  Scales can be raised via environment variables:

    REPRO_BENCH_SCALE      multiplier on document counts (default 1.0)
    REPRO_BENCH_RESULTS    output path for the machine-readable results
                           file (default BENCH_results.json in the cwd)

Besides the human-readable tables, every benchmark run emits
``BENCH_results.json``: raw timings and ratios recorded via
:func:`record`, the cache/dispatch counter snapshot, and run metadata.
CI uploads the file as an artifact so perf history survives the job.
"""

import json
import os
import platform
import sys

import pytest

#: global scale knob for document counts
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: where the machine-readable results land
RESULTS_PATH = os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json")


def scaled(count: int, minimum: int = 1) -> int:
    return max(minimum, int(count * SCALE))


#: dataset generation is deterministic; this seed parameterizes the only
#: sampled stage (dataguide sampling) and is recorded for reproducibility
DATA_SEED = 42

#: accumulated machine-readable results: section -> name -> value
RESULTS = {}


def record(section: str, name: str, value) -> None:
    """Record one measurement for ``BENCH_results.json``.

    ``value`` must be JSON-serializable (numbers, strings, dicts of
    those).  Re-recording the same (section, name) overwrites, so a
    fixture shared by several tests records its table once.
    """
    RESULTS.setdefault(section, {})[name] = value


def _write_results() -> None:
    if not RESULTS:
        return
    from repro.core.counters import snapshot_all

    payload = {
        "meta": {
            "scale": SCALE,
            "seed": DATA_SEED,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "counters": snapshot_all(),
        "results": RESULTS,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nbenchmark results written to {RESULTS_PATH}", file=sys.stderr)


def pytest_sessionfinish(session, exitstatus):
    _write_results()


_REPORTED = set()


def report(title: str, lines) -> None:
    """Print a paper-style table once per session (visible with -s; also
    emitted into the captured output of the first benchmark that builds
    it)."""
    if title in _REPORTED:
        return
    _REPORTED.add(title)
    out = ["", "=" * 72, title, "-" * 72]
    out.extend(lines)
    out.append("=" * 72)
    print("\n".join(out), file=sys.stderr)


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
