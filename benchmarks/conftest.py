"""Shared fixtures and reporting helpers for the paper benchmarks.

Every benchmark regenerates one table or figure from the paper's section 6
at laptop scale.  Absolute numbers differ from the paper's testbed; the
assertions encode the *shape* each artefact must reproduce (who wins, by
roughly what factor).  Scales can be raised via environment variables:

    REPRO_BENCH_SCALE      multiplier on document counts (default 1.0)
    REPRO_BENCH_RESULTS    output path for the machine-readable results
                           file (default BENCH_results.json in the cwd)

Besides the human-readable tables, every benchmark run emits
``BENCH_results.json``: raw timings and ratios recorded via
:func:`record`, the cache/dispatch counter snapshot, and run metadata.
CI uploads the file as an artifact so perf history survives the job.
"""

import json
import os
import platform
import sys

import pytest

#: global scale knob for document counts
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: where the machine-readable results land
RESULTS_PATH = os.environ.get("REPRO_BENCH_RESULTS", "BENCH_results.json")

#: where the observability exports land (CI uploads both next to
#: BENCH_results.json; ``python -m repro.tools.obs`` renders them)
OBS_TRACE_PATH = os.environ.get("REPRO_OBS_TRACE", "OBS_trace.json")
OBS_METRICS_PATH = os.environ.get("REPRO_OBS_METRICS", "OBS_metrics.json")


def scaled(count: int, minimum: int = 1) -> int:
    return max(minimum, int(count * SCALE))


#: dataset generation is deterministic; this seed parameterizes the only
#: sampled stage (dataguide sampling) and is recorded for reproducibility
DATA_SEED = 42

#: accumulated machine-readable results: section -> name -> value
RESULTS = {}


def record(section: str, name: str, value) -> None:
    """Record one measurement for ``BENCH_results.json``.

    ``value`` must be JSON-serializable (numbers, strings, dicts of
    those).  Re-recording the same (section, name) overwrites, so a
    fixture shared by several tests records its table once.
    """
    RESULTS.setdefault(section, {})[name] = value


def _write_results() -> None:
    if not RESULTS:
        return
    from repro.core.counters import snapshot_all

    payload = {
        "meta": {
            "scale": SCALE,
            "seed": DATA_SEED,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "counters": snapshot_all(),
        "results": RESULTS,
    }
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nbenchmark results written to {RESULTS_PATH}", file=sys.stderr)


def _write_obs_exports() -> None:
    """Dump the session's trace ring and metrics registry.

    Spans drained by individual tests are gone by design; whatever is
    left in the ring (e.g. the traced Figure 3 pass from
    ``test_obs_overhead.py``) becomes the artifact.  Both payloads are
    schema-validated by ``python -m repro.tools.obs validate`` in CI.
    """
    from repro.obs import export_traces
    from repro.obs.metrics import snapshot_metrics

    with open(OBS_TRACE_PATH, "w", encoding="utf-8") as fh:
        json.dump(export_traces(drain=False), fh, indent=2)
        fh.write("\n")
    with open(OBS_METRICS_PATH, "w", encoding="utf-8") as fh:
        json.dump(snapshot_metrics(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"observability exports written to {OBS_TRACE_PATH} and "
          f"{OBS_METRICS_PATH}", file=sys.stderr)


def pytest_sessionfinish(session, exitstatus):
    _write_results()
    _write_obs_exports()


_REPORTED = set()


def report(title: str, lines) -> None:
    """Print a paper-style table once per session (visible with -s; also
    emitted into the captured output of the first benchmark that builds
    it)."""
    if title in _REPORTED:
        return
    _REPORTED.add(title)
    out = ["", "=" * 72, title, "-" * 72]
    out.extend(lines)
    out.append("=" * 72)
    print("\n".join(out), file=sys.stderr)


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
