"""Shared fixtures and reporting helpers for the paper benchmarks.

Every benchmark regenerates one table or figure from the paper's section 6
at laptop scale.  Absolute numbers differ from the paper's testbed; the
assertions encode the *shape* each artefact must reproduce (who wins, by
roughly what factor).  Scales can be raised via environment variables:

    REPRO_BENCH_SCALE      multiplier on document counts (default 1.0)
"""

import os
import sys

import pytest

#: global scale knob for document counts
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(count: int, minimum: int = 1) -> int:
    return max(minimum, int(count * SCALE))


_REPORTED = set()


def report(title: str, lines) -> None:
    """Print a paper-style table once per session (visible with -s; also
    emitted into the captured output of the first benchmark that builds
    it)."""
    if title in _REPORTED:
        return
    _REPORTED.add(title)
    out = ["", "=" * 72, title, "-" * 72]
    out.extend(lines)
    out.append("=" * 72)
    print("\n".join(out), file=sys.stderr)


@pytest.fixture(scope="session")
def bench_scale():
    return SCALE
