"""Figure 8 — homogeneous vs heterogeneous insertion with DataGuide on.

``homo`` inserts documents with identical structures (zero $DG writes
after the first document); ``hetero`` gives every document a unique new
field, forcing a $DG write per insert.  Paper shape: the heterogeneous
collection costs about 2x the homogeneous one.

Cost-model caveat (see EXPERIMENTS.md): in Oracle the per-new-path $DG
persistence is a real SQL INSERT with index and redo maintenance, which
dominates the cheap fast-path check — hence 2x.  In pure Python the text
parse dominates both modes, compressing the end-to-end gap; we therefore
measure (a) end-to-end insertion, (b) the DataGuide-maintenance-only
cost, where the hetero penalty is directly visible, and (c) the $DG
write counts, which reproduce the mechanism exactly.
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.core.dataguide.persistent import PersistentDataGuide, attach_dataguide
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.constraints import IsJsonConstraint
from repro.jsontext import dumps
from repro.workloads.nobench import NobenchGenerator

N = scaled(1500)


@pytest.fixture(scope="module")
def corpora():
    generator = NobenchGenerator()
    return {
        "homo": list(generator.homogeneous_documents(N)),
        "hetero": list(generator.heterogeneous_documents(N)),
    }


@pytest.fixture(scope="module")
def texts(corpora):
    return {label: [dumps(d) for d in docs]
            for label, docs in corpora.items()}


def _insert_with_dataguide(text_list):
    db = Database()
    table = db.create_table("t", [Column("id", NUMBER),
                                  Column("jdoc", CLOB)])
    table.add_constraint(IsJsonConstraint("jdoc"))
    pdg = attach_dataguide(table, "jdoc")
    for i, text in enumerate(text_list):
        table.insert({"id": i, "jdoc": text})
    return pdg


def _maintain_only(documents):
    pdg = PersistentDataGuide()
    for doc in documents:
        pdg.on_document(doc)
    return pdg


@pytest.fixture(scope="module")
def timing_table(corpora, texts):
    times = {}
    for label in ("homo", "hetero"):
        start = time.perf_counter()
        _insert_with_dataguide(texts[label])
        times[("insert", label)] = time.perf_counter() - start
        start = time.perf_counter()
        _maintain_only(corpora[label])
        times[("maintain", label)] = time.perf_counter() - start
    insert_ratio = times[("insert", "hetero")] / times[("insert", "homo")]
    maintain_ratio = (times[("maintain", "hetero")]
                      / times[("maintain", "homo")])
    lines = [
        f"{'':<10}{'homo ms':>10}{'hetero ms':>11}{'ratio':>8}",
        f"{'insert':<10}{times[('insert', 'homo')] * 1000:>10.1f}"
        f"{times[('insert', 'hetero')] * 1000:>11.1f}{insert_ratio:>8.2f}",
        f"{'maintain':<10}{times[('maintain', 'homo')] * 1000:>10.1f}"
        f"{times[('maintain', 'hetero')] * 1000:>11.1f}{maintain_ratio:>8.2f}",
        "(paper: ~2x end-to-end; Python parse costs compress the insert "
        "ratio — the maintenance ratio carries the signal)",
    ]
    report(f"Figure 8 — homo vs hetero insertion, {N} documents", lines)
    # hetero maintenance must be measurably dearer than the homo fast path
    assert maintain_ratio > 1.05, f"maintain hetero/homo = {maintain_ratio:.2f}"
    # end-to-end must not invert (hetero can never be cheaper)
    assert insert_ratio > 0.95
    return times


@pytest.mark.parametrize("label", ["homo", "hetero"])
def test_figure8_insert(benchmark, texts, timing_table, label):
    benchmark.pedantic(_insert_with_dataguide, args=(texts[label],),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("label", ["homo", "hetero"])
def test_figure8_maintenance(benchmark, corpora, timing_table, label):
    benchmark.pedantic(_maintain_only, args=(corpora[label],),
                       rounds=3, iterations=1)


def test_figure8_write_counts(texts):
    """Every hetero insert writes at least one new $DG row; homo inserts
    write none after the first document — the paper's mechanism."""
    homo_pdg = _insert_with_dataguide(texts["homo"])
    hetero_pdg = _insert_with_dataguide(texts["hetero"])
    assert hetero_pdg.dg_table.insert_count >= \
        homo_pdg.dg_table.insert_count + (N - 1)
    assert homo_pdg.dg_table.insert_count == len(homo_pdg.dg_table)
