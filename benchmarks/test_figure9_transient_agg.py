"""Figure 9 — transient DataGuide aggregation with sampling.

JSON_DATAGUIDEAGG over a NOBENCH collection at 25/50/75/99% samples, plus
persistent-index creation over the same collection.  Paper shape:

* transient aggregation time is linear in the sample percentage;
* creating the persistent DataGuide (search index build: same skeleton
  computation plus $DG persistence and inverted-index maintenance) costs
  more than the 99%-sample transient aggregation (paper: +27%).
"""

import time

import pytest

from benchmarks.conftest import record, report, scaled
from repro.core.dataguide import json_dataguide_agg
from repro.core.dataguide.persistent import PersistentDataGuide
from repro.jsontext import dumps, loads
from repro.workloads.nobench import NobenchGenerator

N = scaled(3000)
SAMPLES = [25, 50, 75, 99]


@pytest.fixture(scope="module")
def texts():
    return [dumps(d) for d in NobenchGenerator().documents(N)]


@pytest.fixture(scope="module")
def timing_table(texts):
    times = {}
    for pct in SAMPLES:
        start = time.perf_counter()
        guide = json_dataguide_agg(texts, sample_percent=pct, seed=42)
        times[pct] = time.perf_counter() - start
        times[(pct, "paths")] = len(guide)
    # persistent dataguide over (all) parsed documents: skeletons + $DG
    start = time.perf_counter()
    pdg = PersistentDataGuide()
    for text in texts:
        pdg.on_document(loads(text))
    pdg.compute_statistics()
    times["persistent"] = time.perf_counter() - start
    lines = [f"sample {pct:>3}%  {times[pct] * 1000:>10.1f} ms  "
             f"({times[(pct, 'paths')]} paths)" for pct in SAMPLES]
    lines.append(f"persistent  {times['persistent'] * 1000:>10.1f} ms  "
                 f"(+{100 * (times['persistent'] / times[99] - 1):.0f}% vs "
                 "99% transient; paper: +27%)")
    report(f"Figure 9 — transient DataGuide aggregation, {N} documents",
           lines)
    record("figure9", "n_documents", N)
    for pct in SAMPLES:
        record("figure9", f"sample_{pct}_ms", times[pct] * 1000)
    record("figure9", "persistent_ms", times["persistent"] * 1000)
    _assert_shape(times)
    return times


def _assert_shape(times):
    # time grows monotonically and roughly linearly with the sample size
    assert times[25] < times[75]
    assert times[50] < times[99]
    ratio = times[99] / times[25]
    assert 2.0 < ratio < 8.0, f"99%/25% = {ratio:.1f}"
    # the persistent build does strictly more work than a 99% transient
    assert times["persistent"] > times[99]


@pytest.mark.parametrize("pct", SAMPLES)
def test_figure9_sampled_aggregation(benchmark, texts, timing_table, pct):
    guide = benchmark(json_dataguide_agg, texts, sample_percent=pct, seed=42)
    assert len(guide) > 0


def test_figure9_persistent_creation(benchmark, texts, timing_table):
    def build():
        pdg = PersistentDataGuide()
        for text in texts:
            pdg.on_document(loads(text))
        pdg.compute_statistics()
        return pdg
    pdg = benchmark(build)
    assert pdg.documents_seen == N


def test_figure9_shape(timing_table):
    _assert_shape(timing_table)
