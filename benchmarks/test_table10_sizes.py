"""Table 10 — average document size under JSON / BSON / OSON encodings.

Regenerates the per-collection size rows.  The paper's shape:

* small/medium documents: the three encodings are within a small factor
  of each other (OSON sometimes slightly larger, sometimes smaller);
* large repetitive documents (TwitterMsgArchive, SensorData): OSON is
  substantially smaller than JSON text because repeated field names are
  stored once in the dictionary segment.
"""

import pytest

from benchmarks.conftest import report, scaled
from repro.core.oson.stats import size_stats
from repro.workloads.collections import COLLECTION_NAMES, collection

SMALL_SCALE = 0.3


@pytest.fixture(scope="module")
def collections():
    return {name: collection(name, SMALL_SCALE) for name in COLLECTION_NAMES}


@pytest.fixture(scope="module")
def size_rows(collections):
    rows = {}
    for name, docs in collections.items():
        rows[name] = size_stats(docs)
    lines = [f"{'collection':<20} {'JSON':>10} {'BSON':>10} {'OSON':>10} "
             f"{'OSON/JSON':>10}"]
    for name, stats in rows.items():
        lines.append(
            f"{name:<20} {stats.avg_json:>10.0f} {stats.avg_bson:>10.0f} "
            f"{stats.avg_oson:>10.0f} {stats.avg_oson / stats.avg_json:>10.2f}")
    report("Table 10 — avg bytes/document by encoding", lines)
    return rows


@pytest.mark.parametrize("name", COLLECTION_NAMES)
def test_table10_encode_collection(benchmark, collections, size_rows, name):
    """Time the three-way encoding of one collection (the measured work
    behind the Table 10 row) and assert the paper's size shape."""
    docs = collections[name]
    stats = benchmark(size_stats, docs)
    assert stats.count == len(docs)
    ratio = stats.avg_oson / stats.avg_json
    if name in ("TwitterMsgArchive", "SensorData"):
        # large repetitive documents: OSON clearly smaller than text
        assert ratio < 0.85, f"{name}: OSON/JSON = {ratio:.2f}"
    else:
        # small documents: rough parity (paper range ~0.88-1.23)
        assert 0.4 < ratio < 1.8, f"{name}: OSON/JSON = {ratio:.2f}"
    # BSON is in the same size regime as JSON text everywhere
    assert 0.5 < stats.avg_bson / stats.avg_json < 2.2
