"""Scatter-gather scan+group-by over hash shards vs the single stream.

ISSUE 8's perf claim: with N shards on an N-core machine, a scan +
filter + group-by fans out to one worker per shard and gathers partial
aggregate states, beating the unsharded single-stream plan.  Python
threads share the GIL, so the parallel gate is measured over **pinned
worker processes** — one long-lived process per shard, each holding its
shard's rows (a shard directory is itself a plain
:class:`~repro.storage.store.CollectionStore`), computing
``partial_group_by`` locally and shipping serialized partial states
through :func:`~repro.engine.executor.serialize_group_partials` /
``fold_serialized_partials`` — exactly the gather contract the
in-process scatter executor uses.

Measured everywhere; the >= 2x acceptance gate only asserts on runners
with >= 4 cores (a single-core box cannot parallelize anything).  The
partition-pruning assertion (>= 1 query with ``shards_pruned > 0``
read out of EXPLAIN ANALYZE) runs everywhere.

Output: ``BENCH_results.json`` under ``shard`` and standalone in
``BENCH_shard.json`` (CI artifact, ``REPRO_BENCH_SHARD`` overrides the
path)."""

import json
import multiprocessing
import os
import re
import sys
import time

import pytest

from benchmarks.conftest import record, report, scaled
from repro.engine import CLOB, Column, Database, NUMBER, Query, executor, expr

N = scaled(20000, minimum=4000)
SHARDS = 4
REPS = 5
GATE_FACTOR = 2.0
GATE_MIN_CPUS = 4
PIVOT = 500  # ~50% selectivity over v in [0, 1000)

REGIONS = [f"r{index:02d}" for index in range(16)]

SHARD_RESULTS_PATH = os.environ.get("REPRO_BENCH_SHARD",
                                    "BENCH_shard.json")


def make_rows(count):
    return [{"k": REGIONS[index % len(REGIONS)],
             "v": (index * 37) % 1000,
             "q": index % 7}
            for index in range(count)]


def pipeline_spec():
    """The benchmark query, as executor inputs: WHERE v >= pivot
    GROUP BY k AGG SUM(v), COUNT(*) — shared verbatim by the baseline,
    the worker processes, and the engine-level runs."""
    keys = [executor.normalize_output("k")]
    aggregates = [("total", expr.SUM(expr.Col("v"))), ("n", expr.COUNT())]
    return keys, aggregates


def predicate(pivot):
    return expr.Col("v") >= expr.Literal(pivot)


def single_stream(rows, pivot):
    keys, aggregates = pipeline_spec()
    filtered = executor.filter_rows_morsel(iter(rows), predicate(pivot))
    return list(executor.group_by(filtered, keys, aggregates))


# -- pinned shard workers ---------------------------------------------------


def _shard_worker(conn, directory):
    """One process, one shard: open the shard's store once, keep its
    rows hot, answer each pivot with serialized partial group states."""
    from repro.storage.store import CollectionStore
    store = CollectionStore.open(directory, verify_documents=False)
    rows = [document for _, document in store.documents()]
    store.close()
    conn.send(len(rows))
    keys, aggregates = pipeline_spec()
    while True:
        pivot = conn.recv()
        if pivot is None:
            break
        filtered = executor.filter_rows_morsel(iter(rows),
                                               predicate(pivot))
        groups = executor.partial_group_by(filtered, keys, aggregates,
                                           morsel=True)
        conn.send(executor.serialize_group_partials(groups))
    conn.close()


class ShardWorkerPool:
    """The process-parallel scatter half: pinned workers, one per
    shard, gathered through the serialized-partials contract."""

    def __init__(self, shard_dirs):
        context = multiprocessing.get_context("fork")
        self.pipes = []
        self.workers = []
        for directory in shard_dirs:
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(target=_shard_worker,
                                     args=(child_conn, directory),
                                     daemon=True)
            worker.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.workers.append(worker)
        self.rows_per_shard = [conn.recv() for conn in self.pipes]

    def query(self, pivot):
        for conn in self.pipes:
            conn.send(pivot)
        serialized = [conn.recv() for conn in self.pipes]
        keys, aggregates = pipeline_spec()
        groups = {}
        for partial in serialized:  # shard-index order
            groups = executor.fold_serialized_partials(groups, partial,
                                                       aggregates)
        return list(executor.finalize_groups(groups, keys, aggregates))

    def close(self):
        for conn in self.pipes:
            conn.send(None)
        for worker in self.workers:
            worker.join(timeout=10)


def best_of(callable_, reps=REPS):
    best = None
    for _ in range(reps):
        begin = time.perf_counter()
        callable_()
        elapsed = (time.perf_counter() - begin) * 1000.0
        best = elapsed if best is None else min(best, elapsed)
    return best


def canon(rows):
    return sorted(json.dumps(row, sort_keys=True) for row in rows)


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    base = tmp_path_factory.mktemp("shard_bench")
    rows = make_rows(N)
    columns = [Column("k", CLOB), Column("v", NUMBER),
               Column("q", NUMBER)]
    db = Database()
    flat = db.create_table("flat", columns, durable=str(base / "flat"))
    flat.insert_many([dict(row) for row in rows])
    sharded = db.create_table("sharded", columns,
                              durable=str(base / "sharded"),
                              shards=SHARDS, routing_field="k")
    sharded.insert_many([dict(row) for row in rows])
    yield rows, flat, sharded, base
    flat.close()
    sharded.close()


@pytest.fixture(scope="module")
def measurements(stores):
    rows, flat, sharded, base = stores
    shard_dirs = [str(base / "sharded" / f"shard-{index:02d}")
                  for index in range(SHARDS)]

    results = {"n_rows": N, "shards": SHARDS, "reps": REPS,
               "cpu_count": os.cpu_count(), "pivot": PIVOT}

    # the reference result + the single-stream baseline timing
    reference = single_stream(rows, PIVOT)
    results["unsharded_ms"] = round(
        best_of(lambda: single_stream(rows, PIVOT)), 3)

    # engine-level runs (thread scatter vs volcano chain), for the
    # record: GIL-bound, so no speedup is claimed or gated on them.
    # NB the scatter plan reads snapshot-pinned streams (OSON decode
    # per query); the volcano plan over a durable table scans the live
    # heap — engine_snapshot_stream_ms is the decode-inclusive
    # single-stream number thread scatter should be read against.
    def engine_query(table):
        return (Query(table)
                .where(expr.Col("v") >= PIVOT)
                .group_by(["k"], total=expr.SUM(expr.Col("v")),
                          n=expr.COUNT())
                .rows())

    def snapshot_stream():
        keys, aggregates = pipeline_spec()
        filtered = executor.filter_rows_morsel(flat.snapshot_scan(),
                                               predicate(PIVOT))
        return list(executor.group_by(filtered, keys, aggregates))

    assert canon(engine_query(sharded)) == canon(reference)
    results["engine_unsharded_ms"] = round(
        best_of(lambda: engine_query(flat)), 3)
    results["engine_snapshot_stream_ms"] = round(
        best_of(snapshot_stream), 3)
    results["engine_thread_scatter_ms"] = round(
        best_of(lambda: engine_query(sharded)), 3)

    # the process-parallel scatter (the gated configuration)
    pool = ShardWorkerPool(shard_dirs)
    try:
        assert sum(pool.rows_per_shard) == N
        assert canon(pool.query(PIVOT)) == canon(reference)
        results["process_scatter_ms"] = round(
            best_of(lambda: pool.query(PIVOT)), 3)
    finally:
        pool.close()
    results["speedup"] = round(
        results["unsharded_ms"] / results["process_scatter_ms"], 2)

    # partition pruning, read back out of EXPLAIN ANALYZE
    pruned_query = (Query(sharded)
                    .where(expr.Col("k") == REGIONS[0])
                    .group_by(["k"], total=expr.SUM(expr.Col("v"))))
    analyze_text = pruned_query.explain(analyze=True)
    match = re.search(r"engine\.scatter\.shards_pruned: (\d+)",
                      analyze_text)
    results["explain_analyze_pruned"] = (int(match.group(1)) if match
                                         else 0)
    results["explain_head"] = analyze_text.splitlines()[1]

    payload = {
        "meta": {"gate": {"factor": GATE_FACTOR,
                          "min_cpus": GATE_MIN_CPUS}},
        "scatter_gather": results,
    }
    with open(SHARD_RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nshard results written to {SHARD_RESULTS_PATH}",
          file=sys.stderr)
    record("shard", "scatter_gather", results)
    report(
        f"Scatter-gather scan+group-by, {N} rows, {SHARDS} shards",
        [f"single stream        {results['unsharded_ms']:>10.3f} ms",
         f"process scatter      {results['process_scatter_ms']:>10.3f} ms"
         f"   ({results['speedup']}x)",
         f"engine (volcano)     {results['engine_unsharded_ms']:>10.3f} ms",
         f"engine (snapshot stream) {results['engine_snapshot_stream_ms']:>6.3f} ms",
         f"engine (thread scatter) {results['engine_thread_scatter_ms']:>7.3f} ms",
         f"shards pruned (routing query): "
         f"{results['explain_analyze_pruned']}"])
    return results


class TestScatterGather:
    def test_gate_2x_with_4_shards(self, measurements):
        """The acceptance gate: process scatter-gather >= 2x the
        single stream with 4 shards — multi-core runners only."""
        cpus = os.cpu_count() or 1
        if cpus < GATE_MIN_CPUS:
            pytest.skip(f"scatter gate needs >= {GATE_MIN_CPUS} cores, "
                        f"runner has {cpus}")
        assert measurements["speedup"] >= GATE_FACTOR, (
            f"process scatter only {measurements['speedup']}x the "
            f"single stream ({measurements['process_scatter_ms']}ms vs "
            f"{measurements['unsharded_ms']}ms)")

    def test_pruning_visible_in_explain_analyze(self, measurements):
        """>= 1 query reports shards_pruned > 0 straight from its
        EXPLAIN ANALYZE output (the routing-equality query must skip
        every shard but the literal's home)."""
        assert measurements["explain_analyze_pruned"] == SHARDS - 1
        assert f"pruned={SHARDS - 1}" in measurements["explain_head"]

    def test_workers_cover_every_row_exactly_once(self, measurements):
        assert measurements["n_rows"] == N

    def test_artifact_written(self, measurements):
        with open(SHARD_RESULTS_PATH, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["scatter_gather"]["speedup"] == \
            measurements["speedup"]
