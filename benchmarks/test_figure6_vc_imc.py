"""Figure 6 — Q6/Q7/Q10/Q11: OSON-IMC-MODE vs VC-IMC-MODE.

The paper's shape: the four queries whose predicates/projections touch
only the three IMC-loaded virtual columns ($.str1, $.num RETURNING
NUMBER, $.dyn1 RETURNING NUMBER) run significantly faster against the
columnar vectors than against per-document OSON navigation.
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.imc.json_modes import JsonColumnIMC, OSON_IMC_MODE, VC_IMC_MODE
from repro.jsontext import dumps
from repro.workloads.nobench import NobenchGenerator, NobenchQueries, VC_PATHS

N = scaled(4000)
QUERIES = ["q6", "q7", "q10", "q11"]


@pytest.fixture(scope="module")
def texts():
    return [dumps(d) for d in NobenchGenerator().documents(N)]


def _make(texts, mode, vc_paths=()):
    imc = JsonColumnIMC(mode, vc_paths)
    imc.load_texts(texts)
    imc.populate()
    return NobenchQueries(imc, N)


@pytest.fixture(scope="module")
def oson_queries(texts):
    return _make(texts, OSON_IMC_MODE)


@pytest.fixture(scope="module")
def vc_queries(texts):
    return _make(texts, VC_IMC_MODE, VC_PATHS)


@pytest.fixture(scope="module")
def timing_table(oson_queries, vc_queries):
    times = {}
    for qid in QUERIES:
        oson_result = getattr(oson_queries, qid)()
        vc_result = getattr(vc_queries, qid)()
        if qid == "q11":
            assert sorted(oson_result) == sorted(vc_result)
        else:
            assert oson_result == vc_result
        for label, queries in (("oson-imc", oson_queries),
                               ("vc-imc", vc_queries)):
            start = time.perf_counter()
            getattr(queries, qid)()
            times[(qid, label)] = time.perf_counter() - start
    lines = [f"{'query':<6}{'OSON-IMC ms':>14}{'VC-IMC ms':>12}{'speedup':>10}"]
    for qid in QUERIES:
        o, v = times[(qid, "oson-imc")], times[(qid, "vc-imc")]
        lines.append(f"{qid:<6}{o * 1000:>14.1f}{v * 1000:>12.1f}"
                     f"{o / v:>10.1f}x")
    report(f"Figure 6 — OSON-IMC vs VC-IMC, {N} documents", lines)
    _assert_shape(times)
    return times


def _assert_shape(times):
    """VC-IMC must significantly beat OSON-IMC on the VC-eligible
    selective queries (enforced even under --benchmark-only)."""
    for qid in ("q6", "q7"):
        ratio = times[(qid, "oson-imc")] / times[(qid, "vc-imc")]
        assert ratio > 5.0, f"{qid}: oson/vc = {ratio:.1f}"
    total_oson = sum(times[(q, "oson-imc")] for q in QUERIES)
    total_vc = sum(times[(q, "vc-imc")] for q in QUERIES)
    assert total_vc < total_oson


@pytest.mark.parametrize("mode", ["oson-imc", "vc-imc"])
@pytest.mark.parametrize("qid", QUERIES)
def test_figure6_query(benchmark, oson_queries, vc_queries, timing_table,
                       qid, mode):
    queries = oson_queries if mode == "oson-imc" else vc_queries
    benchmark(getattr(queries, qid))


def test_figure6_shape(timing_table):
    _assert_shape(timing_table)
