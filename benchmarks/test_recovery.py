"""Recovery cost — WAL replay + verified recovery vs cold rebuild.

The durable collection store's pitch (ISSUE 2) is that restart works
from the binary log: replay checksummed OSON records, verify each image
statically, rebuild the DataGuide from the decoded documents.  The
alternative a JSON-text system pays on every cold start is re-parsing
the text corpus and re-encoding it (plus the same DataGuide work).

Shape asserted: **verified recovery is cheaper than a cold rebuild from
JSON text** — scanning frames + ``verify_oson`` + OSON decode undercuts
parse + encode.  Absolute times are laptop-scale; the assertion uses a
best-of-N measurement and a safety margin so scheduler noise cannot
flip it.  Recovery here is *shape-tested, not timed* against the paper:
the paper has no restart experiment, so there is no published number to
reproduce — only the ordering claim is checked.
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.core.dataguide.builder import DataGuideBuilder
from repro.core.oson import encode
from repro.jsontext import dumps, loads
from repro.storage import CollectionStore, MemoryFileSystem
from repro.workloads.nobench import NobenchGenerator

N = scaled(800)
ROUNDS = 3

#: recovery must beat a cold rebuild with this much headroom to spare
#: (measured ~1.4x on the reference corpus; 1.1 absorbs timer noise)
MARGIN = 1.1


@pytest.fixture(scope="module")
def corpus():
    docs = list(NobenchGenerator().homogeneous_documents(N))
    texts = [dumps(d) for d in docs]
    fs = MemoryFileSystem()
    store = CollectionStore.create("db", fs=fs)
    store.insert_many(docs)
    store.checkpoint()
    store.close()
    return docs, texts, fs.durable_state()


def recover_store(durable):
    store = CollectionStore.open("db", fs=durable.durable_state())
    count = len(store)
    store.close()
    return count


def cold_rebuild(texts):
    builder = DataGuideBuilder()
    images = []
    for text in texts:
        document = loads(text)
        images.append(encode(document))
        builder.add(document)
    return len(images)


def best_of(fn, *args):
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn(*args)
        times.append(time.perf_counter() - start)
        assert result == N
    return min(times)


@pytest.fixture(scope="module")
def timing_table(corpus):
    _docs, texts, durable = corpus
    times = {
        "verified recovery (WAL replay)": best_of(recover_store, durable),
        "cold rebuild from JSON text": best_of(cold_rebuild, texts),
    }
    base = times["verified recovery (WAL replay)"]
    lines = [f"{label:<34} {t * 1000:>10.1f} ms  ({t / base:.2f}x)"
             for label, t in times.items()]
    report(f"Recovery — restart cost, {N} NOBENCH documents", lines)
    return times


def test_recovery_beats_cold_rebuild(timing_table):
    recovery = timing_table["verified recovery (WAL replay)"]
    cold = timing_table["cold rebuild from JSON text"]
    assert recovery * MARGIN < cold, (
        f"verified recovery ({recovery * 1000:.1f} ms) is not cheaper "
        f"than a cold rebuild ({cold * 1000:.1f} ms) with a {MARGIN}x "
        f"margin")


def test_recovery_is_correct_not_just_fast(corpus):
    docs, _texts, durable = corpus
    store = CollectionStore.open("db", fs=durable.durable_state())
    assert len(store) == len(docs)
    assert store.recovery.clean
    assert dict(store.documents()) == dict(enumerate(docs))
    store.close()


def test_recovery_benchmark(benchmark, corpus):
    _docs, _texts, durable = corpus
    benchmark.pedantic(recover_store, args=(durable,), rounds=ROUNDS,
                       iterations=1)


def test_cold_rebuild_benchmark(benchmark, corpus):
    _docs, texts, _durable = corpus
    benchmark.pedantic(cold_rebuild, args=(texts,), rounds=ROUNDS,
                       iterations=1)
