"""Table 12 — DataGuide statistics per collection.

For each collection: the number of distinct paths (the $DG row count),
the DMDV column count (root-to-leaf paths) and the DMDV fan-out ratio
(DMDV rows per document).  Paper shape: NOBENCH has ~1000+ paths from its
sparse fields; YCSB is tiny and flat (fan-out 1); the two archives have
enormous fan-out (thousands of detail rows per document).
"""

import pytest

from benchmarks.conftest import report
from repro.core.dataguide import json_dataguide_agg
from repro.core.dataguide.views import build_json_table
from repro.workloads.collections import COLLECTION_NAMES, collection

SMALL_SCALE = 0.25

#: fan-out computation over the full NOBENCH sparse space is expensive and
#: structurally uninformative (1000 one-column-wide NESTED PATHs do not
#: exist — all sparse fields are scalar); keep its guide but skip DMDV
_SKIP_DMDV = set()


@pytest.fixture(scope="module")
def collections():
    return {name: collection(name, SMALL_SCALE) for name in COLLECTION_NAMES}


@pytest.fixture(scope="module")
def guide_rows(collections):
    rows = {}
    for name, docs in collections.items():
        guide = json_dataguide_agg(docs)
        if name in _SKIP_DMDV:
            fan_out = None
        else:
            jt = build_json_table(guide)
            total_rows = sum(len(jt.rows(doc)) for doc in docs)
            fan_out = total_rows / len(docs)
        rows[name] = (len(guide), guide.dmdv_column_count(), fan_out)
    lines = [f"{'collection':<20} {'paths':>8} {'dmdv cols':>10} "
             f"{'fan-out':>10}"]
    for name, (paths, cols, fan_out) in rows.items():
        fo = f"{fan_out:.1f}" if fan_out is not None else "-"
        lines.append(f"{name:<20} {paths:>8} {cols:>10} {fo:>10}")
    report("Table 12 — DataGuide statistics", lines)
    return rows


@pytest.mark.parametrize("name", COLLECTION_NAMES)
def test_table12_dataguide_stats(benchmark, collections, guide_rows, name):
    docs = collections[name]
    guide = benchmark(json_dataguide_agg, docs)
    paths, cols, fan_out = guide_rows[name]
    assert len(guide) == paths
    # structural invariants for every collection
    assert cols <= paths  # leaves are a subset of all distinct paths
    if name == "YCSBDoc":
        assert fan_out == 1.0           # flat documents (paper: 1)
        assert paths <= 15              # paper: 10
    elif name == "NOBENCHDoc":
        # sparse fields dominate the column count (paper: 1000 of 1011);
        # at reduced scale each doc contributes ~10 distinct sparse fields
        from repro.workloads.nobench import SPARSE_PER_DOCUMENT
        assert cols > len(docs) * SPARSE_PER_DOCUMENT * 0.5
    elif name in ("TwitterMsgArchive", "SensorData"):
        assert fan_out > 300            # paper: 5405 / 32100
    else:
        assert 1.0 <= fan_out < 60     # master-detail documents
