"""Figure 5 — NOBENCH Q1-Q11: TEXT-MODE vs OSON-IMC-MODE.

The paper's shape: evaluating the 11 NOBENCH queries over in-memory OSON
is dramatically faster than over cached JSON text, because TEXT mode must
re-tokenize every document per query while OSON jump-navigates.
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.imc.json_modes import JsonColumnIMC, OSON_IMC_MODE, TEXT_MODE
from repro.jsontext import dumps
from repro.workloads.nobench import NobenchGenerator, NobenchQueries

N = scaled(1200)
QUERIES = ["q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10",
           "q11"]


@pytest.fixture(scope="module")
def texts():
    return [dumps(d) for d in NobenchGenerator().documents(N)]


def _make(texts, mode):
    imc = JsonColumnIMC(mode)
    imc.load_texts(texts)
    imc.populate()
    return NobenchQueries(imc, N)


@pytest.fixture(scope="module")
def text_queries(texts):
    return _make(texts, TEXT_MODE)


@pytest.fixture(scope="module")
def oson_queries(texts):
    return _make(texts, OSON_IMC_MODE)


@pytest.fixture(scope="module")
def timing_table(text_queries, oson_queries):
    times = {}
    for qid in QUERIES:
        for label, queries in (("text", text_queries),
                               ("oson-imc", oson_queries)):
            start = time.perf_counter()
            result = getattr(queries, qid)()
            times[(qid, label)] = time.perf_counter() - start
            times[(qid, label, "size")] = len(result)
        assert times[(qid, "text", "size")] == times[(qid, "oson-imc", "size")]
    lines = [f"{'query':<6}{'TEXT ms':>12}{'OSON-IMC ms':>14}{'speedup':>10}"]
    total_text = total_oson = 0.0
    for qid in QUERIES:
        t, o = times[(qid, "text")], times[(qid, "oson-imc")]
        total_text += t
        total_oson += o
        lines.append(f"{qid:<6}{t * 1000:>12.1f}{o * 1000:>14.1f}"
                     f"{t / o:>10.1f}x")
    lines.append(f"{'total':<6}{total_text * 1000:>12.1f}"
                 f"{total_oson * 1000:>14.1f}{total_text / total_oson:>10.1f}x")
    report(f"Figure 5 — NOBENCH TEXT vs OSON-IMC, {N} documents", lines)
    _assert_shape(times)
    return times


def _assert_shape(times):
    """OSON-IMC must beat TEXT overall by a wide margin and on nearly
    every query individually (enforced even under --benchmark-only)."""
    total_text = sum(times[(q, "text")] for q in QUERIES)
    total_oson = sum(times[(q, "oson-imc")] for q in QUERIES)
    assert total_text / total_oson > 2.5
    wins = sum(times[(q, "text")] > times[(q, "oson-imc")] for q in QUERIES)
    assert wins >= 9


@pytest.mark.parametrize("mode", ["text", "oson-imc"])
@pytest.mark.parametrize("qid", QUERIES)
def test_figure5_query(benchmark, text_queries, oson_queries, timing_table,
                       qid, mode):
    queries = text_queries if mode == "text" else oson_queries
    benchmark(getattr(queries, qid))


def test_figure5_shape(timing_table):
    _assert_shape(timing_table)


def test_figure5_populate_cost(benchmark, texts):
    """The one-time OSON() population cost (implicit virtual column of
    section 5.2.2) — priced but excluded from the per-query numbers."""
    def populate():
        imc = JsonColumnIMC(OSON_IMC_MODE)
        imc.load_texts(texts)
        imc.populate()
        return imc
    imc = benchmark(populate)
    assert len(imc) == N
