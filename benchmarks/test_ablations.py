"""Ablation benchmarks for the design decisions of DESIGN.md §4.

Each ablation disables one OSON/engine design choice and measures the
same work both ways, verifying the choice actually pays:

1. sorted-field-id binary search  vs  linear name scan over object items;
2. single-row look-back resolver  vs  per-document dictionary search;
3. lazy offset DOM evaluation     vs  materialize-to-dict then evaluate;
4. JSON_EXISTS predicate pushdown vs  expand-then-filter;
5. shared-dictionary set encoding vs  self-contained documents (memory).
"""

import time

import pytest

from benchmarks.conftest import report, scaled
from repro.core.oson import (
    CompiledFieldName,
    FieldIdResolver,
    OsonDocument,
    SharedDictionaryStore,
    encode,
)
from repro.core.oson.hashing import field_name_hash
from repro.sqljson.adapters import DictAdapter, OsonAdapter
from repro.sqljson.operators import json_value
from repro.sqljson.path.evaluator import PathEvaluator
from repro.sqljson.path.parser import compile_path
from repro.workloads.purchase_orders import PurchaseOrderGenerator

N_DOCS = scaled(400)


@pytest.fixture(scope="module")
def documents():
    return list(PurchaseOrderGenerator().documents(N_DOCS))


@pytest.fixture(scope="module")
def oson_docs(documents):
    return [OsonDocument(encode(d)) for d in documents]


# -- 1. binary search vs linear scan ---------------------------------------


def _lookup_binary(doc: OsonDocument, node: int, field_id: int):
    return doc.get_field_value(node, field_id)


def _lookup_linear(doc: OsonDocument, node: int, name: str):
    """The ablated lookup: walk the child array comparing names (what a
    format without sorted integer ids — e.g. BSON — must do)."""
    for field_id, child in doc.object_items(node):
        if doc.field_name(field_id) == name:
            return child
    return None


@pytest.fixture(scope="module")
def wide_object():
    doc = OsonDocument(encode(
        {f"field_{i:03d}": i for i in range(200)}))
    return doc


def test_ablation1_binary_search(benchmark, wide_object):
    doc = wide_object
    targets = [(doc.field_id(f"field_{i:03d}"), f"field_{i:03d}")
               for i in range(0, 200, 7)]

    def run():
        return [_lookup_binary(doc, doc.root, fid) for fid, _n in targets]

    results = benchmark(run)
    assert all(r is not None for r in results)


def test_ablation1_linear_scan(benchmark, wide_object):
    doc = wide_object
    names = [f"field_{i:03d}" for i in range(0, 200, 7)]

    def run():
        return [_lookup_linear(doc, doc.root, n) for n in names]

    results = benchmark(run)
    assert all(r is not None for r in results)


def test_ablation1_shape(benchmark, wide_object):
    doc = wide_object
    names = [f"field_{i:03d}" for i in range(200)]
    ids = [doc.field_id(n) for n in names]
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    for _ in range(20):
        for fid in ids:
            _lookup_binary(doc, doc.root, fid)
    binary = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(20):
        for name in names:
            _lookup_linear(doc, doc.root, name)
    linear = time.perf_counter() - start
    report("Ablation 1 — field lookup on a 200-field object",
           [f"binary search: {binary * 1000:.1f} ms",
            f"linear scan:   {linear * 1000:.1f} ms "
            f"({linear / binary:.1f}x slower)"])
    assert binary < linear


# -- 2. look-back resolver vs per-document search ----------------------------


def test_ablation2_with_lookback(benchmark, oson_docs):
    compiled = CompiledFieldName("purchaseOrder")

    def run():
        resolver = FieldIdResolver()
        return [resolver.resolve(d, compiled) for d in oson_docs]

    ids = benchmark(run)
    assert all(i is not None for i in ids)


def test_ablation2_without_lookback(benchmark, oson_docs):
    name = "purchaseOrder"
    name_hash = field_name_hash(name)

    def run():
        return [d.field_id(name, name_hash) for d in oson_docs]

    ids = benchmark(run)
    assert all(i is not None for i in ids)


def test_ablation2_lookback_hits(benchmark, oson_docs):
    """On a homogeneous collection the look-back skips nearly every
    binary search."""
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    resolver = FieldIdResolver()
    compiled = CompiledFieldName("purchaseOrder")
    for doc in oson_docs:
        resolver.resolve(doc, compiled)
    hit_rate = resolver.lookback_hits / resolver.lookups
    report("Ablation 2 — single-row look-back",
           [f"lookups: {resolver.lookups}, look-back hits: "
            f"{resolver.lookback_hits} ({100 * hit_rate:.1f}%)"])
    assert hit_rate > 0.95


# -- 3. lazy DOM vs materialize-then-evaluate ----------------------------------

_PATH = "$.purchaseOrder.items[0].partno"


def test_ablation3_lazy_dom(benchmark, oson_docs):
    def run():
        return [json_value(d, _PATH) for d in oson_docs]

    values = benchmark(run)
    assert sum(v is not None for v in values) == len(values)


def test_ablation3_materialize_first(benchmark, oson_docs):
    evaluator = PathEvaluator(compile_path(_PATH))

    def run():
        out = []
        for doc in oson_docs:
            materialized = doc.materialize()  # the ablated full decode
            nodes = evaluator.values(DictAdapter(materialized))
            out.append(nodes[0] if nodes else None)
        return out

    values = benchmark(run)
    assert sum(v is not None for v in values) == len(values)


def test_ablation3_shape(benchmark, oson_docs):
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    lazy = [json_value(d, _PATH) for d in oson_docs]
    lazy_time = time.perf_counter() - start
    evaluator = PathEvaluator(compile_path(_PATH))
    start = time.perf_counter()
    materialized = [
        (evaluator.values(DictAdapter(d.materialize())) or [None])[0]
        for d in oson_docs]
    full_time = time.perf_counter() - start
    assert lazy == materialized
    report("Ablation 3 — lazy DOM vs materialize-then-evaluate",
           [f"lazy offset DOM:   {lazy_time * 1000:.1f} ms",
            f"materialize first: {full_time * 1000:.1f} ms "
            f"({full_time / lazy_time:.1f}x slower)"])
    assert lazy_time < full_time


# -- 4. predicate pushdown on/off ------------------------------------------------


@pytest.fixture(scope="module")
def dmdv_view(documents):
    from repro.engine import Column, Database, NUMBER
    from repro.engine.types import BLOB
    from repro.workloads.purchase_orders import build_po_views
    db = Database()
    table = db.create_table("po", [Column("did", NUMBER),
                                   Column("jdoc", BLOB)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": encode(doc)})
    _mv, dmdv = build_po_views(db, table, "jdoc", "po")
    return dmdv, documents[len(documents) // 2]["purchaseOrder"]["items"][0][
        "partno"]


def test_ablation4_with_pushdown(benchmark, dmdv_view):
    from repro.engine import Query, expr
    view, partno = dmdv_view

    def run():
        return Query(view).where(expr.Col("partno") == partno).rows()

    rows = benchmark(run)
    assert len(rows) >= 1


def test_ablation4_without_pushdown(benchmark, dmdv_view):
    view, partno = dmdv_view

    def run():
        # the ablated plan: expand every document, then filter rows
        return [r for r in view.scan() if r["partno"] == partno]

    rows = benchmark(run)
    assert len(rows) >= 1


def test_ablation4_shape(benchmark, dmdv_view):
    from repro.engine import Query, expr
    view, partno = dmdv_view
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    pushed = Query(view).where(expr.Col("partno") == partno).rows()
    pushed_time = time.perf_counter() - start
    start = time.perf_counter()
    scanned = [r for r in view.scan() if r["partno"] == partno]
    scan_time = time.perf_counter() - start
    assert pushed == scanned
    report("Ablation 4 — JSON_EXISTS predicate pushdown",
           [f"pushdown:           {pushed_time * 1000:.1f} ms",
            f"expand-then-filter: {scan_time * 1000:.1f} ms "
            f"({scan_time / pushed_time:.1f}x slower)"])
    assert pushed_time < scan_time


# -- 5. set encoding memory ---------------------------------------------------------


def test_ablation5_set_encoding_memory(benchmark, documents):
    def build():
        store = SharedDictionaryStore()
        for doc in documents:
            store.add(doc)
        return store

    store = benchmark(build)
    shared = store.memory_bytes()
    self_contained = SharedDictionaryStore.self_contained_bytes(documents)
    report("Ablation 5 — set encoding (shared dictionary) memory",
           [f"self-contained: {self_contained:,} B",
            f"shared dict:    {shared:,} B "
            f"({100 * (1 - shared / self_contained):.0f}% saved)"])
    assert shared < self_contained
