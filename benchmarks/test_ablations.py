"""Ablation benchmarks for the design decisions of DESIGN.md §4.

Each ablation disables one OSON/engine design choice and measures the
same work both ways, verifying the choice actually pays:

1. sorted-field-id binary search  vs  linear name scan over object items;
2. single-row look-back resolver  vs  per-document dictionary search;
3. lazy offset DOM evaluation     vs  materialize-to-dict then evaluate;
4. JSON_EXISTS predicate pushdown vs  expand-then-filter;
5. shared-dictionary set encoding vs  self-contained documents (memory);
6. the full PR-3 fast path (navigation VM + caches + morsel batching)
   vs the pre-PR configuration (DOM evaluation, cold caches, row mode).
"""

import time

import pytest

from benchmarks.conftest import SCALE, record, report, scaled
from repro.core.oson import (
    CompiledFieldName,
    FieldIdResolver,
    OsonDocument,
    SharedDictionaryStore,
    encode,
)
from repro.core.oson.hashing import field_name_hash
from repro.sqljson.adapters import DictAdapter
from repro.sqljson.operators import json_value
from repro.sqljson.path.evaluator import PathEvaluator
from repro.sqljson.path.parser import compile_path
from repro.workloads.purchase_orders import PurchaseOrderGenerator

N_DOCS = scaled(400)


@pytest.fixture(scope="module")
def documents():
    return list(PurchaseOrderGenerator().documents(N_DOCS))


@pytest.fixture(scope="module")
def oson_docs(documents):
    return [OsonDocument(encode(d)) for d in documents]


# -- 1. binary search vs linear scan ---------------------------------------


def _lookup_binary(doc: OsonDocument, node: int, field_id: int):
    return doc.get_field_value(node, field_id)


def _lookup_linear(doc: OsonDocument, node: int, name: str):
    """The ablated lookup: walk the child array comparing names (what a
    format without sorted integer ids — e.g. BSON — must do)."""
    for field_id, child in doc.object_items(node):
        if doc.field_name(field_id) == name:
            return child
    return None


@pytest.fixture(scope="module")
def wide_object():
    doc = OsonDocument(encode(
        {f"field_{i:03d}": i for i in range(200)}))
    return doc


def test_ablation1_binary_search(benchmark, wide_object):
    doc = wide_object
    targets = [(doc.field_id(f"field_{i:03d}"), f"field_{i:03d}")
               for i in range(0, 200, 7)]

    def run():
        return [_lookup_binary(doc, doc.root, fid) for fid, _n in targets]

    results = benchmark(run)
    assert all(r is not None for r in results)


def test_ablation1_linear_scan(benchmark, wide_object):
    doc = wide_object
    names = [f"field_{i:03d}" for i in range(0, 200, 7)]

    def run():
        return [_lookup_linear(doc, doc.root, n) for n in names]

    results = benchmark(run)
    assert all(r is not None for r in results)


def test_ablation1_shape(benchmark, wide_object):
    doc = wide_object
    names = [f"field_{i:03d}" for i in range(200)]
    ids = [doc.field_id(n) for n in names]
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    for _ in range(20):
        for fid in ids:
            _lookup_binary(doc, doc.root, fid)
    binary = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(20):
        for name in names:
            _lookup_linear(doc, doc.root, name)
    linear = time.perf_counter() - start
    report("Ablation 1 — field lookup on a 200-field object",
           [f"binary search: {binary * 1000:.1f} ms",
            f"linear scan:   {linear * 1000:.1f} ms "
            f"({linear / binary:.1f}x slower)"])
    record("ablation1", "binary_search_ms", binary * 1000)
    record("ablation1", "linear_scan_ms", linear * 1000)
    assert binary < linear


# -- 2. look-back resolver vs per-document search ----------------------------


def test_ablation2_with_lookback(benchmark, oson_docs):
    compiled = CompiledFieldName("purchaseOrder")

    def run():
        resolver = FieldIdResolver()
        return [resolver.resolve(d, compiled) for d in oson_docs]

    ids = benchmark(run)
    assert all(i is not None for i in ids)


def test_ablation2_without_lookback(benchmark, oson_docs):
    name = "purchaseOrder"
    name_hash = field_name_hash(name)

    def run():
        return [d.field_id(name, name_hash) for d in oson_docs]

    ids = benchmark(run)
    assert all(i is not None for i in ids)


def test_ablation2_lookback_hits(benchmark, oson_docs):
    """On a homogeneous collection the look-back skips nearly every
    binary search."""
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    resolver = FieldIdResolver()
    compiled = CompiledFieldName("purchaseOrder")
    for doc in oson_docs:
        resolver.resolve(doc, compiled)
    hit_rate = resolver.lookback_hits / resolver.lookups
    report("Ablation 2 — single-row look-back",
           [f"lookups: {resolver.lookups}, look-back hits: "
            f"{resolver.lookback_hits} ({100 * hit_rate:.1f}%)"])
    record("ablation2", "lookback_hit_rate", hit_rate)
    assert hit_rate > 0.95


# -- 3. lazy DOM vs materialize-then-evaluate ----------------------------------

_PATH = "$.purchaseOrder.items[0].partno"


def test_ablation3_lazy_dom(benchmark, oson_docs):
    def run():
        return [json_value(d, _PATH) for d in oson_docs]

    values = benchmark(run)
    assert sum(v is not None for v in values) == len(values)


def test_ablation3_materialize_first(benchmark, oson_docs):
    evaluator = PathEvaluator(compile_path(_PATH))

    def run():
        out = []
        for doc in oson_docs:
            materialized = doc.materialize()  # the ablated full decode
            nodes = evaluator.values(DictAdapter(materialized))
            out.append(nodes[0] if nodes else None)
        return out

    values = benchmark(run)
    assert sum(v is not None for v in values) == len(values)


def test_ablation3_shape(benchmark, oson_docs):
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    lazy = [json_value(d, _PATH) for d in oson_docs]
    lazy_time = time.perf_counter() - start
    evaluator = PathEvaluator(compile_path(_PATH))
    start = time.perf_counter()
    materialized = [
        (evaluator.values(DictAdapter(d.materialize())) or [None])[0]
        for d in oson_docs]
    full_time = time.perf_counter() - start
    assert lazy == materialized
    report("Ablation 3 — lazy DOM vs materialize-then-evaluate",
           [f"lazy offset DOM:   {lazy_time * 1000:.1f} ms",
            f"materialize first: {full_time * 1000:.1f} ms "
            f"({full_time / lazy_time:.1f}x slower)"])
    record("ablation3", "lazy_dom_ms", lazy_time * 1000)
    record("ablation3", "materialize_first_ms", full_time * 1000)
    assert lazy_time < full_time


# -- 4. predicate pushdown on/off ------------------------------------------------


@pytest.fixture(scope="module")
def dmdv_view(documents):
    from repro.engine import Column, Database, NUMBER
    from repro.engine.types import BLOB
    from repro.workloads.purchase_orders import build_po_views
    db = Database()
    table = db.create_table("po", [Column("did", NUMBER),
                                   Column("jdoc", BLOB)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": encode(doc)})
    _mv, dmdv = build_po_views(db, table, "jdoc", "po")
    return dmdv, documents[len(documents) // 2]["purchaseOrder"]["items"][0][
        "partno"]


@pytest.fixture
def no_row_cache():
    """Ablation 4 measures pushdown vs expand-then-filter; the DMDV row
    cache would serve both sides and hide the effect, so it sits out."""
    from repro.core.counters import restore_caches_enabled, set_caches_enabled
    previous = set_caches_enabled(False, names=["sqljson.jsontable_rows"])
    yield
    restore_caches_enabled(previous)


def test_ablation4_with_pushdown(benchmark, dmdv_view, no_row_cache):
    from repro.engine import Query, expr
    view, partno = dmdv_view

    def run():
        return Query(view).where(expr.Col("partno") == partno).rows()

    rows = benchmark(run)
    assert len(rows) >= 1


def test_ablation4_without_pushdown(benchmark, dmdv_view, no_row_cache):
    view, partno = dmdv_view

    def run():
        # the ablated plan: expand every document, then filter rows
        return [r for r in view.scan() if r["partno"] == partno]

    rows = benchmark(run)
    assert len(rows) >= 1


def test_ablation4_shape(benchmark, dmdv_view, no_row_cache):
    from repro.engine import Query, expr
    view, partno = dmdv_view
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing
    start = time.perf_counter()
    pushed = Query(view).where(expr.Col("partno") == partno).rows()
    pushed_time = time.perf_counter() - start
    start = time.perf_counter()
    scanned = [r for r in view.scan() if r["partno"] == partno]
    scan_time = time.perf_counter() - start
    assert pushed == scanned
    report("Ablation 4 — JSON_EXISTS predicate pushdown",
           [f"pushdown:           {pushed_time * 1000:.1f} ms",
            f"expand-then-filter: {scan_time * 1000:.1f} ms "
            f"({scan_time / pushed_time:.1f}x slower)"])
    record("ablation4", "pushdown_ms", pushed_time * 1000)
    record("ablation4", "expand_then_filter_ms", scan_time * 1000)
    assert pushed_time < scan_time


# -- 5. set encoding memory ---------------------------------------------------------


def test_ablation5_set_encoding_memory(benchmark, documents):
    def build():
        store = SharedDictionaryStore()
        for doc in documents:
            store.add(doc)
        return store

    store = benchmark(build)
    shared = store.memory_bytes()
    self_contained = SharedDictionaryStore.self_contained_bytes(documents)
    report("Ablation 5 — set encoding (shared dictionary) memory",
           [f"self-contained: {self_contained:,} B",
            f"shared dict:    {shared:,} B "
            f"({100 * (1 - shared / self_contained):.0f}% saved)"])
    record("ablation5", "self_contained_bytes", self_contained)
    record("ablation5", "shared_dict_bytes", shared)
    assert shared < self_contained


# -- 6. PR-3 fast path: navigation VM + caches + morsel execution -------------


def _run_olap(view, partno, partnos, mode):
    """A Figure-3-style OLAP round over the item DMDV: filtered group-by
    (q3 shape), IN-list projection (q5 shape), and a grouped SUM (q7
    shape)."""
    from repro.engine import Query, expr
    q3 = (Query(view).mode(mode)
          .where(expr.Col("partno") == partno)
          .group_by(["costcenter"], n=expr.COUNT())
          .rows())
    q5 = (Query(view).mode(mode)
          .where(expr.Col("partno").in_(partnos))
          .select("reference", "itemno", "partno", "description")
          .rows())
    q7 = (Query(view).mode(mode)
          .group_by(["costcenter"], n=expr.COUNT(),
                    total=expr.SUM(expr.Col("quantity")))
          .rows())
    return q3, q5, q7


#: the caches the pre-PR engine did not have; the path-parse cache stays
#: enabled in the ablated run because the seed engine already memoized
#: path compilation
_PR3_CACHES = ["oson.document", "oson.dictionary_intern",
               "sqljson.oson_adapter", "sqljson.jsontable_rows"]

ROUNDS = 3


def _ablation6_setup(dmdv_view, documents):
    view, partno = dmdv_view
    items = documents[0]["purchaseOrder"]["items"]
    partnos = sorted({item["partno"] for item in items})[:3] + [partno]
    return view, partno, partnos


def test_ablation6_fast_path(benchmark, dmdv_view, documents):
    view, partno, partnos = _ablation6_setup(dmdv_view, documents)
    results = benchmark(_run_olap, view, partno, partnos, "morsel")
    assert all(len(part) >= 1 for part in results)


def test_ablation6_ablated(benchmark, dmdv_view, documents):
    from repro.core.counters import restore_caches_enabled, set_caches_enabled
    from repro.core.oson import set_navigation_enabled
    view, partno, partnos = _ablation6_setup(dmdv_view, documents)
    previous = set_caches_enabled(False, names=_PR3_CACHES)
    set_navigation_enabled(False)
    try:
        results = benchmark(_run_olap, view, partno, partnos, "row")
    finally:
        set_navigation_enabled(True)
        restore_caches_enabled(previous)
    assert all(len(part) >= 1 for part in results)


def test_ablation6_shape(benchmark, dmdv_view, documents):
    """The PR's acceptance gate: the full fast path (partial-decode
    navigation + interned dictionaries/documents + morsel batching) must
    beat the pre-PR configuration by a clear margin on an OLAP round."""
    from repro.core.counters import (
        counters_for,
        restore_caches_enabled,
        set_caches_enabled,
    )
    from repro.core.oson import set_navigation_enabled
    view, partno, partnos = _ablation6_setup(dmdv_view, documents)
    benchmark.pedantic(lambda: None, rounds=1)  # shape check, not a timing

    _run_olap(view, partno, partnos, "morsel")  # warm caches / dispatch
    start = time.perf_counter()
    for _ in range(ROUNDS):
        fast = _run_olap(view, partno, partnos, "morsel")
    fast_time = time.perf_counter() - start

    previous = set_caches_enabled(False, names=_PR3_CACHES)
    set_navigation_enabled(False)
    try:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            slow = _run_olap(view, partno, partnos, "row")
        slow_time = time.perf_counter() - start
    finally:
        set_navigation_enabled(True)
        restore_caches_enabled(previous)

    assert fast == slow  # byte-identical results, only the speed differs
    ratio = slow_time / fast_time
    filter_hits = counters_for("engine.morsel_filter").hits
    report("Ablation 6 — PR-3 fast path vs pre-PR configuration",
           [f"fast (nav + caches + morsel): {fast_time * 1000:.1f} ms",
            f"ablated (DOM + cold + row):   {slow_time * 1000:.1f} ms "
            f"({ratio:.1f}x slower)",
            f"morsel filter vector batches: {filter_hits}"])
    record("ablation6", "fast_ms", fast_time * 1000)
    record("ablation6", "ablated_ms", slow_time * 1000)
    record("ablation6", "speedup", ratio)
    record("ablation6", "rounds", ROUNDS)
    # margin-asserted acceptance gate; tiny CI scales only get a weak gate
    # because fixed per-query overhead dominates sub-millisecond scans
    floor = 3.0 if SCALE >= 1.0 else 1.2
    assert ratio > floor, f"fast path speedup {ratio:.2f}x <= {floor}x"


