"""The chaos kill-switch gate: fault points are ~free when chaos is off.

Every shard scan, per-document read, commit, and probe now passes a
``chaos.fault_point(...)`` call.  That is only acceptable in the
Figure 3 hot paths if the *disabled* path (the default — no plan
installed) stays a single attribute read plus a ``None`` check.  Two
measurements back that claim:

* a microbenchmark of the disabled ``fault_point`` call itself;
* a projection of that per-call cost onto the fault-point call sites a
  sharded query pass actually executes (one ``shard.scan`` per shard
  plus one ``shard.read`` per document, times a 5x safety margin),
  asserted under 2% of the measured pass wall time.
"""

import time

from benchmarks.conftest import record, scaled
from repro.engine import CLOB, Column, Database, NUMBER
from repro.jsontext import dumps
from repro.storage import chaos
from repro.storage.files import MemoryFileSystem
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
)

N = scaled(120)
SHARDS = 4

#: iterations for the disabled fault-point microbenchmark
CALLS = 50_000

#: the asserted gate: projected chaos-off cost / measured pass time
GATE = 0.02


def _best_of(measure, repeats=3):
    return min(measure() for _ in range(repeats))


def _per_call_disabled():
    def once():
        start = time.perf_counter()
        for _ in range(CALLS):
            chaos.fault_point("shard.read", shard=1)
        return (time.perf_counter() - start) / CALLS
    return _best_of(once)


def test_disabled_fault_point_overhead_under_gate():
    assert chaos.installed() is None  # off is the benchmark default

    documents = list(PurchaseOrderGenerator().documents(N))
    fs = MemoryFileSystem()
    db = Database()
    table = db.create_table(
        "po", [Column("did", NUMBER), Column("jdoc", CLOB)],
        durable="/po", fs=fs, shards=SHARDS, routing_field="did")
    table.insert_many([{"did": i, "jdoc": dumps(doc)}
                       for i, doc in enumerate(documents)])
    mv, dmdv = build_po_views(db, table, "jdoc", "chaos_bench")
    queries = PoOlapQueries(mv, dmdv)
    params = PoQueryParams(documents)

    def run_pass():
        queries.q2()
        queries.q3(params.partno)
        queries.q6(params.partno)
        queries.q7()

    try:
        run_pass()  # warm caches and allocator state
        pass_time = _best_of(lambda: _timed(run_pass))

        per_call = _per_call_disabled()
        # every query scans every shard (scan point) and touches every
        # document (read point); 4 queries, 5x safety margin
        events = 4 * (SHARDS + N)
        projected = events * 5 * per_call
        overhead = projected / pass_time

        record("chaos_overhead", "disabled_fault_point", {
            "per_call_ns": per_call * 1e9,
            "pass_time_ms": pass_time * 1e3,
            "projected_call_sites": events,
            "overhead_fraction": overhead,
            "gate": GATE,
        })
        assert overhead < GATE, (
            f"disabled chaos fault points project to "
            f"{overhead:.2%} of a sharded query pass (gate {GATE:.0%})")
    finally:
        table.close()


def _timed(run_pass):
    start = time.perf_counter()
    run_pass()
    return time.perf_counter() - start
