"""Table 11 — OSON three-segment size ratios per collection.

The paper's shape:

* small business documents spend roughly a third to a half of their bytes
  in the field-id-name dictionary;
* LoanNotes (huge field-name vocabulary, tiny values) is the most
  dictionary-heavy row (62.7% in the paper);
* YCSB (few fields, 100-byte values) is value-dominated (84.4%);
* the two large archives amortize the dictionary to ~0% — SensorData
  becomes tree-navigation-dominated (80.8%).
"""

import pytest

from benchmarks.conftest import report
from repro.core.oson.stats import segment_stats
from repro.workloads.collections import COLLECTION_NAMES, collection

SMALL_SCALE = 0.3


@pytest.fixture(scope="module")
def collections():
    return {name: collection(name, SMALL_SCALE) for name in COLLECTION_NAMES}


@pytest.fixture(scope="module")
def segment_rows(collections):
    rows = {name: segment_stats(docs) for name, docs in collections.items()}
    lines = [f"{'collection':<20} {'dict%':>8} {'tree%':>8} {'values%':>8}"]
    for name, stats in rows.items():
        lines.append(f"{name:<20} {100 * stats.dictionary_ratio:>8.2f} "
                     f"{100 * stats.tree_ratio:>8.2f} "
                     f"{100 * stats.values_ratio:>8.2f}")
    report("Table 11 — OSON segment ratios", lines)
    return rows


@pytest.mark.parametrize("name", COLLECTION_NAMES)
def test_table11_segment_ratios(benchmark, collections, segment_rows, name):
    stats = benchmark(segment_stats, collections[name])
    total = stats.dictionary_ratio + stats.tree_ratio + stats.values_ratio
    assert abs(total - 1.0) < 1e-6
    if name == "LoanNotes":
        assert stats.dictionary_ratio > 0.5          # paper: 62.7%
    elif name == "YCSBDoc":
        assert stats.values_ratio > 0.7              # paper: 84.4%
    elif name == "SensorData":
        assert stats.dictionary_ratio < 0.01         # paper: 0.01%
        assert stats.tree_ratio > 0.5                # paper: 80.8%
    elif name == "TwitterMsgArchive":
        assert stats.dictionary_ratio < 0.01         # paper: 0.05%
    elif name == "AcquisionDoc":
        assert stats.values_ratio > 0.5              # paper: 57.1%
    else:
        # small business docs: dictionary is a substantial fraction
        assert stats.dictionary_ratio > 0.15
