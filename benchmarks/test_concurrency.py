"""Concurrent commit throughput — group-commit WAL vs per-commit fsync.

ISSUE 7's serving-layer claim: batching many sessions' commits into one
WAL fsync multiplies commit throughput under concurrency.  The
experiment runs N client threads against one durable store whose file
system charges a fixed latency per ``sync`` (the one hardware cost that
dominates real commit paths and that an in-memory file system otherwise
hides).  Modes:

* **group** — the shipped configuration: committer thread, unbounded
  batch (the leader drains every staged commit per fsync);
* **baseline** — ``pipeline.set_batch_limit(1)``: same threads, same
  store, but one fsync per commit (the pre-group-commit protocol).

Shape asserted: at 8 clients, group commit sustains **>= 3x** the
baseline's commits/sec (the acceptance gate).  With batching, fsyncs
amortize across waiters, so the factor approaches the mean batch size.

Output: per-(mode, clients) p50/p99 commit latency and commits/sec, in
``BENCH_results.json`` under ``concurrency`` and standalone in
``BENCH_concurrency.json`` (CI artifact)."""

import json
import os
import sys
import threading
import time

import pytest

from benchmarks.conftest import record, report, scaled
from repro.storage import CollectionStore, MemoryFileSystem
from repro.storage.files import FileSystem

#: simulated fsync latency (seconds); dominates each commit the way a
#: real disk flush would
SYNC_LATENCY = 0.002

#: commits per client thread
OPS = scaled(30, minimum=8)

CLIENT_COUNTS = (1, 8, 64)

#: acceptance gate: group commit vs per-commit fsync at 8 clients
GATE_CLIENTS = 8
GATE_FACTOR = 3.0

CONCURRENCY_RESULTS_PATH = os.environ.get("REPRO_BENCH_CONCURRENCY",
                                          "BENCH_concurrency.json")


class SlowSyncFileSystem(FileSystem):
    """Delegates to a MemoryFileSystem but charges ``SYNC_LATENCY`` per
    ``sync`` — deterministic stand-in for a disk flush."""

    def __init__(self, inner=None, latency=SYNC_LATENCY):
        self.inner = inner if inner is not None else MemoryFileSystem()
        self.latency = latency
        self.syncs = 0
        self._count_lock = threading.Lock()

    def _slow_handle(self, handle):
        return _SlowSyncHandle(self, handle)

    def create(self, path):
        return self._slow_handle(self.inner.create(path))

    def open_append(self, path):
        return self._slow_handle(self.inner.open_append(path))

    def read_bytes(self, path):
        return self.inner.read_bytes(path)

    def exists(self, path):
        return self.inner.exists(path)

    def file_size(self, path):
        return self.inner.file_size(path)

    def listdir(self, path):
        return self.inner.listdir(path)

    def replace(self, src, dst):
        self.inner.replace(src, dst)

    def remove(self, path):
        self.inner.remove(path)

    def ensure_dir(self, path):
        self.inner.ensure_dir(path)


class _SlowSyncHandle:
    def __init__(self, fs, inner):
        self._fs = fs
        self._inner = inner

    def write(self, data):
        self._inner.write(data)

    def flush(self):
        self._inner.flush()

    def sync(self):
        time.sleep(self._fs.latency)
        with self._fs._count_lock:
            self._fs.syncs += 1
        self._inner.sync()

    def close(self):
        self._inner.close()

    def tell(self):
        return self._inner.tell()


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_commit_load(clients, batch_limit=None):
    """``clients`` threads x ``OPS`` inserts each; returns the stats."""
    fs = SlowSyncFileSystem()
    store = CollectionStore.create("db", fs=fs)
    pipeline = store.pipeline
    if batch_limit is not None:
        pipeline.set_batch_limit(batch_limit)
    pipeline.start_thread()
    latencies = [[] for _ in range(clients)]
    start_gate = threading.Barrier(clients + 1)

    def client(index):
        mine = latencies[index]
        start_gate.wait()
        for op in range(OPS):
            begin = time.perf_counter()
            store.insert({"client": index, "op": op})
            mine.append((time.perf_counter() - begin) * 1000.0)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(clients)]
    for thread in threads:
        thread.start()
    start_gate.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    commits = clients * OPS
    # syncs before close/checkpoint noise: captured now
    syncs = fs.syncs
    store.close()
    merged = sorted(value for bucket in latencies for value in bucket)
    return {
        "clients": clients,
        "commits": commits,
        "elapsed_s": round(elapsed, 4),
        "commits_per_sec": round(commits / elapsed, 1),
        "p50_ms": round(percentile(merged, 0.50), 3),
        "p99_ms": round(percentile(merged, 0.99), 3),
        "fsyncs": syncs,
        "mean_batch": round(commits / max(1, syncs), 2),
    }


@pytest.fixture(scope="module")
def measurements():
    results = {"group": {}, "baseline": {}}
    for clients in CLIENT_COUNTS:
        results["group"][clients] = run_commit_load(clients)
    # the baseline only needs the gate point (and the single-client
    # sanity point, where group commit must NOT be slower than 0.8x)
    for clients in (1, GATE_CLIENTS):
        results["baseline"][clients] = run_commit_load(clients,
                                                       batch_limit=1)
    payload = {
        "meta": {
            "sync_latency_ms": SYNC_LATENCY * 1000.0,
            "ops_per_client": OPS,
            "gate": {"clients": GATE_CLIENTS, "factor": GATE_FACTOR},
        },
        "group_commit": {str(c): stats
                         for c, stats in results["group"].items()},
        "per_commit_fsync": {str(c): stats
                             for c, stats in results["baseline"].items()},
    }
    with open(CONCURRENCY_RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nconcurrency results written to {CONCURRENCY_RESULTS_PATH}",
          file=sys.stderr)
    record("concurrency", "group_commit", payload["group_commit"])
    record("concurrency", "per_commit_fsync", payload["per_commit_fsync"])
    lines = [f"{'mode':<18}{'clients':>8}{'commits/s':>12}"
             f"{'p50 ms':>9}{'p99 ms':>9}{'batch':>7}"]
    for mode, per_clients in (("group", results["group"]),
                              ("baseline", results["baseline"])):
        for clients, stats in sorted(per_clients.items()):
            lines.append(
                f"{mode:<18}{clients:>8}{stats['commits_per_sec']:>12}"
                f"{stats['p50_ms']:>9}{stats['p99_ms']:>9}"
                f"{stats['mean_batch']:>7}")
    report("Concurrent commit throughput (group commit vs per-commit "
           "fsync)", lines)
    return results


class TestGroupCommitThroughput:
    def test_gate_3x_at_8_clients(self, measurements):
        """The acceptance criterion: group commit >= 3x the per-commit-
        fsync baseline's commits/sec at 8 concurrent clients."""
        group = measurements["group"][GATE_CLIENTS]
        baseline = measurements["baseline"][GATE_CLIENTS]
        factor = group["commits_per_sec"] / baseline["commits_per_sec"]
        assert factor >= GATE_FACTOR, (
            f"group commit only {factor:.2f}x the per-commit-fsync "
            f"baseline at {GATE_CLIENTS} clients "
            f"({group['commits_per_sec']}/s vs "
            f"{baseline['commits_per_sec']}/s)")

    def test_batching_actually_happened(self, measurements):
        """The speedup must come from fsync amortization, not noise:
        at 8 clients the mean batch size exceeds 2 commits/fsync and
        the fsync count is well under one per commit."""
        group = measurements["group"][GATE_CLIENTS]
        assert group["mean_batch"] > 2.0
        assert group["fsyncs"] < group["commits"]

    def test_single_client_pays_no_batching_penalty(self, measurements):
        """With one client there is nothing to batch: group commit must
        stay within noise of the per-commit-fsync baseline (>= 0.7x)."""
        group = measurements["group"][1]
        baseline = measurements["baseline"][1]
        assert group["commits_per_sec"] >= 0.7 * baseline["commits_per_sec"]

    def test_throughput_scales_with_clients(self, measurements):
        """More concurrent clients -> more batching -> more commits/sec
        (64 clients beats 1 client by a wide margin)."""
        one = measurements["group"][1]["commits_per_sec"]
        many = measurements["group"][64]["commits_per_sec"]
        assert many > 2.0 * one

    def test_acknowledged_commits_all_durable(self):
        """Throughput never trades away durability: every acknowledged
        commit survives a reopen."""
        fs = SlowSyncFileSystem(latency=0.0005)
        store = CollectionStore.create("db", fs=fs)
        store.pipeline.start_thread()
        inserted = []

        def client(base):
            for op in range(10):
                inserted.append(store.insert({"c": base, "op": op}))

        threads = [threading.Thread(target=client, args=(base,))
                   for base in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store.close()
        again = CollectionStore.open("db", fs=fs)
        assert set(again.doc_ids()) == set(inserted)
        again.close()
