"""Figure 4 — storage size of the four purchase-order storage methods.

The paper's shape: BSON is marginally the biggest; JSON text and OSON are
of similar size; REL (shredded tables + PK/FK indexes) is ~21% smaller
than the self-contained formats, the price those formats pay for carrying
schema in every document.
"""

import pytest

from benchmarks.conftest import report, scaled
from repro import bson
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER, CLOB
from repro.engine.types import BLOB
from repro.jsontext import dumps
from repro.workloads.purchase_orders import PurchaseOrderGenerator
from repro.workloads.relational import (
    create_rel_tables,
    rel_storage_bytes,
    shred_documents,
)

N = scaled(1500)


@pytest.fixture(scope="module")
def documents():
    return list(PurchaseOrderGenerator().documents(N))


def _load_storage(documents, name):
    db = Database()
    if name == "rel":
        master, detail = create_rel_tables(db)
        shred_documents(master, detail, documents)
        return rel_storage_bytes(master, detail)
    encode_fn, sql_type = {
        "json": (dumps, CLOB),
        "bson": (bson.encode, BLOB),
        "oson": (oson_encode, BLOB),
    }[name]
    table = db.create_table("po", [Column("did", NUMBER),
                                   Column("jdoc", sql_type)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": encode_fn(doc)})
    return table.storage_bytes()


@pytest.fixture(scope="module")
def sizes(documents):
    values = {name: _load_storage(documents, name)
              for name in ("json", "bson", "oson", "rel")}
    lines = [f"{name:<6} {size / 1024:>10.1f} KiB "
             f"({size / values['json']:.2f}x JSON)"
             for name, size in values.items()]
    report(f"Figure 4 — storage size, {N} documents", lines)
    _assert_shape(values)
    return values


def _assert_shape(values):
    # BSON marginally the biggest self-contained format
    assert values["bson"] >= values["json"] * 0.95
    # JSON and OSON similar (paper: identical at 136MB)
    assert 0.7 < values["oson"] / values["json"] < 1.3
    # REL smaller than every self-contained format (paper: ~21% smaller)
    assert values["rel"] < values["json"]
    assert values["rel"] < values["oson"]
    assert values["rel"] < values["bson"]


@pytest.mark.parametrize("name", ["json", "bson", "oson", "rel"])
def test_figure4_load_storage(benchmark, documents, sizes, name):
    """Time the full load of one storage method and record its size."""
    size = benchmark(_load_storage, documents, name)
    assert size == sizes[name]


def test_figure4_shape(sizes):
    _assert_shape(sizes)
