"""The tracing kill-switch gate: <2% overhead when tracing is off.

The observability layer is only acceptable in the benchmarked hot paths
if disabling it (the default) leaves the Figure 3 numbers intact.  Two
measurements back that claim:

* microbenchmarks of the disabled-path primitives — a ``span()`` open
  and a ``current_span().record()`` both collapse to a shared no-op
  object when tracing is off;
* a projection of those per-call costs onto the instrumentation call
  sites an OSON query pass actually executes (counted from the metric
  deltas of a real pass, times a 5x safety margin), asserted under 2%
  of the measured pass wall time.

A traced pass of the same workload also runs here so the benchmark
session leaves a real span tree in the ring buffer for the trace-export
artifact, and so the export is schema-validated in CI.
"""

import time

import pytest

from benchmarks.conftest import record, scaled
from repro.core.oson import encode as oson_encode
from repro.engine import Column, Database, NUMBER
from repro.engine.types import BLOB
from repro.obs import (
    current_span,
    export_traces,
    set_tracing_enabled,
    span,
    tracing_enabled,
)
from repro.obs.metrics import metric_deltas, snapshot_metrics
from repro.obs.schema import validate_trace_export
from repro.workloads.purchase_orders import (
    PoOlapQueries,
    PoQueryParams,
    PurchaseOrderGenerator,
    build_po_views,
)

N = scaled(150)

#: iterations for the disabled-primitive microbenchmarks
CALLS = 20_000

#: the asserted gate: projected tracing-off cost / measured pass time
GATE = 0.02


@pytest.fixture(scope="module")
def workload():
    documents = list(PurchaseOrderGenerator().documents(N))
    db = Database()
    table = db.create_table("po_oson", [Column("did", NUMBER),
                                        Column("jdoc", BLOB)])
    for i, doc in enumerate(documents):
        table.insert({"did": i, "jdoc": oson_encode(doc)})
    mv, dmdv = build_po_views(db, table, "jdoc", "oson")
    queries = PoOlapQueries(mv, dmdv)
    params = PoQueryParams(documents)

    def run_pass():
        queries.q1(params.reference)
        queries.q2()
        queries.q3(params.partno)
        queries.q6(params.partno)

    return run_pass


def _best_of(measure, repeats=3):
    """Min over repeats: the least-interrupted run is the true cost."""
    return min(measure() for _ in range(repeats))


def _per_call_disabled_record():
    def once():
        handle = current_span()
        start = time.perf_counter()
        for _ in range(CALLS):
            handle.record("rows", 1)
        return (time.perf_counter() - start) / CALLS
    return _best_of(once)


def _per_call_disabled_span():
    def once():
        start = time.perf_counter()
        for _ in range(CALLS):
            with span("off"):
                pass
        return (time.perf_counter() - start) / CALLS
    return _best_of(once)


class TestKillSwitch:
    #: counters whose increments sit adjacent to a disabled-trace call
    #: (a ``span()`` open or a ``current_span().record()``) — one
    #: increment ≡ one trace-machinery call on the disabled path
    TRACE_SITES = ("sqljson.jsontable.docs_expanded",
                   "storage.wal.commits", "storage.recovery.runs",
                   "imc.populates")

    def test_tracing_off_overhead_under_gate(self, workload):
        from repro.core.counters import cache_named

        assert not tracing_enabled()  # off is the default

        workload()  # warm interpreter/allocator state
        # cold-cache passes exercise the real expansion path, where the
        # per-document record() call — the one disabled-trace call in
        # the query hot path — actually fires; min over repeats drops
        # scheduler noise from the denominator
        pass_time = None
        events = 0
        for _ in range(3):
            cache_named("sqljson.jsontable_rows").clear()
            start = time.perf_counter()
            before = snapshot_metrics()
            workload()
            elapsed = time.perf_counter() - start
            deltas = metric_deltas(before, snapshot_metrics())
            if pass_time is None or elapsed < pass_time:
                pass_time = elapsed
                # charge five disabled-span costs per trace call site
                # actually executed: a 5x margin over measured cost
                events = sum(deltas.get(name, 0)
                             for name in self.TRACE_SITES)
        assert events > 0, "instrumented pass recorded no metric activity"

        per_record = _per_call_disabled_record()
        per_span = _per_call_disabled_span()
        projected = events * 5 * max(per_record, per_span)
        overhead = projected / pass_time

        record("obs_overhead", "tracing_off", {
            "pass_time_ms": pass_time * 1e3,
            "instrumented_events": events,
            "per_disabled_record_ns": per_record * 1e9,
            "per_disabled_span_ns": per_span * 1e9,
            "projected_overhead_fraction": overhead,
            "gate": GATE,
        })
        assert overhead < GATE, (
            f"projected tracing-off overhead {overhead:.2%} exceeds "
            f"{GATE:.0%} gate ({events} events, "
            f"{per_span * 1e9:.0f}ns/span)")

    def test_disabled_primitives_are_nanoscale(self):
        # the kill switch must make both primitives allocation-free and
        # sub-microsecond; a regression here breaks every hot path at once
        assert not tracing_enabled()
        assert _per_call_disabled_record() < 5e-6
        assert _per_call_disabled_span() < 5e-6


class TestTracedPass:
    def test_traced_pass_exports_valid_spans(self, workload):
        set_tracing_enabled(True)
        try:
            with span("bench.figure3_pass", storage="oson"):
                workload()
        finally:
            set_tracing_enabled(False)
        export = export_traces(drain=False)  # leave spans for the artifact
        assert any(s["name"] == "bench.figure3_pass"
                   for s in export["spans"])
        assert validate_trace_export(export) == []
