"""Persistent IMC — cold-start from column segments vs rebuild-from-OSON.

The tentpole's performance claim: reopening a store whose populated
columns were lifted into durable column segments serves the columnar
form by decoding checksummed frames, skipping the per-document
JSON_VALUE extraction entirely.  On the Figure 5/6 NOBENCH virtual
columns ($.str1, $.num, $.dyn1) the segment load must be at least
``GATE_FACTOR``× faster than the rebuild, and the loaded values must
be identical.

Emits ``BENCH_imc_persist.json`` (override with
``REPRO_BENCH_IMC_PERSIST``) for the CI artifact.
"""

import json
import os
import time

import pytest

from benchmarks.conftest import record, report, scaled
from repro.engine import CLOB, Column, NUMBER, Query, expr
from repro.engine.table import DurableTable
from repro.imc import IMCStore
from repro.jsontext import dumps
from repro.storage import CollectionStore
from repro.workloads.nobench import NobenchGenerator, VC_PATHS

N = scaled(2000)
REPS = 3
GATE_FACTOR = 3.0
RESULTS_PATH = os.environ.get("REPRO_BENCH_IMC_PERSIST",
                              "BENCH_imc_persist.json")

#: the Figure 5/6 virtual columns, as JSON_VALUE expressions over the
#: stored document text
VC_COLUMNS = [(path.split(".")[-1], path, returning)
              for path, returning in VC_PATHS]
VC_NAMES = [name for name, _path, _ret in VC_COLUMNS]


def make_table(store):
    table = DurableTable("nb", [Column("id", NUMBER),
                                Column("jdoc", CLOB)], store)
    for name, path, returning in VC_COLUMNS:
        table.add_column(Column(name, NUMBER if returning else CLOB,
                                expression=expr.JsonValueExpr(
                                    "jdoc", path, returning=returning)))
    return table


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """Two identical stores: one with lifted segments, one without."""
    texts = [dumps(d) for d in NobenchGenerator().documents(N)]
    base = tmp_path_factory.mktemp("imc_persist")
    dirs = {"segments": str(base / "with-segments"),
            "rebuild": str(base / "rebuild-only")}
    for label, directory in dirs.items():
        store = CollectionStore.create(directory)
        table = make_table(store)
        for i, text in enumerate(texts):
            table.insert({"id": i, "jdoc": text})
        if label == "segments":
            IMCStore().populate(table, VC_NAMES)  # registers the provider
        store.checkpoint()  # lifts segments only where populated
        store.close()
    return dirs


def cold_populate(directory):
    """One cold start: open, bind, populate the VC columns; returns
    (elapsed seconds of the populate only, loaded values, imc)."""
    store = CollectionStore.open(directory)
    table = make_table(store)
    imc = IMCStore()
    imc.bind(table)
    start = time.perf_counter()
    imc.populate(table, VC_NAMES)
    elapsed = time.perf_counter() - start
    values = {name: imc.column("nb", name).to_list() for name in VC_NAMES}
    quarantines = len(imc.segment_quarantines())
    store.close()
    return elapsed, values, quarantines


@pytest.fixture(scope="module")
def timing_table(seeded):
    times = {"segments": [], "rebuild": []}
    reference = None
    for _ in range(REPS):
        for label in times:
            elapsed, values, quarantines = cold_populate(seeded[label])
            assert quarantines == 0
            times[label].append(elapsed)
            if reference is None:
                reference = values
            else:
                assert values == reference, (
                    f"{label}: cold values diverge from first run")
    best = {label: min(samples) for label, samples in times.items()}
    speedup = best["rebuild"] / best["segments"]

    # the projection contract, read back out of EXPLAIN ANALYZE
    store = CollectionStore.open(seeded["segments"])
    table = make_table(store)
    IMCStore().bind(table)
    analyze = (Query(table)
               .where(expr.Col("num") > 500)
               .select("str1", "num")
               .explain(analyze=True))
    store.close()
    assert "metric imc.columns_read: 2" in analyze
    assert "metric imc.populates" not in analyze

    lines = [
        f"{'cold start path':<24}{'best of ' + str(REPS) + ' (ms)':>18}",
        f"{'rebuild-from-OSON':<24}{best['rebuild'] * 1000:>18.1f}",
        f"{'column segments':<24}{best['segments'] * 1000:>18.1f}",
        f"{'speedup':<24}{speedup:>17.1f}x",
    ]
    report(f"Persistent IMC — cold start, {N} NOBENCH documents, "
           f"{len(VC_NAMES)} virtual columns", lines)

    results = {"n_docs": N, "reps": REPS, "columns": VC_NAMES,
               "rebuild_ms": round(best["rebuild"] * 1000, 3),
               "segments_ms": round(best["segments"] * 1000, 3),
               "speedup": round(speedup, 2),
               "explain_head": analyze.splitlines()[1]}
    record("imc_persist", "cold_start", results)
    payload = {"meta": {"gate": {"factor": GATE_FACTOR}},
               "imc_persist": results}
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nimc persist results written to {RESULTS_PATH}")
    return best


def test_cold_start_speedup(timing_table):
    """Segments must beat rebuild-from-OSON by the gate factor."""
    speedup = timing_table["rebuild"] / timing_table["segments"]
    assert speedup >= GATE_FACTOR, (
        f"cold start from segments only {speedup:.1f}x faster "
        f"(gate {GATE_FACTOR}x)")


def test_segment_cold_start_benchmark(benchmark, seeded, timing_table):
    benchmark(lambda: cold_populate(seeded["segments"]))
